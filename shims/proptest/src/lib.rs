//! Offline shim for the subset of `proptest` this workspace's property
//! tests use: the [`Strategy`] trait over ranges/tuples/vecs, the
//! `proptest!` macro (block form with `#[test]` functions and an optional
//! `#![proptest_config(...)]`, plus the inline closure form), and the
//! `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! Differences from the real crate, by design: no shrinking (a failing
//! case prints its generated inputs via the assertion message and the case
//! index, which is reproducible because generation is deterministic in the
//! test name and case number), and no persistence files.

use std::ops::Range;

pub mod test_runner {
    /// Deterministic generator for test-case inputs: splitmix64 over a
    /// (test-name-hash, case-index) key, so every run regenerates exactly
    /// the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

int_strategies!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategies {
    ($(($($name:ident, $idx:tt);+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A, 0),
    (A, 0; B, 1),
    (A, 0; B, 1; C, 2),
    (A, 0; B, 1; C, 2; D, 3),
);

/// Strategy that always yields a clone of one fixed value
/// (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over boxed strategies of one value type — the expansion
/// target of [`prop_oneof!`].
pub struct WeightedUnion<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> WeightedUnion<T> {
    /// Builds the union; total weight must be positive.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
            "prop_oneof! needs a positive total weight"
        );
        Self { arms }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covers every draw")
    }
}

/// `proptest::prop_oneof!`: draws from one of several strategies, either
/// uniformly (`prop_oneof![a, b, c]`) or by weight
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(
                (
                    $weight as u32,
                    ::std::boxed::Box::new($strat)
                        as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
                ),
            )+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector length specification: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for vectors of `element` values with `size` entries.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// What the test-body closures return: `Err` carries a failed
/// `prop_assert!` message.
pub type TestCaseResult = Result<(), String>;

/// Asserts a condition inside a `proptest!` body; on failure the case
/// (not the whole process) fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Runs one generated case body; used by the `proptest!` expansion.
pub fn run_case(test: &str, case: u64, result: TestCaseResult) {
    if let Err(msg) = result {
        panic!("proptest '{test}' failed at deterministic case {case}: {msg}");
    }
}

/// The `proptest!` macro: block form defining `#[test]` functions whose
/// arguments are drawn from strategies, and an inline closure form running
/// a sub-property inside an enclosing body.
#[macro_export]
macro_rules! proptest {
    // Inline closure form: proptest!(|(PAT in STRATEGY)| { ... });
    (|($pat:pat in $strat:expr)| $body:block) => {{
        let __strat = $strat;
        let __cases = $crate::ProptestConfig::default().cases as u64;
        for __case in 0..__cases {
            let mut __rng =
                $crate::test_runner::TestRng::deterministic("<closure>", __case);
            let $pat = $crate::Strategy::generate(&__strat, &mut __rng);
            #[allow(clippy::redundant_closure_call)]
            let __r: $crate::TestCaseResult = (|| {
                $body
                ::std::result::Result::Ok(())
            })();
            $crate::run_case("<closure>", __case, __r);
        }
    }};
    // Block form with a #![proptest_config(...)] header.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)+
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)+);
    };
    // Block form with the default configuration.
    ( $($rest:tt)+ ) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)+);
    };
}

/// Implementation detail of [`proptest!`]'s block form.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        __case,
                    );
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let __r: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    $crate::run_case(stringify!($name), __case, __r);
                }
            }
        )+
    };
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(n: usize) -> impl Strategy<Value = Vec<(u32, f64)>> {
        collection::vec((0u32..8, -1.0..1.0f64), n)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u64..5, 0usize..7)) {
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn nested_closure_form(n in 1usize..4) {
            let strat = pair(n);
            proptest!(|((_i, ps) in (0u32..2, strat))| {
                prop_assert_eq!(ps.len(), n);
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_accepted(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn oneof_honours_weights_and_just_is_constant() {
        use crate::test_runner::TestRng;
        let strat = prop_oneof![
            3 => 0.0..1.0f64,
            1 => Just(f64::NAN),
        ];
        let mut rng = TestRng::deterministic("oneof", 0);
        let draws: Vec<f64> = (0..4000).map(|_| strat.generate(&mut rng)).collect();
        let nans = draws.iter().filter(|v| v.is_nan()).count();
        assert!(
            (800..1200).contains(&nans),
            "weight-1-of-4 arm drew {nans}/4000"
        );
        assert!(draws.iter().all(|v| v.is_nan() || (0.0..1.0).contains(v)));
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::test_runner::TestRng;
        let s = collection::vec(0u64..1000, 0usize..50);
        let a = s.generate(&mut TestRng::deterministic("t", 3));
        let b = s.generate(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::deterministic("t", 4));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "deterministic case")]
    fn failing_property_reports_case() {
        proptest!(|(x in 0u64..10) | {
            prop_assert!(x < 5, "x was {}", x);
        });
    }
}
