//! Offline shim for the subset of `crossbeam` this workspace uses:
//!
//! * [`channel`] — `unbounded()` MPSC channels, backed by `std::sync::mpsc`
//!   (every consumer in this workspace is single-receiver, so MPSC suffices
//!   where crossbeam offers MPMC);
//! * [`thread`] — scoped threads with crossbeam's `scope(|s| ...)` /
//!   `s.spawn(|_| ...)` shape, backed by `std::thread::scope` (stable since
//!   Rust 1.63, which postdates crossbeam's API and makes the shim thin).

/// Unbounded channels with crossbeam's construction API.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads with crossbeam's `scope`/`spawn(|scope| ...)` signatures.
pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: spawn handle passed to the scope
    /// closure and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it can
        /// spawn siblings), matching crossbeam's signature; most callers
        /// ignore it with `|_|`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before `scope` returns. The `Result` wrapper mirrors
    /// crossbeam (std already propagates child panics on join, so this
    /// shim's error arm is vestigial and always `Ok`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        tx.send(1).unwrap();
        let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 42);
    }

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
