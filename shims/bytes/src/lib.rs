//! Offline shim for the subset of `bytes` this workspace uses: a growable
//! byte buffer ([`BytesMut`]) and the little-endian put methods of
//! [`BufMut`]. The wire encodings written through this shim are identical
//! to the real crate's.

/// Sink for appending encoded bytes.
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte (two's complement).
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_encoding() {
        let mut b = BytesMut::new();
        b.put_u64_le(1);
        b.put_f64_le(1.0);
        b.put_u32_le(2);
        b.put_u8(3);
        assert_eq!(b.len(), 8 + 8 + 4 + 1);
        assert_eq!(&b[..8], &[1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(&b[8..16], &1.0f64.to_le_bytes());
        assert_eq!(b[20], 3);
    }
}
