//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the few external APIs it needs as tiny local crates
//! (see `shims/README.md`). This one provides `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` ergonomics (`gen`,
//! `gen_range`) over the range types the codebase samples from.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction real `rand` 0.8 uses for `SmallRng` on 64-bit targets.
//! Streams are high quality and fully deterministic per seed, though the
//! concrete values differ from the real crate's; nothing in this workspace
//! depends on the exact values, only on determinism and uniformity.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds. Only `seed_from_u64` is needed here.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named `rngs` to mirror the real crate's module layout.
pub mod rngs {
    use super::*;

    /// xoshiro256++: fast, small, and statistically solid — the real
    /// crate's `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type samplable uniformly from its "standard" distribution by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire); the residual bias of `span / 2^64` is irrelevant at
/// the scales sampled here.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 means the full u64 domain (lo = 0, hi = MAX);
                // no caller samples that, but stay correct anyway.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )+};
}

int_ranges!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing ergonomics over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws from `T`'s standard distribution (`f64` → uniform `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}
