//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync::RwLock` behind `parking_lot`'s non-poisoning API
//! (`read()` / `write()` return guards directly). Poisoning is converted to
//! a panic, which matches parking_lot's behaviour of not having poisoning
//! at all: a panicked writer is a bug either way.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("RwLock poisoned")
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("RwLock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("RwLock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_cycle() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn concurrent_readers() {
        let l = std::sync::Arc::new(RwLock::new(7));
        let g1 = l.read();
        let g2 = l.read();
        assert_eq!(*g1 + *g2, 14);
    }
}
