//! # async-engine
//!
//! A from-scratch Rust reproduction of **ASYNC: A Cloud Engine with
//! Asynchrony and History for Distributed Machine Learning** (IPDPS 2020),
//! grown toward a production-scale asynchronous ML engine.
//!
//! This umbrella crate re-exports the whole workspace. The paper-section →
//! module map:
//!
//! | paper | module |
//! |-------|--------|
//! | §4.1 bookkeeping (`STAT`, task attributes) | [`core::stat`], [`core::context::TaskAttrs`] |
//! | §4.2 `ASYNCcoordinator` (result pump)      | [`core::context::AsyncContext`] |
//! | §4.3 `ASYNCbroadcaster` (history)          | [`core::broadcast::AsyncBcast`] |
//! | §4.4 `ASYNCscheduler` (barrier control)    | [`core::barrier::BarrierFilter`] |
//! | §5 Table 1 programming model               | [`core::context`] methods |
//! | §5 Listing 3 (ASGD)                        | [`optim::asgd::Asgd`] |
//! | §5 Listing 4 / Alg. 4 (ASAGA + history)    | [`optim::asaga::Asaga`] |
//! | §5 staleness-adaptive momentum SGD         | [`optim::msgd::AsyncMsgd`] |
//! | sparse fast path (CSR gather, `GradDelta`) | [`linalg::csr`], [`linalg::delta`] |
//! | §6 cluster + straggler models              | [`cluster`] |
//! | Spark substrate (RDDs, engines, driver)    | [`sparklet`] |
//! | datasets (Table 2 analogues)               | [`data`] |
//! | BLAS slice + CGLS baselines                | [`linalg`] |
//! | serving read path (pins, freshness, online learning) | [`serve`] |
//! | experiment harnesses (Figures 3–4, fast path) | `async-bench` (`crates/bench`) |

/// Cluster substrate: virtual time, stragglers, cost models, metrics.
pub use async_cluster as cluster;
/// The ASYNC framework: context, STAT, barriers, history broadcast.
pub use async_core as core;
/// Datasets, synthetic generators, LIBSVM IO, mini-batch sampling.
pub use async_data as data;
/// Dense/sparse kernels and the CGLS baseline solver.
pub use async_linalg as linalg;
/// Optimization algorithms: ASGD and history-enabled ASAGA.
pub use async_optim as optim;
/// The serve-while-training prediction read path.
pub use async_serve as serve;
/// The in-process Spark slice the engine builds on.
pub use sparklet;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use async_cluster::{
        ChaosAction, ChaosCfg, ChaosEvent, ChaosSchedule, ClusterSpec, CommModel, DelayModel,
        PcsConfig, VDur, VTime,
    };
    pub use async_core::{
        AsyncBcast, AsyncContext, BarrierFilter, StatSnapshot, SubmitOpts, Tagged, TaskAttrs,
    };
    pub use async_data::{Block, Dataset, SynthSpec};
    pub use async_linalg::{GradDelta, Matrix, ParallelismCfg, SparseVec};
    pub use async_optim::{
        worker_registry, Asaga, Asgd, AsyncMsgd, AsyncSolver, Checkpoint, CheckpointError,
        CheckpointStore, DiskFault, DiskFaultPlan, DurableStats, Objective, RunReport, ServeFeed,
        SolverCfg, SolverCfgBuilder, SolverCfgError, SolverHistory,
    };
    pub use async_serve::{Predictor, ServeCfg, Server};
    pub use sparklet::{Driver, EngineBuilder, EngineKind, Rdd};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_drives_an_end_to_end_run() {
        let (dataset, _) = SynthSpec::dense("umbrella", 60, 6, 1).generate().unwrap();
        let mut ctx = AsyncContext::sim(
            ClusterSpec::homogeneous(2, DelayModel::None).with_comm(CommModel::free()),
        );
        let cfg = SolverCfg {
            barrier: BarrierFilter::Ssp { slack: 1 },
            max_updates: 30,
            ..SolverCfg::default()
        };
        let report =
            Asgd::new(Objective::LeastSquares { lambda: 0.01 }).run(&mut ctx, &dataset, &cfg);
        assert_eq!(report.updates, 30);
        assert!(report.final_objective.is_finite());
    }
}
