//! placeholder umbrella
