//! End-to-end demo: **ASGD riding out cluster churn** — a worker is
//! killed mid-run (its in-flight gradient dies with it), revived later as
//! a fresh executor (it re-pulls the current model before its first
//! task), and a brand-new worker joins mid-run — all on the deterministic
//! simulated cluster, under an ASP barrier.
//!
//! Run: `cargo run --release --example chaos_asgd`
//!
//! Expected output (deterministic): the loss falls from ln 2 ≈ 0.6931 to
//! **0.10477** after 400 server updates in ≈102.2 ms of virtual time; the
//! cluster ends with 5 alive workers (4 originals — one of them revived —
//! plus 1 mid-run join) and worker clocks `[86, 85, 86, 86, 84]` — the
//! revived worker's clock counts both of its lives, and the joiner's tail
//! entry shows it pulled real weight.

use async_engine::prelude::*;

fn main() {
    let (dataset, _) = SynthSpec::dense("demo", 300, 10, 21)
        .generate_classification()
        .unwrap();

    let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(4, DelayModel::None));

    // The churn script: kill worker 1 early, revive it later, and join a
    // fifth worker mid-run. Events fire at exact virtual instants inside
    // the simulator's event queue, so the whole run is reproducible.
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(2_000), 1)
        .revive(VTime::from_micros(10_000), 1)
        .join(VTime::from_micros(20_000));
    ctx.driver_mut().install_chaos(&chaos);

    let objective = Objective::Logistic { lambda: 1e-3 };
    let cfg = SolverCfg {
        step: 0.8,
        batch_fraction: 0.3,
        barrier: BarrierFilter::Asp,
        max_updates: 400,
        eval_every: 100,
        seed: 5,
        ..SolverCfg::default()
    };
    let initial = objective.full_objective(ParallelismCfg::sequential(), &dataset, &[0.0; 10]);
    let report = Asgd::new(objective).run(&mut ctx, &dataset, &cfg);

    println!("objective: ln(2) start = {initial:.4}");
    for (t, e) in report.trace.points() {
        println!("  t = {t:>10}  loss = {e:.5}");
    }
    let snap = ctx.stat();
    println!(
        "final loss {:.5} after {} updates in {} (virtual); alive workers {}; worker clocks {:?}",
        report.final_objective,
        report.updates,
        report.wall_clock,
        snap.alive_count(),
        report.worker_clocks,
    );
    assert_eq!(report.updates, 400, "churn must not eat the update budget");
    assert_eq!(snap.alive_count(), 5, "4 originals (one revived) + 1 join");
    assert!(
        report.worker_clocks[4] > 0,
        "the joined worker contributed updates"
    );
    assert!(
        report.final_objective < 0.35 * initial,
        "did not converge: {} vs {}",
        report.final_objective,
        initial
    );
    println!("converged under churn: loss dropped below 35% of the initial value");
}
