//! End-to-end demo: logistic regression via `AsyncContext::async_reduce`
//! under an SSP barrier on the deterministic simulated cluster, with one
//! controlled-delay straggler.
//!
//! Run: `cargo run --release --example ssp_logistic`

use async_engine::prelude::*;

fn main() {
    // A ±1-labelled synthetic classification problem.
    let (base, w_star) = SynthSpec::dense("demo", 300, 10, 21).generate().unwrap();
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let dataset = Dataset::new("demo-pm1", base.features().clone(), labels).unwrap();

    // 4 workers, one at half speed (100% controlled delay).
    let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(
        4,
        DelayModel::ControlledDelay {
            worker: 3,
            intensity: 1.0,
        },
    ));

    let objective = Objective::Logistic { lambda: 1e-3 };
    let cfg = SolverCfg {
        step: 0.8,
        batch_fraction: 0.3,
        barrier: BarrierFilter::Ssp { slack: 2 },
        max_updates: 400,
        eval_every: 100,
        seed: 5,
        ..SolverCfg::default()
    };
    let initial = objective.full_objective(ParallelismCfg::sequential(), &dataset, &[0.0; 10]);
    let report = Asgd::new(objective).run(&mut ctx, &dataset, &cfg);

    println!("objective: ln(2) start = {initial:.4}");
    for (t, e) in report.trace.points() {
        println!("  t = {t:>10}  loss = {e:.5}");
    }
    println!(
        "final loss {:.5} after {} updates in {} (virtual); max staleness {}; worker clocks {:?}",
        report.final_objective,
        report.updates,
        report.wall_clock,
        report.max_staleness,
        report.worker_clocks,
    );
    assert!(
        report.final_objective < 0.35 * initial,
        "did not converge: {} vs {}",
        report.final_objective,
        initial
    );
    println!("converged: loss dropped below 35% of the initial value");
}
