//! End-to-end demo: **asynchronous mini-batch SGD (`Asgd`, the paper's
//! Listing 3) under a Stale Synchronous Parallel barrier
//! (`BarrierFilter::Ssp { slack: 2 }`)** on the deterministic simulated
//! cluster — 4 workers, one at half speed (controlled-delay straggler,
//! intensity 1.0), logistic regression on a ±1-labelled synthetic
//! problem (300×10, seed 21).
//!
//! Run: `cargo run --release --example ssp_logistic`
//!
//! Expected output (deterministic): the loss falls from ln 2 ≈ 0.6931 to
//! **0.10422** after 400 server updates, ≈120.4 ms of virtual time, max
//! observed staleness 3, all worker clocks at 101. The final assertion
//! (loss < 35% of start) makes this example double as an executable
//! acceptance test.

use async_engine::prelude::*;

fn main() {
    // A ±1-labelled synthetic classification problem (labels are the
    // planted model's margin signs).
    let (dataset, _) = SynthSpec::dense("demo", 300, 10, 21)
        .generate_classification()
        .unwrap();

    // 4 workers, one at half speed (100% controlled delay).
    let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(
        4,
        DelayModel::ControlledDelay {
            worker: 3,
            intensity: 1.0,
        },
    ));

    let objective = Objective::Logistic { lambda: 1e-3 };
    let cfg = SolverCfg {
        step: 0.8,
        batch_fraction: 0.3,
        barrier: BarrierFilter::Ssp { slack: 2 },
        max_updates: 400,
        eval_every: 100,
        seed: 5,
        ..SolverCfg::default()
    };
    let initial = objective.full_objective(ParallelismCfg::sequential(), &dataset, &[0.0; 10]);
    let report = Asgd::new(objective).run(&mut ctx, &dataset, &cfg);

    println!("objective: ln(2) start = {initial:.4}");
    for (t, e) in report.trace.points() {
        println!("  t = {t:>10}  loss = {e:.5}");
    }
    println!(
        "final loss {:.5} after {} updates in {} (virtual); max staleness {}; worker clocks {:?}",
        report.final_objective,
        report.updates,
        report.wall_clock,
        report.max_staleness,
        report.worker_clocks,
    );
    assert!(
        report.final_objective < 0.35 * initial,
        "did not converge: {} vs {}",
        report.final_objective,
        initial
    );
    println!("converged: loss dropped below 35% of the initial value");
}
