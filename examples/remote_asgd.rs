//! End-to-end demo: **ASGD on the multi-process remote engine** — the same
//! solver code that runs on the simulator, now driving real worker OS
//! processes over loopback TCP behind the unified [`EngineBuilder`] API.
//! Data blocks ship to each worker once per incarnation, the model arrives
//! as `WirePlan`s (cached / snapshot / patch), and every minibatch gradient
//! is recomputed worker-side from the shipped bytes.
//!
//! Run: `cargo run --release --example remote_asgd`
//!
//! The process transport needs the `async_worker` binary (built by
//! `cargo build --release -p async-optim`, discovered next to the current
//! executable or via `ASYNC_WORKER_BIN`). When it is missing the demo
//! falls back to the loopback transport: the same wire protocol served by
//! in-process threads, so the run always completes.

use std::sync::Arc;

use async_engine::prelude::*;

fn main() {
    let (dataset, _) = SynthSpec::dense("remote-demo", 400, 12, 9)
        .generate_classification()
        .unwrap();

    let spec = ClusterSpec::homogeneous(4, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO);

    // Prefer real worker processes; fall back to loopback threads speaking
    // the identical wire protocol if no worker binary is discoverable.
    let engine = match EngineBuilder::remote()
        .spec(spec.clone())
        .time_scale(0.0)
        .build()
    {
        Ok(e) => {
            println!("transport: one OS process per worker over loopback TCP");
            e
        }
        Err(e) => {
            println!("transport: loopback threads (no async_worker binary: {e})");
            EngineBuilder::remote()
                .spec(spec)
                .time_scale(0.0)
                .loopback_workers(Arc::new(worker_registry))
                .build()
                .expect("loopback transport needs no binary")
        }
    };
    let mut ctx = AsyncContext::new(Driver::from_engine(engine));

    let objective = Objective::Logistic { lambda: 1e-3 };
    let cfg = SolverCfg::builder()
        .step(0.8)
        .batch_fraction(0.3)
        .barrier(BarrierFilter::Asp)
        .max_updates(400)
        .eval_every(100)
        .seed(5)
        .build()
        .expect("valid solver configuration");

    let initial = objective.full_objective(ParallelismCfg::sequential(), &dataset, &[0.0; 12]);
    let report = Asgd::new(objective).run(&mut ctx, &dataset, &cfg);

    println!("objective: ln(2) start = {initial:.4}");
    for (t, e) in report.trace.points() {
        println!("  t = {t:>10}  loss = {e:.5}");
    }
    println!(
        "final loss {:.5} after {} updates; {} bytes shipped to workers, {} result bytes back",
        report.final_objective, report.updates, report.bytes_shipped, report.result_bytes,
    );
    assert_eq!(report.updates, 400);
    assert!(
        report.final_objective < 0.35 * initial,
        "did not converge: {} vs {}",
        report.final_objective,
        initial
    );
    println!("converged across process boundaries: loss dropped below 35% of the initial value");
}
