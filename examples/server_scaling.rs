//! Runnable demo: **the sharded parameter server** — sweeping
//! `server_threads × absorb_batch` on the real-thread engine and printing
//! absorbed deltas per second.
//!
//! The workload is built to be *server-bound*: a high-dimensional sparse
//! logistic problem where each worker gradient is a few hundred nonzeros
//! but every server update is two dense passes (ridge shrink + snapshot
//! memcpy) over the full model. Sharding spreads those passes over a
//! persistent thread pool; batching folds a wave of ready deltas into one
//! fused pass and one snapshot push.
//!
//! Run: `cargo run --release --example server_scaling`
//!
//! Expected output: a table of wall-clock steps/s per arm (host-dependent)
//! and one invariant that holds everywhere — every arm finishes its full
//! update budget with a finite, healthy model. (The *bit-identity* of
//! sharded vs serial absorption is a statement about absorbing the same
//! delta stream; the threaded engine's completion order is host-dependent,
//! so it is proven exactly on the simulated engine by
//! `tests/sharded_proptests.rs` and the byte-gated
//! `BENCH_server_scaling.json` sim arms, not here.) On multi-core hosts
//! the thread axis compounds with the batching axis; on a single-core
//! host expect the batching arms to carry the speedup.

use std::time::Instant;

use async_engine::prelude::*;

fn main() {
    let (base, w_star) = SynthSpec::sparse("server-demo", 1_024, 65_536, 16, 3)
        .generate()
        .unwrap();
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let dataset = Dataset::new("server-demo-pm1", base.features().clone(), labels).unwrap();
    let objective = Objective::Logistic { lambda: 1e-3 };

    println!("sharded-server sweep: 1024x65536 sparse logistic, 4 workers, 300 updates/arm");
    println!(
        "{:>6} {:>6} {:>12} {:>12}",
        "shard", "batch", "steps/s", "loss"
    );
    for &(server_threads, absorb_batch) in &[(1usize, 1usize), (2, 1), (4, 1), (1, 4), (4, 4)] {
        let spec = ClusterSpec::homogeneous(4, DelayModel::None);
        let mut ctx = AsyncContext::threaded(spec, 0.0);
        let cfg = SolverCfg {
            step: 0.5,
            batch_fraction: 0.1,
            barrier: BarrierFilter::Asp,
            max_updates: 300,
            seed: 3,
            server_threads,
            absorb_batch,
            ..SolverCfg::default()
        };
        let t0 = Instant::now();
        let report = Asgd::new(objective).run(&mut ctx, &dataset, &cfg);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        println!(
            "{:>6} {:>6} {:>12.0} {:>12.5}",
            server_threads,
            absorb_batch,
            report.updates as f64 / secs,
            report.final_objective
        );
        assert_eq!(report.updates, 300, "every arm must finish its budget");
        assert!(
            report.final_w.iter().all(|v| v.is_finite()),
            "{server_threads}x{absorb_batch}: non-finite coordinates"
        );
    }
    println!("all arms finished 300/300 updates with finite, healthy models");
    println!("(bit-identity of sharded vs serial absorption is proven exactly on the");
    println!(" simulated engine: `cargo test -p async-optim --test sharded_proptests`)");
}
