//! End-to-end demo: **a durable run surviving a driver crash**. The first
//! driver trains ASGD with a durable checkpoint directory attached, then
//! "dies" halfway through its budget (here: the process simply stops
//! calling run). A second driver — sharing nothing with the first but the
//! directory — opens the same store, auto-resumes from the newest valid
//! generation, and finishes the lineage **bit-identically** to a run that
//! was never interrupted.
//!
//! Run: `cargo run --release --example durable_resume`
//!
//! Expected output (deterministic): the uninterrupted reference reaches
//! its final loss after 96 updates; the crashed driver stops at 48 with
//! three generations on disk; the successor resumes from generation 48,
//! replays exactly the missing 48 updates, and its final iterate matches
//! the reference bit for bit.

use async_engine::prelude::*;

fn quiet() -> ClusterSpec {
    // Bit-identity needs the resumed run to replay the uninterrupted
    // run's exact completion order: keep the simulated cluster quiet and
    // homogeneous, and align the checkpoint cadence (16) with BSP waves
    // (4 workers) so every durable cut lands on a round boundary.
    ClusterSpec::homogeneous(4, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn cfg(max_updates: u64, durable_dir: Option<std::path::PathBuf>) -> SolverCfg {
    SolverCfg {
        step: 0.05,
        batch_fraction: 0.25,
        barrier: BarrierFilter::Bsp,
        max_updates,
        checkpoint_every: 16,
        seed: 11,
        durable_dir,
        ..SolverCfg::default()
    }
}

fn main() {
    let (dataset, _) = SynthSpec::dense("durable-demo", 400, 16, 11)
        .generate()
        .unwrap();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let dir = std::env::temp_dir().join(format!("async-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The reference: the full 96-update lineage, never interrupted.
    let mut ctx = AsyncContext::sim(quiet());
    let reference = Asgd::new(objective).run(&mut ctx, &dataset, &cfg(96, None));
    println!(
        "uninterrupted: {} updates, final loss {:.6}",
        reference.updates, reference.final_objective
    );

    // Driver 1 trains with durability attached and "crashes" at 48.
    let mut ctx = AsyncContext::sim(quiet());
    let crashed = Asgd::new(objective).run(&mut ctx, &dataset, &cfg(48, Some(dir.clone())));
    println!(
        "crashed driver: stopped after {} updates, {} generations committed",
        crashed.updates, crashed.durable.store.saves_ok
    );

    // Driver 2 shares only the directory. Same config, full budget: it
    // finds generation 48 in the store, restores model + sampler version,
    // and spends only the remaining budget.
    let mut ctx = AsyncContext::sim(quiet());
    let resumed = Asgd::new(objective).run(&mut ctx, &dataset, &cfg(96, Some(dir.clone())));
    println!(
        "resumed driver: picked up generation {:?}, replayed {} updates, final loss {:.6}",
        resumed.durable.resumed_from, resumed.updates, resumed.final_objective
    );

    assert_eq!(resumed.durable.resumed_from, Some(48));
    assert_eq!(resumed.updates, 48, "only the missing half is replayed");
    let bit_identical = reference
        .final_w
        .iter()
        .zip(&resumed.final_w)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bit_identical,
        "the resumed lineage must match the reference bits"
    );
    println!("resumed lineage is bit-identical to the uninterrupted run");
    let _ = std::fs::remove_dir_all(&dir);
}
