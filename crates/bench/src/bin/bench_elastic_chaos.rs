//! Records the elastic-chaos datapoint: ASGD convergence-to-budget under
//! kill/revive/join churn vs a static cluster, across ASP/BSP/SSP.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_elastic_chaos
//! [output.json]` (default `BENCH_elastic_chaos.json` in the current
//! directory). The output is deterministic for the default configuration.

use async_bench::elastic_chaos::{run_elastic_chaos, ElasticChaosCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_elastic_chaos.json".to_string());
    let b = run_elastic_chaos(ElasticChaosCfg::default());
    let json = b.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    for o in &b.outcomes {
        eprintln!(
            "elastic_chaos: {} churn slowdown {:.3}x, final-error ratio {:.3}",
            o.name, o.wall_clock_slowdown, o.error_ratio,
        );
    }
    eprintln!("elastic_chaos -> {out}");
}
