//! Records the serve-while-training datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_serve_qps
//! [output.json]` (default `BENCH_serve_qps.json` in the current
//! directory). Keys prefixed `wc_` are host wall-clock observations and
//! vary run to run; everything else — the training report, the scripted
//! serve counters, the prediction checksum — is deterministic for the
//! default configuration, and CI gates the file with `grep -v '"wc_'` on
//! both sides of the diff.

use async_bench::serve_qps::{run_serve_qps, ServeQpsCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve_qps.json".to_string());
    let b = run_serve_qps(ServeQpsCfg::default());
    let json = b.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!(
        "serve_qps: {:.0} rows/s served ({} readers), trainer {:.0} -> {:.0} steps/s ({:.2}x slowdown), replay refreshes {} -> {}",
        b.wc_serving.read_qps,
        b.cfg.readers,
        b.wc_solo.train_steps_per_sec,
        b.wc_serving.train_steps_per_sec,
        b.wc_training_slowdown,
        b.sim.replay_refreshes,
        out,
    );
}
