//! Records the fault-recovery datapoint: a one-way kill burst with no
//! scripted revivals — only the supervisor's backed-off respawn and the
//! retry layer stand between the run and permanent task loss.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_fault_recovery
//! [output.json]` (default `BENCH_fault_recovery.json` in the current
//! directory). Keys prefixed `wc_` are host wall-clock observations from
//! the loopback-TCP arm and vary run to run; everything else is
//! deterministic for the default configuration — CI gates the file with
//! `grep -v '"wc_'` on both sides of the diff.

use async_bench::fault_recovery::{run_fault_recovery, FaultRecoveryCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault_recovery.json".to_string());
    let b = run_fault_recovery(FaultRecoveryCfg::default());
    let json = b.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    let sup = &b.arms[2].report;
    eprintln!(
        "fault_recovery: supervised {}x slowdown, error ratio {:.3}, \
         {} retried / {} lost; loopback recovered: {} ({:.0} steps/s) -> {}",
        b.recovery_slowdown,
        b.error_ratio,
        sup.retried_tasks,
        sup.lost_tasks,
        b.wc_loopback.recovered,
        b.wc_loopback.steps_per_sec,
        out,
    );
}
