//! Records the server-scaling (sharded absorption) datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_server_scaling
//! [output.json]` (default `BENCH_server_scaling.json` in the current
//! directory). Keys prefixed `wc_` are host wall-clock observations and
//! vary run to run; everything else is deterministic for the default
//! configuration — CI gates the file with `grep -v wc_` on both sides of
//! the diff.

use async_bench::server_scaling::{run_server_scaling, ServerScalingCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server_scaling.json".to_string());
    let s = run_server_scaling(ServerScalingCfg::default());
    let json = s.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!(
        "server_scaling: bit-identical sharding: {}; max arm {:.0} steps/s vs serial {:.0} ({:.2}x) -> {}",
        s.sharding_bit_identical,
        s.wc.last().map_or(0.0, |a| a.steps_per_sec),
        s.wc[0].steps_per_sec,
        s.wc_speedup_max_over_serial,
        out,
    );
}
