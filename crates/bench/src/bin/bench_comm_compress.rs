//! Records the compressed-communication datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_comm_compress
//! [output.json]` (default `BENCH_comm_compress.json` in the current
//! directory). Keys prefixed `wc_` are host wall-clock observations and
//! vary run to run; everything else — byte counts, ratios, loss-tolerance
//! verdicts — is deterministic for the default configuration, and CI
//! gates the file with `grep -v wc_` on both sides of the diff.

use async_bench::comm_compress::{run_comm_compress, CommCompressCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_comm_compress.json".to_string());
    let b = run_comm_compress(CommCompressCfg::default());
    let json = b.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!(
        "comm_compress: {:.1}x (topk) / {:.1}x (topk+i8) fewer result bytes (modeled, verdicts topk={} i8={}); {:.0} vs {:.0} steps/s real ({:.2}x) -> {}",
        b.result_bytes_ratio_topk,
        b.result_bytes_ratio_topk_i8,
        b.topk_within_loss_tolerance,
        b.topk_i8_within_loss_tolerance,
        b.wc_topk_i8.steps_per_sec,
        b.wc_off.steps_per_sec,
        b.wc_speedup,
        out,
    );
}
