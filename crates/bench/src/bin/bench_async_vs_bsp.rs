//! Records the ASP-vs-BSP controlled-delay-straggler datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_async_vs_bsp
//! [output.json]` (default `BENCH_async_vs_bsp.json` in the current
//! directory). The output is deterministic for the default configuration.

use async_bench::{run_async_vs_bsp, AblationCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_async_vs_bsp.json".to_string());
    let ablation = run_async_vs_bsp(AblationCfg::default());
    let json = ablation.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!(
        "async_vs_bsp: wall-clock speedup {:.3}x (ASP {} vs BSP {}), mean wait {} vs {} -> {}",
        ablation.wall_clock_speedup,
        ablation.asp.report.wall_clock,
        ablation.bsp.report.wall_clock,
        ablation.asp.report.mean_wait,
        ablation.bsp.report.mean_wait,
        out,
    );
}
