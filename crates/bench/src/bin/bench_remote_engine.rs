//! Records the remote-engine (multi-process backend) datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_remote_engine
//! [output.json]` (default `BENCH_remote_engine.json` in the current
//! directory). The process arm discovers the `async_worker` binary next to
//! this executable (or via `ASYNC_WORKER_BIN`); build it first with
//! `cargo build --release -p async-optim`. Keys prefixed `wc_` are host
//! wall-clock observations and vary run to run; everything else is
//! deterministic for the default configuration — CI gates the file with
//! `grep -v '"wc_'` on both sides of the diff.

use async_bench::remote_engine::{run_remote_engine, RemoteEngineCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_remote_engine.json".to_string());
    let r = run_remote_engine(RemoteEngineCfg::default());
    let json = r.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    for a in &r.arms {
        eprintln!(
            "remote_engine: {} arm {:.0} steps/s, agrees with sim: {}",
            a.transport, a.steps_per_sec, a.agrees_with_sim
        );
    }
    eprintln!("remote_engine: -> {out}");
}
