//! Records the hot-path (incremental-broadcast) datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_hotpath
//! [output.json]` (default `BENCH_hotpath.json` in the current directory).
//! Keys prefixed `wc_` are host wall-clock observations and vary run to
//! run; everything else is deterministic for the default configuration —
//! CI gates the file with `grep -v wc_` on both sides of the diff.

use async_bench::hotpath::{run_hotpath, HotpathCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let h = run_hotpath(HotpathCfg::default());
    let json = h.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!(
        "hotpath: {:.1}x fewer broadcast bytes (modeled); {:.0} vs {:.0} steps/s real ({:.2}x) -> {}",
        h.bytes_ratio,
        h.wc_incremental.steps_per_sec,
        h.wc_dense.steps_per_sec,
        h.wc_speedup,
        out,
    );
}
