//! Records the sparse-fast-path + AsyncMsgd datapoint.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_sparse_fastpath
//! [output.json]` (default `BENCH_sparse_fastpath.json` in the current
//! directory). The output is deterministic for the default configuration;
//! host-time kernel observations go to stderr only.

use async_bench::sparse_fastpath::{run_sparse_fastpath, SparseFastpathCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sparse_fastpath.json".to_string());
    let b = run_sparse_fastpath(SparseFastpathCfg::default());
    let json = b.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!(
        "sparse_fastpath: {:.1}x less gradient work, {:.1}x smaller results, {:.2}x modeled speedup; msgd ASP {:.2}x over SSP -> {}",
        b.entries_ratio, b.result_bytes_ratio, b.wall_clock_speedup, b.msgd_asp_speedup, out,
    );
}
