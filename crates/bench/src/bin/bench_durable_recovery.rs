//! Records the durable-recovery datapoint: one ASGD lineage crashed at a
//! cadence boundary and auto-resumed from the crash-consistent checkpoint
//! store — once cleanly, once through torn-write and bit-rot disk havoc —
//! gated on finishing bit-identically to the uninterrupted reference.
//!
//! Usage: `cargo run --release -p async-bench --bin bench_durable_recovery
//! [output.json]` (default `BENCH_durable_recovery.json` in the current
//! directory). Keys prefixed `wc_` time cold recovery on this host and
//! vary run to run; everything else is deterministic for the default
//! configuration — CI gates the file with `grep -v '"wc_'` on both sides
//! of the diff.

use async_bench::durable_recovery::{run_durable_recovery, DurableRecoveryCfg};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_durable_recovery.json".to_string());
    let b = run_durable_recovery(DurableRecoveryCfg::default());
    let json = b.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    let [resumed, faulted] = &b.arms[..] else {
        panic!("two recovery arms");
    };
    eprintln!(
        "durable_recovery: resumed gen {} bit_identical {}, faulted gen {} \
         bit_identical {}, {:.2}x write amplification, {:.1} MB/s cold recovery -> {}",
        resumed.resumed_from,
        resumed.bit_identical,
        faulted.resumed_from,
        faulted.bit_identical,
        resumed.write_amplification,
        b.wc_recovery.mb_per_sec,
        out,
    );
}
