//! The elastic-chaos benchmark: convergence-to-budget under membership
//! churn vs a static cluster, across ASP / BSP / SSP.
//!
//! For each barrier the same ASGD workload runs twice on the simulated
//! cluster: once with a fixed membership, and once under a
//! [`ChaosSchedule::pcs_churn`] script sized to the static run's wall
//! clock — ~25 % of the fleet is killed in a staggered burst, every
//! casualty is revived after a downtime window, and one new worker joins
//! at the midpoint. Both runs get the same update budget, so the chaos
//! column answers the question the cloud setting actually asks: *how much
//! wall clock and convergence does churn cost under each barrier?*
//! Asynchronous barriers should shrug (survivors keep streaming updates),
//! while BSP pays for every casualty at every barrier.
//!
//! Everything is deterministic; the JSON is byte-reproducible and diffed
//! in CI like the other two benchmark files.

use async_cluster::{ChaosAction, ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::SynthSpec;
use async_linalg::ParallelismCfg;
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};

use crate::json_f64;

/// Configuration of the elastic-chaos benchmark.
#[derive(Debug, Clone)]
pub struct ElasticChaosCfg {
    /// Starting cluster size (churn revives every casualty and adds one).
    pub workers: usize,
    /// Dataset rows (dense synthetic).
    pub rows: usize,
    /// Dataset feature dimension.
    pub cols: usize,
    /// Server update budget per run.
    pub updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Per-message latency in µs (plus 1 ns/byte on payloads).
    pub per_msg_us: u64,
    /// Fraction of the *static* run's wall clock the churn script spans.
    pub chaos_horizon_fraction: f64,
    /// Seed for data, sampling, and the churn script.
    pub seed: u64,
}

impl Default for ElasticChaosCfg {
    fn default() -> Self {
        Self {
            workers: 8,
            rows: 2_048,
            cols: 64,
            updates: 320,
            batch_fraction: 0.2,
            step: 0.05,
            per_msg_us: 20,
            chaos_horizon_fraction: 0.6,
            seed: 2026,
        }
    }
}

/// One barrier's static-vs-chaos pair.
#[derive(Debug, Clone)]
pub struct BarrierOutcome {
    /// "asp", "bsp" or "ssp2".
    pub name: &'static str,
    /// The churn script this barrier ran under.
    pub chaos: ChaosSchedule,
    /// Fixed-membership run.
    pub static_run: RunReport,
    /// Same workload under the churn script.
    pub chaos_run: RunReport,
    /// `chaos.wall_clock / static.wall_clock` — the churn slowdown.
    pub wall_clock_slowdown: f64,
    /// `chaos.final_error / static.final_error` — the convergence cost.
    pub error_ratio: f64,
}

/// The benchmark outcome across barriers.
#[derive(Debug, Clone)]
pub struct ElasticChaos {
    /// The configuration measured.
    pub cfg: ElasticChaosCfg,
    /// Per-barrier outcomes (asp, bsp, ssp2).
    pub outcomes: Vec<BarrierOutcome>,
}

fn ctx(cfg: &ElasticChaosCfg) -> AsyncContext {
    AsyncContext::sim(
        ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
            .with_comm(CommModel {
                per_msg: VDur::from_micros(cfg.per_msg_us),
                ns_per_byte: 1.0,
            })
            .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2)),
    )
}

fn solver_cfg(cfg: &ElasticChaosCfg, barrier: BarrierFilter, baseline: f64) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier,
        max_updates: cfg.updates,
        eval_every: (cfg.updates / 8).max(1),
        baseline,
        seed: cfg.seed,
        ..SolverCfg::default()
    }
}

/// Runs the benchmark: three barriers × {static, churn}.
pub fn run_elastic_chaos(cfg: ElasticChaosCfg) -> ElasticChaos {
    let (dataset, _) = SynthSpec::dense("elastic-chaos", cfg.rows, cfg.cols, cfg.seed)
        .generate()
        .expect("synthetic generation");
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective
        .optimum(ParallelismCfg::sequential(), &dataset)
        .expect("least-squares baseline");

    let barriers: [(&'static str, BarrierFilter); 3] = [
        ("asp", BarrierFilter::Asp),
        ("bsp", BarrierFilter::Bsp),
        ("ssp2", BarrierFilter::Ssp { slack: 2 }),
    ];
    let mut outcomes = Vec::with_capacity(barriers.len());
    for (name, barrier) in barriers {
        let scfg = solver_cfg(&cfg, barrier, baseline);
        let static_run = {
            let mut c = ctx(&cfg);
            Asgd::new(objective).run(&mut c, &dataset, &scfg)
        };
        // Size the churn script to this barrier's own pace so the burst,
        // the revivals, and the join all land inside the run.
        let horizon = VTime::from_micros(
            ((static_run.wall_clock.as_micros() as f64) * cfg.chaos_horizon_fraction).max(1.0)
                as u64,
        );
        let chaos = ChaosSchedule::pcs_churn(cfg.seed, cfg.workers, horizon);
        let chaos_run = {
            let mut c = ctx(&cfg);
            c.driver_mut().install_chaos(&chaos);
            Asgd::new(objective).run(&mut c, &dataset, &scfg)
        };
        let wall_clock_slowdown = chaos_run.wall_clock.as_micros() as f64
            / static_run.wall_clock.as_micros().max(1) as f64;
        let error_ratio = chaos_run.trace.final_error().unwrap_or(f64::NAN)
            / static_run.trace.final_error().unwrap_or(f64::NAN);
        outcomes.push(BarrierOutcome {
            name,
            chaos,
            static_run,
            chaos_run,
            wall_clock_slowdown,
            error_ratio,
        });
    }
    ElasticChaos { cfg, outcomes }
}

fn run_json(label: &str, r: &RunReport, indent: &str) -> String {
    let clocks: Vec<String> = r.worker_clocks.iter().map(|c| c.to_string()).collect();
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"run\": \"{}\",\n{i}  \"wall_clock_ms\": {},\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"final_error\": {},\n{i}  \"worker_clocks\": [{}],\n{i}  \"trace_ms_error\": [{}]\n{i}}}",
        label,
        json_f64(r.wall_clock.as_millis_f64()),
        r.updates,
        r.tasks_completed,
        r.max_staleness,
        r.bytes_shipped,
        json_f64(r.trace.final_error().unwrap_or(f64::NAN)),
        clocks.join(", "),
        trace.join(", "),
        i = indent,
    )
}

fn chaos_json(s: &ChaosSchedule) -> String {
    let events: Vec<String> = s
        .events()
        .iter()
        .map(|e| {
            let (kind, worker) = match e.action {
                ChaosAction::Kill(w) => ("kill", w as i64),
                ChaosAction::Revive(w) => ("revive", w as i64),
                ChaosAction::Join => ("join", -1),
            };
            format!(
                "{{\"at_ms\": {}, \"action\": \"{kind}\", \"worker\": {worker}}}",
                json_f64(e.at.as_millis_f64())
            )
        })
        .collect();
    format!("[{}]", events.join(", "))
}

impl ElasticChaos {
    /// Renders the benchmark as a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        let blocks: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                let (kills, revives, joins) = o.chaos.counts();
                format!(
                    "  \"{}\": {{\n    \"chaos_events\": {},\n    \"kills\": {},\n    \"revives\": {},\n    \"joins\": {},\n    \"static\": {},\n    \"chaos\": {},\n    \"wall_clock_slowdown_chaos_over_static\": {},\n    \"final_error_ratio_chaos_over_static\": {}\n  }}",
                    o.name,
                    chaos_json(&o.chaos),
                    kills,
                    revives,
                    joins,
                    run_json("static", &o.static_run, "    "),
                    run_json("chaos", &o.chaos_run, "    "),
                    json_f64(o.wall_clock_slowdown),
                    json_f64(o.error_ratio),
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"elastic_chaos\",\n  \"description\": \"ASGD convergence-to-budget under kill/revive/join churn (pcs_churn preset: ~25% of the fleet lost and replaced, one elastic join) vs a static cluster, across ASP/BSP/SSP barriers\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"dense synthetic {}x{}\",\n    \"updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"per_msg_us\": {},\n    \"chaos_horizon_fraction\": {},\n    \"seed\": {}\n  }},\n{}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.per_msg_us,
            json_f64(c.chaos_horizon_fraction),
            c.seed,
            blocks.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ElasticChaosCfg {
        ElasticChaosCfg {
            workers: 4,
            rows: 256,
            cols: 24,
            updates: 80,
            per_msg_us: 0,
            ..ElasticChaosCfg::default()
        }
    }

    #[test]
    fn chaos_runs_reach_the_budget_under_every_barrier() {
        let b = run_elastic_chaos(small_cfg());
        assert_eq!(b.outcomes.len(), 3);
        for o in &b.outcomes {
            assert_eq!(o.static_run.updates, 80, "{}", o.name);
            assert_eq!(
                o.chaos_run.updates, 80,
                "{}: churn must not eat the budget",
                o.name
            );
            let (kills, revives, joins) = o.chaos.counts();
            assert!(kills >= 1 && revives == kills && joins == 1, "{}", o.name);
            // The joined worker exists at run end.
            assert_eq!(
                o.chaos_run.worker_clocks.len(),
                b.cfg.workers + 1,
                "{}",
                o.name
            );
            assert!(o.chaos_run.trace.final_error().unwrap().is_finite());
            // Convergence under churn stays in the static run's
            // neighborhood (budget, not time, fixes progress).
            assert!(
                o.error_ratio < 10.0,
                "{}: error ratio {}",
                o.name,
                o.error_ratio
            );
        }
    }

    #[test]
    fn elastic_chaos_is_deterministic() {
        let a = run_elastic_chaos(small_cfg());
        let b = run_elastic_chaos(small_cfg());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = run_elastic_chaos(small_cfg()).to_json();
        assert!(j.contains("\"benchmark\": \"elastic_chaos\""));
        for k in ["\"asp\"", "\"bsp\"", "\"ssp2\"", "chaos_events"] {
            assert!(j.contains(k), "missing {k}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }
}
