//! The serve-while-training benchmark: read throughput over the MVCC
//! snapshot ring, and what serving costs the trainer.
//!
//! Two kinds of numbers come out of it:
//!
//! 1. **Modeled, deterministic** (byte-gated in CI): one simulated
//!    training run with a [`async_optim::ServeFeed`] attached, followed
//!    by a *scripted* read sequence against the frozen ring — a full-table
//!    scoring pass, then a staleness replay that pushes synthetic
//!    versions and lets the freshness policy re-pin on schedule. The
//!    serve counters (reads, rows, refreshes, recorded max lag) and a
//!    prediction checksum are exact for a fixed configuration.
//! 2. **Wall-clock, host-dependent** (reported, *not* gated; `wc_`
//!    keys): the same training run solo vs with reader threads hammering
//!    batched predictions until the run finishes — saturating read QPS,
//!    trainer steps/sec in both modes, and the headline training
//!    slowdown ratio.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, ServeCounters, ServeFeed, SolverCfg};
use async_serve::{ServeCfg, Server};

use crate::json_f64;

/// Configuration of the serve-while-training benchmark.
#[derive(Debug, Clone)]
pub struct ServeQpsCfg {
    /// Cluster size.
    pub workers: usize,
    /// Dataset rows.
    pub rows: usize,
    /// Feature dimension.
    pub cols: usize,
    /// Server update budget for the simulated (gated) run.
    pub updates: u64,
    /// Server update budget for each wall-clock run.
    pub wc_updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Serving threads in the wall-clock serving arm.
    pub readers: usize,
    /// Query rows per batched predict call.
    pub query_rows: usize,
    /// Freshness bound handed to every predictor.
    pub max_version_lag: u64,
    /// Synthetic versions pushed by the scripted staleness replay.
    pub replay_pushes: usize,
    /// Sampling/generation seed.
    pub seed: u64,
}

impl Default for ServeQpsCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            rows: 4_096,
            cols: 256,
            updates: 400,
            wc_updates: 4_000,
            batch_fraction: 0.1,
            step: 0.05,
            readers: 2,
            query_rows: 64,
            max_version_lag: 4,
            replay_pushes: 20,
            seed: 2026,
        }
    }
}

/// The deterministic serving measurements over the frozen ring.
#[derive(Debug, Clone)]
pub struct SimServe {
    /// The training run the ring came from.
    pub report: RunReport,
    /// Serve counters after the scripted read sequence.
    pub counters: ServeCounters,
    /// Refreshes triggered by the staleness replay alone.
    pub replay_refreshes: u64,
    /// Sum of every prediction served by the scripted sequence.
    pub prediction_checksum: f64,
}

/// One wall-clock training arm (trainer on the main thread, readers —
/// if any — on their own).
#[derive(Debug, Clone)]
pub struct WcArm {
    /// "solo" or "serving".
    pub label: &'static str,
    /// Trainer steps (server updates) per second of host time.
    pub train_steps_per_sec: f64,
    /// Host seconds the run took.
    pub elapsed_secs: f64,
    /// Batched predict calls served while training (0 in the solo arm).
    pub reads: u64,
    /// Rows scored while training (0 in the solo arm).
    pub rows_scored: u64,
    /// Served rows per second of host time (0 in the solo arm).
    pub read_qps: f64,
}

/// The benchmark outcome: the gated simulated arm plus the two
/// wall-clock arms and the slowdown headline.
#[derive(Debug, Clone)]
pub struct ServeQps {
    /// The configuration measured.
    pub cfg: ServeQpsCfg,
    /// Deterministic serving arm (byte-gated).
    pub sim: SimServe,
    /// Wall-clock trainer without readers.
    pub wc_solo: WcArm,
    /// Wall-clock trainer with `cfg.readers` serving threads attached.
    pub wc_serving: WcArm,
    /// `wc_solo.train_steps_per_sec / wc_serving.train_steps_per_sec` —
    /// >1 means serving slowed training down by that factor.
    pub wc_training_slowdown: f64,
}

fn dataset(cfg: &ServeQpsCfg) -> Dataset {
    SynthSpec::dense("serve-qps", cfg.rows, cfg.cols, cfg.seed)
        .generate()
        .expect("synthetic generation")
        .0
}

fn cluster(cfg: &ServeQpsCfg) -> ClusterSpec {
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn solver_cfg(cfg: &ServeQpsCfg, updates: u64, feed: Option<&ServeFeed>) -> SolverCfg {
    let mut s = SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier: BarrierFilter::Asp,
        max_updates: updates,
        eval_every: 0,
        seed: cfg.seed,
        ..SolverCfg::default()
    };
    s.serve_feed = feed.cloned();
    s
}

fn serve_cfg(cfg: &ServeQpsCfg) -> ServeCfg {
    ServeCfg {
        max_version_lag: cfg.max_version_lag,
        log_queries: false,
    }
}

/// The gated arm: train on the simulator (single-threaded, exact), then
/// score a scripted read sequence against the frozen ring — one
/// full-table pass plus a staleness replay exercising the freshness
/// policy at a deterministic cadence.
fn run_sim(cfg: &ServeQpsCfg, data: &Dataset) -> SimServe {
    let feed = ServeFeed::new();
    let mut ctx = AsyncContext::sim(cluster(cfg));
    let report = Asgd::new(Objective::LeastSquares { lambda: 0.01 }).run(
        &mut ctx,
        data,
        &solver_cfg(cfg, cfg.updates, Some(&feed)),
    );

    let srv = Server::connect(&feed, serve_cfg(cfg)).expect("run published its broadcast");
    let mut p = srv.predictor();
    let mut checksum = 0.0;
    let rows: Vec<u32> = (0..data.rows() as u32).collect();
    let mut out = Vec::new();
    p.predict_rows_into(data.features(), &rows, &mut out);
    checksum += out.iter().sum::<f64>();

    // Staleness replay: push synthetic versions onto the frozen ring and
    // read one query after each — the policy re-pins exactly every
    // `max_version_lag + 1` pushes.
    let before_replay = srv.counters().refreshes;
    let model = srv.feed().try_model().expect("published");
    let query = vec![(0u32, 1.0f64)];
    for k in 1..=cfg.replay_pushes {
        let w = vec![k as f64 / cfg.replay_pushes as f64; data.cols()];
        model.bcast.push_snapshot(&w);
        checksum += p.predict_query(&query);
    }
    let counters = srv.counters();
    SimServe {
        report,
        replay_refreshes: counters.refreshes - before_replay,
        counters,
        prediction_checksum: checksum,
    }
}

/// One wall-clock arm: the trainer runs on the calling thread; `readers`
/// serving threads batch-predict against the live ring until the run
/// finishes.
fn run_wc(cfg: &ServeQpsCfg, data: &Arc<Dataset>, readers: usize, label: &'static str) -> WcArm {
    let feed = ServeFeed::new();
    let handles: Vec<thread::JoinHandle<(u64, u64)>> = (0..readers)
        .map(|_| {
            let feed = feed.clone();
            let data = Arc::clone(data);
            let scfg = serve_cfg(cfg);
            let nrows = cfg.query_rows.min(data.rows()) as u32;
            thread::spawn(move || {
                let Some(srv) = Server::connect(&feed, scfg) else {
                    return (0, 0);
                };
                let mut p = srv.predictor();
                let rows: Vec<u32> = (0..nrows).collect();
                let mut out = Vec::new();
                let (mut reads, mut scored) = (0u64, 0u64);
                while !srv.training_done() {
                    p.predict_rows_into(data.features(), &rows, &mut out);
                    reads += 1;
                    scored += rows.len() as u64;
                }
                (reads, scored)
            })
        })
        .collect();

    let mut ctx = AsyncContext::sim(cluster(cfg));
    let t0 = Instant::now();
    let report = Asgd::new(Objective::LeastSquares { lambda: 0.01 }).run(
        &mut ctx,
        data.as_ref(),
        &solver_cfg(cfg, cfg.wc_updates, Some(&feed)),
    );
    let elapsed_secs = t0.elapsed().as_secs_f64();

    let (mut reads, mut rows_scored) = (0u64, 0u64);
    for h in handles {
        let (r, s) = h.join().expect("reader thread");
        reads += r;
        rows_scored += s;
    }
    WcArm {
        label,
        train_steps_per_sec: report.updates as f64 / elapsed_secs.max(1e-9),
        elapsed_secs,
        reads,
        rows_scored,
        read_qps: rows_scored as f64 / elapsed_secs.max(1e-9),
    }
}

/// Runs the three measurements (one simulated and gated, two wall-clock).
pub fn run_serve_qps(cfg: ServeQpsCfg) -> ServeQps {
    let data = dataset(&cfg);
    let sim = run_sim(&cfg, &data);
    let data = Arc::new(data);
    let wc_solo = run_wc(&cfg, &data, 0, "solo");
    let wc_serving = run_wc(&cfg, &data, cfg.readers, "serving");
    let wc_training_slowdown =
        wc_solo.train_steps_per_sec / wc_serving.train_steps_per_sec.max(1e-9);
    eprintln!(
        "serve_qps: {:.0} rows/s served by {} readers; trainer {:.0} -> {:.0} steps/s ({:.2}x slowdown) [profile: lto=thin, codegen-units=1, panic=abort bins]",
        wc_serving.read_qps,
        cfg.readers,
        wc_solo.train_steps_per_sec,
        wc_serving.train_steps_per_sec,
        wc_training_slowdown,
    );
    ServeQps {
        cfg,
        sim,
        wc_solo,
        wc_serving,
        wc_training_slowdown,
    }
}

fn wc_json(a: &WcArm, indent: &str) -> String {
    format!(
        "{{\n{i}  \"arm\": \"{}\",\n{i}  \"wc_train_steps_per_sec\": {},\n{i}  \"wc_elapsed_secs\": {},\n{i}  \"wc_reads\": {},\n{i}  \"wc_rows_scored\": {},\n{i}  \"wc_read_qps\": {}\n{i}}}",
        a.label,
        json_f64(a.train_steps_per_sec),
        json_f64(a.elapsed_secs),
        a.reads,
        a.rows_scored,
        json_f64(a.read_qps),
        i = indent,
    )
}

impl ServeQps {
    /// Renders the benchmark as a stable JSON document. Keys starting
    /// with `wc_` are host wall-clock observations and are excluded from
    /// the CI byte-reproduction gate (`grep -v '"wc_'`); everything else
    /// — the training report, the scripted serve counters, the
    /// prediction checksum — is deterministic for a fixed configuration.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        let r = &self.sim.report;
        let sc = &self.sim.counters;
        format!(
            "{{\n  \"benchmark\": \"serve_qps\",\n  \"description\": \"serve-while-training read path over the MVCC snapshot ring: a deterministic scripted read sequence (full-table scoring pass + staleness replay) on the simulator (gated), and solo-vs-serving trainer throughput with reader threads on the host (wc_, not gated); built with the tuned release profile (lto=thin, codegen-units=1, panic=abort bins)\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"dense synthetic {}x{}\",\n    \"updates\": {},\n    \"wc_updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"readers\": {},\n    \"query_rows\": {},\n    \"max_version_lag\": {},\n    \"replay_pushes\": {},\n    \"seed\": {}\n  }},\n  \"sim\": {{\n    \"updates\": {},\n    \"tasks_completed\": {},\n    \"final_objective\": {},\n    \"serve_reads\": {},\n    \"serve_rows_scored\": {},\n    \"serve_refreshes\": {},\n    \"serve_max_version_lag\": {},\n    \"replay_refreshes\": {},\n    \"prediction_checksum\": {}\n  }},\n  \"wc_solo\": {},\n  \"wc_serving\": {},\n  \"wc_training_slowdown_solo_over_serving\": {}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.updates,
            c.wc_updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.readers,
            c.query_rows,
            c.max_version_lag,
            c.replay_pushes,
            c.seed,
            r.updates,
            r.tasks_completed,
            json_f64(r.final_objective),
            sc.reads,
            sc.rows_scored,
            sc.refreshes,
            sc.max_version_lag,
            self.sim.replay_refreshes,
            json_f64(self.sim.prediction_checksum),
            wc_json(&self.wc_solo, "  "),
            wc_json(&self.wc_serving, "  "),
            json_f64(self.wc_training_slowdown),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServeQpsCfg {
        ServeQpsCfg {
            rows: 256,
            cols: 16,
            updates: 120,
            wc_updates: 300,
            readers: 2,
            query_rows: 32,
            ..ServeQpsCfg::default()
        }
    }

    #[test]
    fn scripted_serving_is_deterministic_and_policy_paced() {
        let a = run_serve_qps(small_cfg());
        let b = run_serve_qps(small_cfg());
        assert_eq!(a.sim.report.updates, 120);
        // The scripted sequence: one full-table read + one query per
        // replay push, all on the books.
        assert_eq!(a.sim.counters.reads, 1 + small_cfg().replay_pushes as u64);
        assert_eq!(
            a.sim.counters.rows_scored,
            256 + small_cfg().replay_pushes as u64
        );
        // The freshness policy re-pins every (max_version_lag + 1)
        // pushes of the replay.
        let expect = small_cfg().replay_pushes as u64 / (small_cfg().max_version_lag + 1);
        assert_eq!(a.sim.replay_refreshes, expect);
        assert!(a.sim.counters.max_version_lag <= small_cfg().max_version_lag);
        // Byte-stable across runs (the gated half of the JSON).
        let gated = |j: &str| {
            j.lines()
                .filter(|l| !l.contains("\"wc_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(gated(&a.to_json()), gated(&b.to_json()));
        assert_eq!(a.sim.prediction_checksum, b.sim.prediction_checksum);
    }

    #[test]
    fn wall_clock_arms_train_to_budget_and_serve_reads() {
        let b = run_serve_qps(small_cfg());
        assert!(b.wc_solo.train_steps_per_sec > 0.0);
        assert!(b.wc_serving.train_steps_per_sec > 0.0);
        assert_eq!(b.wc_solo.reads, 0, "solo arm has no readers");
        assert!(b.wc_training_slowdown > 0.0);
        let j = b.to_json();
        for key in [
            "\"benchmark\": \"serve_qps\"",
            "\"serve_refreshes\"",
            "\"prediction_checksum\"",
            "\"wc_read_qps\"",
            "\"wc_training_slowdown_solo_over_serving\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        // Every host observation hides behind a wc_ key for the CI gate.
        let gated: Vec<&str> = j.lines().filter(|l| !l.contains("\"wc_")).collect();
        assert!(gated.iter().all(|l| !l.contains("steps_per_sec")));
        assert!(gated.iter().all(|l| !l.contains("read_qps")));
    }
}
