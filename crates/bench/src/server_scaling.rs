//! The server-scaling benchmark: absorption throughput vs
//! `server_threads × absorb_batch` on one server-bound ASGD workload.
//!
//! After the zero-allocation hot path, the coordinator's apply loop — one
//! ridge-shrink pass, one gradient scatter, and one snapshot memcpy over a
//! high-dimensional dense model per collected delta — is the throughput
//! wall. The sharded server attacks it on two axes, and this benchmark
//! sweeps both:
//!
//! 1. **Modeled, deterministic** (byte-gated in CI): the simulated engine
//!    across `(server_threads, absorb_batch)` arms. The headline here is
//!    the **bit-identity contract**: the `(4, 1)` arm must reproduce the
//!    `(1, 1)` arm *bit-exactly* (the JSON carries the verdict), while the
//!    batched arms are deterministic but value-level different (their
//!    fold-then-apply pass reorders f64 arithmetic and advances one model
//!    version per wave).
//! 2. **Wall-clock, host-dependent** (reported, *not* gated; every key
//!    carries a `wc_` prefix): the same arms on the threaded engine with
//!    real compute, measuring genuine absorbed deltas per second. The
//!    thread axis needs physical cores to pay off — on a single-core
//!    builder the shard dispatch is pure overhead and the *batching* axis
//!    (one fused pass and one snapshot push per wave instead of per
//!    delta) carries the speedup; on multi-core hosts the two compound.

use std::time::Instant;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};

use crate::json_f64;

/// Configuration of the server-scaling benchmark.
#[derive(Debug, Clone)]
pub struct ServerScalingCfg {
    /// Cluster size (gradient workers).
    pub workers: usize,
    /// Dataset rows.
    pub rows: usize,
    /// Feature dimension (high — the dense server passes are the wall).
    pub cols: usize,
    /// Mean stored nonzeros per row (low — workers stay cheap).
    pub nnz_per_row: usize,
    /// Ridge coefficient (> 0 forces the dense shrink pass per update).
    pub lambda: f64,
    /// Server update budget for the simulated (gated) runs.
    pub updates: u64,
    /// Server update budget for the threaded (wall-clock) runs.
    pub wc_updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Per-message latency in µs (modeled arms).
    pub per_msg_us: u64,
    /// `(server_threads, absorb_batch)` arms swept on both engines.
    pub arms: Vec<(usize, usize)>,
    /// Sampling/generation seed.
    pub seed: u64,
}

impl Default for ServerScalingCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            rows: 2_048,
            cols: 98_304,
            nnz_per_row: 16,
            lambda: 1e-3,
            updates: 240,
            wc_updates: 600,
            batch_fraction: 0.1,
            step: 0.5,
            per_msg_us: 20,
            arms: vec![(1, 1), (4, 1), (1, 4), (4, 4)],
            seed: 2027,
        }
    }
}

/// One simulated (deterministic) arm's measurements.
#[derive(Debug, Clone)]
pub struct SimArm {
    /// Absorption threads of this arm.
    pub server_threads: usize,
    /// Wave size cap of this arm.
    pub absorb_batch: usize,
    /// Full run report.
    pub report: RunReport,
}

/// One threaded (wall-clock) arm's measurements.
#[derive(Debug, Clone)]
pub struct WallClockArm {
    /// Absorption threads of this arm.
    pub server_threads: usize,
    /// Wave size cap of this arm.
    pub absorb_batch: usize,
    /// Absorbed deltas (server updates) per second of host time.
    pub steps_per_sec: f64,
    /// Host seconds the run took.
    pub elapsed_secs: f64,
    /// Updates actually applied.
    pub updates: u64,
    /// Final objective value.
    pub final_objective: f64,
}

/// The benchmark outcome: both engines, every arm, headline verdicts.
#[derive(Debug, Clone)]
pub struct ServerScaling {
    /// The configuration measured.
    pub cfg: ServerScalingCfg,
    /// Simulated arms, in `cfg.arms` order (deterministic, gated).
    pub sim: Vec<SimArm>,
    /// Bit-identity verdict: every simulated `absorb_batch = 1` arm
    /// reproduced the `(1, 1)` arm's final model bit-exactly.
    pub sharding_bit_identical: bool,
    /// Threaded arms, in `cfg.arms` order (wall clock, not gated).
    pub wc: Vec<WallClockArm>,
    /// `steps/s` of the last wall-clock arm over the first — the headline
    /// `server_threads × absorb_batch` scaling number.
    pub wc_speedup_max_over_serial: f64,
}

fn dataset(cfg: &ServerScalingCfg) -> Dataset {
    let (base, w_star) = SynthSpec::sparse(
        "server-scaling",
        cfg.rows,
        cfg.cols,
        cfg.nnz_per_row,
        cfg.seed,
    )
    .generate()
    .expect("synthetic generation");
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    Dataset::new("server-scaling-pm1", base.features().clone(), labels).expect("relabel")
}

fn cluster(cfg: &ServerScalingCfg) -> ClusterSpec {
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel {
            per_msg: VDur::from_micros(cfg.per_msg_us),
            ns_per_byte: 0.05,
        })
        .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2))
}

fn solver_cfg(cfg: &ServerScalingCfg, updates: u64, arm: (usize, usize)) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier: BarrierFilter::Asp,
        max_updates: updates,
        eval_every: (updates / 6).max(1),
        seed: cfg.seed,
        server_threads: arm.0,
        absorb_batch: arm.1,
        ..SolverCfg::default()
    }
}

fn objective(cfg: &ServerScalingCfg) -> Objective {
    Objective::Logistic { lambda: cfg.lambda }
}

fn run_sim(cfg: &ServerScalingCfg, data: &Dataset, arm: (usize, usize)) -> SimArm {
    let mut ctx = AsyncContext::sim(cluster(cfg));
    let report = Asgd::new(objective(cfg)).run(&mut ctx, data, &solver_cfg(cfg, cfg.updates, arm));
    SimArm {
        server_threads: arm.0,
        absorb_batch: arm.1,
        report,
    }
}

fn run_threaded(cfg: &ServerScalingCfg, data: &Dataset, arm: (usize, usize)) -> WallClockArm {
    // time_scale 0: no modeled-time sleeps — the threaded run measures the
    // real compute pipeline, which this workload makes server-bound.
    let mut ctx = AsyncContext::threaded(cluster(cfg), 0.0);
    let mut scfg = solver_cfg(cfg, cfg.wc_updates, arm);
    // No mid-run objective evaluations: the wall clock should measure the
    // absorption loop, not the trace.
    scfg.eval_every = 0;
    let t0 = Instant::now();
    let report = Asgd::new(objective(cfg)).run(&mut ctx, data, &scfg);
    let elapsed_secs = t0.elapsed().as_secs_f64();
    WallClockArm {
        server_threads: arm.0,
        absorb_batch: arm.1,
        steps_per_sec: report.updates as f64 / elapsed_secs.max(1e-9),
        elapsed_secs,
        updates: report.updates,
        final_objective: report.final_objective,
    }
}

/// Runs every arm on both engines and checks the bit-identity contract.
pub fn run_server_scaling(cfg: ServerScalingCfg) -> ServerScaling {
    let data = dataset(&cfg);
    let sim: Vec<SimArm> = cfg.arms.iter().map(|&a| run_sim(&cfg, &data, a)).collect();
    // Every absorb_batch = 1 arm must reproduce the serial server
    // bit-exactly, whatever its thread count.
    let serial = sim
        .iter()
        .find(|a| a.server_threads == 1 && a.absorb_batch == 1)
        .expect("cfg.arms must include the (1, 1) baseline");
    let sharding_bit_identical = sim.iter().filter(|a| a.absorb_batch == 1).all(|a| {
        a.report
            .final_w
            .iter()
            .zip(&serial.report.final_w)
            .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.report.bytes_shipped == serial.report.bytes_shipped
            && a.report.updates == serial.report.updates
    });
    let wc: Vec<WallClockArm> = cfg
        .arms
        .iter()
        .map(|&a| run_threaded(&cfg, &data, a))
        .collect();
    let wc_speedup_max_over_serial = wc.last().map_or(1.0, |last| {
        last.steps_per_sec / wc[0].steps_per_sec.max(1e-9)
    });
    eprintln!(
        "server_scaling: sharding bit-identical: {}; wall-clock {:.0} steps/s at {}x{} vs {:.0} serial ({:.2}x)",
        sharding_bit_identical,
        wc.last().map_or(0.0, |a| a.steps_per_sec),
        wc.last().map_or(0, |a| a.server_threads),
        wc.last().map_or(0, |a| a.absorb_batch),
        wc[0].steps_per_sec,
        wc_speedup_max_over_serial,
    );
    ServerScaling {
        cfg,
        sim,
        sharding_bit_identical,
        wc,
        wc_speedup_max_over_serial,
    }
}

fn sim_json(a: &SimArm, indent: &str) -> String {
    let r = &a.report;
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"server_threads\": {},\n{i}  \"absorb_batch\": {},\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"result_bytes\": {},\n{i}  \"grad_entries\": {},\n{i}  \"wall_clock_ms\": {},\n{i}  \"final_objective\": {},\n{i}  \"trace_ms_objective\": [{}]\n{i}}}",
        a.server_threads,
        a.absorb_batch,
        r.updates,
        r.tasks_completed,
        r.max_staleness,
        r.bytes_shipped,
        r.result_bytes,
        r.grad_entries,
        json_f64(r.wall_clock.as_millis_f64()),
        json_f64(r.final_objective),
        trace.join(", "),
        i = indent,
    )
}

fn wc_json(a: &WallClockArm, indent: &str) -> String {
    format!(
        "{{\n{i}  \"arm\": \"{}x{}\",\n{i}  \"wc_steps_per_sec\": {},\n{i}  \"wc_elapsed_secs\": {},\n{i}  \"wc_updates\": {},\n{i}  \"wc_final_objective\": {}\n{i}}}",
        a.server_threads,
        a.absorb_batch,
        json_f64(a.steps_per_sec),
        json_f64(a.elapsed_secs),
        a.updates,
        json_f64(a.final_objective),
        i = indent,
    )
}

impl ServerScaling {
    /// Renders the benchmark as a stable JSON document. Keys starting with
    /// `wc_` are host wall-clock observations and are excluded from the CI
    /// byte-reproduction gate (`grep -v wc_`); every other byte is
    /// deterministic for a fixed configuration.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        let arms: Vec<String> = c.arms.iter().map(|(t, b)| format!("\"{t}x{b}\"")).collect();
        let sims: Vec<String> = self.sim.iter().map(|a| sim_json(a, "    ")).collect();
        let wcs: Vec<String> = self.wc.iter().map(|a| wc_json(a, "    ")).collect();
        format!(
            "{{\n  \"benchmark\": \"server_scaling\",\n  \"description\": \"sharded-server absorption throughput vs server_threads x absorb_batch for ASGD on a server-bound high-dim sparse logistic workload; simulated arms are deterministic and byte-gated (the 4x1 arm must equal 1x1 bit-exactly), wc_ arms are real threaded-engine steps/sec (host-dependent, ungated; the thread axis needs physical cores — single-core builders see the batching axis carry the speedup)\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"sparse synthetic {}x{} (~{} nnz/row), logistic +-1 labels, lambda {}\",\n    \"updates\": {},\n    \"wc_updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"per_msg_us\": {},\n    \"arms\": [{}],\n    \"seed\": {}\n  }},\n  \"sim_arms\": [\n    {}\n  ],\n  \"sharding_bit_identical_to_serial\": {},\n  \"wc_threaded_arms\": [\n    {}\n  ],\n  \"wc_steps_per_sec_speedup_max_arm_over_serial\": {}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.nnz_per_row,
            json_f64(c.lambda),
            c.updates,
            c.wc_updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.per_msg_us,
            arms.join(", "),
            c.seed,
            sims.join(",\n    "),
            self.sharding_bit_identical,
            wcs.join(",\n    "),
            json_f64(self.wc_speedup_max_over_serial),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServerScalingCfg {
        ServerScalingCfg {
            rows: 256,
            cols: 8_192,
            updates: 48,
            wc_updates: 48,
            ..ServerScalingCfg::default()
        }
    }

    #[test]
    fn sharded_arms_reproduce_serial_bit_exactly() {
        let s = run_server_scaling(small_cfg());
        assert!(s.sharding_bit_identical);
        for a in &s.sim {
            assert_eq!(
                a.report.updates, 48,
                "{}x{}",
                a.server_threads, a.absorb_batch
            );
            assert!(a.report.final_objective < std::f64::consts::LN_2);
        }
    }

    #[test]
    fn modeled_numbers_are_deterministic() {
        let a = run_server_scaling(small_cfg());
        let b = run_server_scaling(small_cfg());
        let strip = |j: &str| -> String {
            j.lines()
                .filter(|l| !l.contains("\"wc_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
        let j = a.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn threaded_arms_complete_their_budget() {
        let s = run_server_scaling(small_cfg());
        for a in &s.wc {
            assert_eq!(a.updates, 48, "{}x{}", a.server_threads, a.absorb_batch);
            assert!(a.steps_per_sec > 0.0);
        }
    }
}
