//! placeholder
