//! # async-bench
//!
//! Experiment harnesses reproducing the paper's measurements on the
//! simulated cluster. The first datapoint of the performance trajectory is
//! the §6.3 controlled-delay-straggler ablation: ASGD under ASP vs BSP,
//! same update budget, one straggler — ASP's wall clock (virtual time) and
//! worker wait times must undercut BSP's, which is the paper's headline
//! effect (Figures 3–4).
//!
//! Reports are serialized to JSON by hand (the build environment is
//! offline, so no serde); the output is deterministic byte-for-byte for a
//! fixed configuration, making the benchmark file diffable across PRs.

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};

pub mod comm_compress;
pub mod durable_recovery;
pub mod elastic_chaos;
pub mod fault_recovery;
pub mod hotpath;
pub mod remote_engine;
pub mod serve_qps;
pub mod server_scaling;
pub mod sparse_fastpath;

/// Configuration of the ASP-vs-BSP straggler ablation.
#[derive(Debug, Clone)]
pub struct AblationCfg {
    /// Cluster size.
    pub workers: usize,
    /// Controlled-delay straggler intensity (1.0 = half speed).
    pub intensity: f64,
    /// Dataset rows (dense synthetic, epsilon-like shape at small scale).
    pub rows: usize,
    /// Dataset feature dimension.
    pub cols: usize,
    /// Server update budget per mode.
    pub updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Per-message latency in µs. Task compute must dominate this for
    /// straggler effects to be visible (the delay factor stretches compute,
    /// not communication — as in the paper, where tasks run for seconds).
    pub per_msg_us: u64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for AblationCfg {
    fn default() -> Self {
        Self {
            workers: 8,
            intensity: 1.0,
            rows: 8_192,
            cols: 256,
            updates: 400,
            batch_fraction: 0.25,
            step: 0.05,
            per_msg_us: 100,
            seed: 2024,
        }
    }
}

/// One mode's measurements.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// "asp" or "bsp".
    pub mode: &'static str,
    /// Full run report.
    pub report: RunReport,
}

/// The ablation outcome: both modes plus the headline ratios.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// The configuration measured.
    pub cfg: AblationCfg,
    /// ASP run.
    pub asp: ModeResult,
    /// BSP run.
    pub bsp: ModeResult,
    /// `bsp.wall_clock / asp.wall_clock` — >1 means asynchrony wins.
    pub wall_clock_speedup: f64,
    /// `bsp.mean_wait / asp.mean_wait` at µs resolution. When ASP never
    /// waits (its mean rounds to 0 µs — the paper's Figure-4 outcome) this
    /// is `f64::INFINITY` if BSP waited and `0.0` if neither did; the JSON
    /// rendering serializes non-finite values as `null`.
    pub wait_ratio: f64,
}

fn run_mode(
    cfg: &AblationCfg,
    dataset: &Dataset,
    baseline: f64,
    barrier: BarrierFilter,
) -> RunReport {
    let mut ctx = AsyncContext::sim(
        ClusterSpec::homogeneous(
            cfg.workers,
            DelayModel::ControlledDelay {
                worker: cfg.workers - 1,
                intensity: cfg.intensity,
            },
        )
        .with_comm(CommModel {
            per_msg: VDur::from_micros(cfg.per_msg_us),
            ns_per_byte: 1.0,
        })
        .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2)),
    );
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let solver_cfg = SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier,
        max_updates: cfg.updates,
        eval_every: cfg.updates / 8,
        baseline,
        seed: cfg.seed,
        ..SolverCfg::default()
    };
    Asgd::new(objective).run(&mut ctx, dataset, &solver_cfg)
}

/// Runs the ablation: the same ASGD workload under ASP and BSP on
/// identical clusters with one controlled-delay straggler.
pub fn run_async_vs_bsp(cfg: AblationCfg) -> Ablation {
    let (dataset, _) = SynthSpec::dense("bench-dense", cfg.rows, cfg.cols, cfg.seed)
        .generate()
        .unwrap();
    // The CGLS baseline is identical for both modes; solve once.
    let baseline = Objective::LeastSquares { lambda: 1e-3 }
        .optimum(ParallelismCfg::sequential(), &dataset)
        .expect("least-squares baseline");
    let asp = run_mode(&cfg, &dataset, baseline, BarrierFilter::Asp);
    let bsp = run_mode(&cfg, &dataset, baseline, BarrierFilter::Bsp);
    let wall_clock_speedup =
        bsp.wall_clock.as_micros() as f64 / asp.wall_clock.as_micros().max(1) as f64;
    let wait_ratio = if asp.mean_wait.as_micros() == 0 {
        if bsp.mean_wait.as_micros() == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        bsp.mean_wait.as_micros() as f64 / asp.mean_wait.as_micros() as f64
    };
    Ablation {
        cfg,
        asp: ModeResult {
            mode: "asp",
            report: asp,
        },
        bsp: ModeResult {
            mode: "bsp",
            report: bsp,
        },
        wall_clock_speedup,
        wait_ratio,
    }
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn mode_json(m: &ModeResult, indent: &str) -> String {
    let r = &m.report;
    let clocks: Vec<String> = r.worker_clocks.iter().map(|c| c.to_string()).collect();
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"mode\": \"{}\",\n{i}  \"wall_clock_ms\": {},\n{i}  \"mean_wait_ms\": {},\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"final_error\": {},\n{i}  \"worker_clocks\": [{}],\n{i}  \"trace_ms_error\": [{}]\n{i}}}",
        m.mode,
        json_f64(r.wall_clock.as_millis_f64()),
        json_f64(r.mean_wait.as_millis_f64()),
        r.updates,
        r.tasks_completed,
        r.max_staleness,
        r.bytes_shipped,
        json_f64(r.trace.final_error().unwrap_or(f64::NAN)),
        clocks.join(", "),
        trace.join(", "),
        i = indent,
    )
}

impl Ablation {
    /// Renders the ablation as a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        format!(
            "{{\n  \"benchmark\": \"async_vs_bsp\",\n  \"description\": \"ASGD wall-clock (virtual) under ASP vs BSP with one controlled-delay straggler (paper §6.3, Figures 3-4)\",\n  \"config\": {{\n    \"workers\": {},\n    \"straggler_intensity\": {},\n    \"dataset\": \"dense synthetic {}x{}\",\n    \"updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"per_msg_us\": {},\n    \"seed\": {}\n  }},\n  \"asp\": {},\n  \"bsp\": {},\n  \"wall_clock_speedup_asp_over_bsp\": {},\n  \"mean_wait_ratio_bsp_over_asp\": {}\n}}\n",
            c.workers,
            json_f64(c.intensity),
            c.rows,
            c.cols,
            c.updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.per_msg_us,
            c.seed,
            mode_json(&self.asp, "  "),
            mode_json(&self.bsp, "  "),
            json_f64(self.wall_clock_speedup),
            json_f64(self.wait_ratio),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> AblationCfg {
        // Free comms so compute (and therefore the straggler) dominates
        // even at test scale.
        AblationCfg {
            workers: 4,
            rows: 256,
            cols: 32,
            updates: 60,
            per_msg_us: 0,
            ..AblationCfg::default()
        }
    }

    #[test]
    fn asp_beats_bsp_under_straggler() {
        let a = run_async_vs_bsp(small_cfg());
        assert_eq!(a.asp.report.updates, 60);
        assert_eq!(a.bsp.report.updates, 60);
        assert!(
            a.wall_clock_speedup > 1.0,
            "ASP must reach the update budget sooner: speedup {}",
            a.wall_clock_speedup
        );
        assert!(a.bsp.report.mean_wait > a.asp.report.mean_wait);
    }

    #[test]
    fn ablation_is_deterministic() {
        let a = run_async_vs_bsp(small_cfg());
        let b = run_async_vs_bsp(small_cfg());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let a = run_async_vs_bsp(small_cfg());
        let j = a.to_json();
        assert!(j.contains("\"benchmark\": \"async_vs_bsp\""));
        assert!(j.contains("\"asp\""));
        assert!(j.contains("\"bsp\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }
}
