//! The hot-path benchmark: dense-full vs incremental (version-diffed)
//! broadcast on one high-dimensional sparse ASGD workload.
//!
//! Two kinds of numbers come out of it:
//!
//! 1. **Modeled, deterministic** (byte-gated in CI): the two arms on the
//!    simulated engine — bytes shipped to workers (the broadcast wire),
//!    result bytes, updates, final objective, trace. The incremental arm
//!    must cut the broadcast bytes-on-wire by a large factor: it ships
//!    sparse version-diff patches (final values on the union of the gap's
//!    change supports) instead of the dense model.
//! 2. **Wall-clock, host-dependent** (reported, *not* gated; every JSON
//!    key carries a `wc_` prefix so CI can filter them): the same two arms
//!    on the threaded engine, where modeled transfer time becomes real
//!    sleep (`time_scale`), measuring genuine steps/sec. Shipping ~10x
//!    fewer bytes turns directly into wall-clock throughput.
//!
//! The workload uses a ridge-free logistic objective: without the λ·w
//! shrink the ASGD update's change support is exactly the sparse
//! gradient's support, which is what makes version diffs exact (the e2e
//! suite proves bit-identity against the dense arm under free comms).

use std::time::Instant;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};

use crate::json_f64;

/// Configuration of the hot-path benchmark.
#[derive(Debug, Clone)]
pub struct HotpathCfg {
    /// Cluster size.
    pub workers: usize,
    /// Dataset rows.
    pub rows: usize,
    /// Feature dimension (high — the dense model is the expensive wire).
    pub cols: usize,
    /// Mean stored nonzeros per row (low).
    pub nnz_per_row: usize,
    /// Server update budget for the simulated (gated) runs.
    pub updates: u64,
    /// Server update budget for the threaded (wall-clock) runs.
    pub wc_updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size (ridge-free logistic).
    pub step: f64,
    /// Incremental ring capacity for the diff arm.
    pub ring: usize,
    /// Per-message latency in µs.
    pub per_msg_us: u64,
    /// Modeled wire cost in ns/byte (this is what the diff arm saves).
    pub ns_per_byte: f64,
    /// Threaded-engine scale from modeled time to real sleep.
    pub time_scale: f64,
    /// Sampling/generation seed.
    pub seed: u64,
}

impl Default for HotpathCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            rows: 2_048,
            cols: 65_536,
            nnz_per_row: 20,
            updates: 300,
            wc_updates: 400,
            batch_fraction: 0.1,
            step: 0.5,
            ring: 16,
            per_msg_us: 50,
            ns_per_byte: 1.0,
            time_scale: 2.0,
            seed: 2026,
        }
    }
}

/// One simulated (deterministic) run's measurements.
#[derive(Debug, Clone)]
pub struct SimArm {
    /// "dense_full" or "incremental".
    pub label: &'static str,
    /// Full run report.
    pub report: RunReport,
}

/// One threaded (wall-clock) run's measurements.
#[derive(Debug, Clone)]
pub struct WallClockArm {
    /// "dense_full" or "incremental".
    pub label: &'static str,
    /// Real steps (server updates) per second of host time.
    pub steps_per_sec: f64,
    /// Host seconds the run took.
    pub elapsed_secs: f64,
    /// Bytes shipped to workers (completion order makes this
    /// host-dependent on the threaded engine).
    pub bytes_shipped: u64,
    /// Updates actually applied.
    pub updates: u64,
    /// Final objective value.
    pub final_objective: f64,
}

/// The benchmark outcome: both engines, both arms, headline ratios.
#[derive(Debug, Clone)]
pub struct Hotpath {
    /// The configuration measured.
    pub cfg: HotpathCfg,
    /// Simulated dense-full-broadcast arm (deterministic).
    pub sim_dense: SimArm,
    /// Simulated incremental arm (deterministic).
    pub sim_incremental: SimArm,
    /// `sim_dense.bytes_shipped / sim_incremental.bytes_shipped` — the
    /// broadcast bytes-on-wire reduction (deterministic, gated).
    pub bytes_ratio: f64,
    /// Threaded dense-full arm (wall clock, not gated).
    pub wc_dense: WallClockArm,
    /// Threaded incremental arm (wall clock, not gated).
    pub wc_incremental: WallClockArm,
    /// `wc_incremental.steps_per_sec / wc_dense.steps_per_sec`.
    pub wc_speedup: f64,
}

fn dataset(cfg: &HotpathCfg) -> Dataset {
    let (base, w_star) =
        SynthSpec::sparse("hotpath", cfg.rows, cfg.cols, cfg.nnz_per_row, cfg.seed)
            .generate()
            .expect("synthetic generation");
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    Dataset::new("hotpath-pm1", base.features().clone(), labels).expect("relabel")
}

fn cluster(cfg: &HotpathCfg) -> ClusterSpec {
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel {
            per_msg: VDur::from_micros(cfg.per_msg_us),
            ns_per_byte: cfg.ns_per_byte,
        })
        .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2))
}

fn solver_cfg(cfg: &HotpathCfg, updates: u64, ring: usize) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier: BarrierFilter::Asp,
        max_updates: updates,
        eval_every: (updates / 6).max(1),
        seed: cfg.seed,
        bcast_ring: ring,
        ..SolverCfg::default()
    }
}

/// The ridge-free logistic objective: λ = 0 keeps the ASGD change support
/// sparse, which is the workload the incremental broadcast targets.
fn objective() -> Objective {
    Objective::Logistic { lambda: 0.0 }
}

fn run_sim(cfg: &HotpathCfg, data: &Dataset, ring: usize, label: &'static str) -> SimArm {
    let mut ctx = AsyncContext::sim(cluster(cfg));
    let report = Asgd::new(objective()).run(&mut ctx, data, &solver_cfg(cfg, cfg.updates, ring));
    SimArm { label, report }
}

fn run_threaded(
    cfg: &HotpathCfg,
    data: &Dataset,
    ring: usize,
    label: &'static str,
) -> WallClockArm {
    let mut ctx = AsyncContext::threaded(cluster(cfg), cfg.time_scale);
    let mut solver_cfg = solver_cfg(cfg, cfg.wc_updates, ring);
    // No mid-run objective evaluations: the wall clock should measure the
    // iteration loop, not the trace.
    solver_cfg.eval_every = 0;
    let t0 = Instant::now();
    let report = Asgd::new(objective()).run(&mut ctx, data, &solver_cfg);
    let elapsed_secs = t0.elapsed().as_secs_f64();
    WallClockArm {
        label,
        steps_per_sec: report.updates as f64 / elapsed_secs.max(1e-9),
        elapsed_secs,
        bytes_shipped: report.bytes_shipped,
        updates: report.updates,
        final_objective: report.final_objective,
    }
}

/// Runs the four measurements (two simulated and gated, two threaded and
/// wall-clock).
pub fn run_hotpath(cfg: HotpathCfg) -> Hotpath {
    let data = dataset(&cfg);
    let sim_dense = run_sim(&cfg, &data, 0, "dense_full");
    let sim_incremental = run_sim(&cfg, &data, cfg.ring, "incremental");
    let bytes_ratio =
        sim_dense.report.bytes_shipped as f64 / sim_incremental.report.bytes_shipped.max(1) as f64;
    let wc_dense = run_threaded(&cfg, &data, 0, "dense_full");
    let wc_incremental = run_threaded(&cfg, &data, cfg.ring, "incremental");
    let wc_speedup = wc_incremental.steps_per_sec / wc_dense.steps_per_sec.max(1e-9);
    eprintln!(
        "hotpath: modeled broadcast bytes {:.1}x smaller; wall-clock {:.0} vs {:.0} steps/s ({:.2}x) [profile: lto=thin, codegen-units=1, panic=abort bins]",
        bytes_ratio, wc_incremental.steps_per_sec, wc_dense.steps_per_sec, wc_speedup,
    );
    Hotpath {
        cfg,
        sim_dense,
        sim_incremental,
        bytes_ratio,
        wc_dense,
        wc_incremental,
        wc_speedup,
    }
}

fn sim_json(a: &SimArm, indent: &str) -> String {
    let r = &a.report;
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"arm\": \"{}\",\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"result_bytes\": {},\n{i}  \"grad_entries\": {},\n{i}  \"wall_clock_ms\": {},\n{i}  \"final_objective\": {},\n{i}  \"trace_ms_objective\": [{}]\n{i}}}",
        a.label,
        r.updates,
        r.tasks_completed,
        r.max_staleness,
        r.bytes_shipped,
        r.result_bytes,
        r.grad_entries,
        json_f64(r.wall_clock.as_millis_f64()),
        json_f64(r.final_objective),
        trace.join(", "),
        i = indent,
    )
}

fn wc_json(a: &WallClockArm, indent: &str) -> String {
    format!(
        "{{\n{i}  \"arm\": \"{}\",\n{i}  \"wc_steps_per_sec\": {},\n{i}  \"wc_elapsed_secs\": {},\n{i}  \"wc_bytes_shipped\": {},\n{i}  \"wc_updates\": {},\n{i}  \"wc_final_objective\": {}\n{i}}}",
        a.label,
        json_f64(a.steps_per_sec),
        json_f64(a.elapsed_secs),
        a.bytes_shipped,
        a.updates,
        json_f64(a.final_objective),
        i = indent,
    )
}

impl Hotpath {
    /// Renders the benchmark as a stable JSON document. Keys starting with
    /// `wc_` are host wall-clock observations and are excluded from the CI
    /// byte-reproduction gate (`grep -v wc_`); every other byte is
    /// deterministic for a fixed configuration.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        format!(
            "{{\n  \"benchmark\": \"hotpath\",\n  \"description\": \"dense-full vs incremental (version-diffed) broadcast for ASGD on a high-dim sparse logistic workload; modeled bytes on the simulator (gated), real steps/sec on the threaded engine (wc_, not gated); built with the tuned release profile (lto=thin, codegen-units=1, panic=abort for bins)\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"sparse synthetic {}x{} (~{} nnz/row), logistic +-1 labels, lambda 0\",\n    \"updates\": {},\n    \"wc_updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"ring\": {},\n    \"per_msg_us\": {},\n    \"ns_per_byte\": {},\n    \"time_scale\": {},\n    \"seed\": {}\n  }},\n  \"sim_dense_full\": {},\n  \"sim_incremental\": {},\n  \"broadcast_bytes_ratio_dense_over_incremental\": {},\n  \"wc_threaded_dense_full\": {},\n  \"wc_threaded_incremental\": {},\n  \"wc_steps_per_sec_speedup_incremental_over_dense\": {}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.nnz_per_row,
            c.updates,
            c.wc_updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.ring,
            c.per_msg_us,
            json_f64(c.ns_per_byte),
            json_f64(c.time_scale),
            c.seed,
            sim_json(&self.sim_dense, "  "),
            sim_json(&self.sim_incremental, "  "),
            json_f64(self.bytes_ratio),
            wc_json(&self.wc_dense, "  "),
            wc_json(&self.wc_incremental, "  "),
            json_f64(self.wc_speedup),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HotpathCfg {
        HotpathCfg {
            rows: 256,
            cols: 4_096,
            updates: 60,
            wc_updates: 60,
            time_scale: 0.2,
            ..HotpathCfg::default()
        }
    }

    #[test]
    fn incremental_slashes_modeled_broadcast_bytes() {
        let h = run_hotpath(small_cfg());
        assert_eq!(h.sim_dense.report.updates, 60);
        assert_eq!(h.sim_incremental.report.updates, 60);
        assert!(
            h.bytes_ratio > 4.0,
            "diff arm must ship far fewer bytes even at test scale: {}",
            h.bytes_ratio
        );
        // Both arms converge below the ln(2) start.
        let ln2 = std::f64::consts::LN_2;
        assert!(h.sim_dense.report.final_objective < ln2);
        assert!(h.sim_incremental.report.final_objective < ln2);
    }

    #[test]
    fn modeled_numbers_are_deterministic() {
        let a = run_hotpath(small_cfg());
        let b = run_hotpath(small_cfg());
        let strip = |j: &str| -> String {
            j.lines()
                .filter(|l| !l.contains("\"wc_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
        let j = a.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn threaded_arms_complete_their_budget() {
        let h = run_hotpath(small_cfg());
        assert_eq!(h.wc_dense.updates, 60);
        assert_eq!(h.wc_incremental.updates, 60);
        assert!(h.wc_dense.steps_per_sec > 0.0);
        assert!(h.wc_incremental.steps_per_sec > 0.0);
    }
}
