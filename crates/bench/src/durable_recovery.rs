//! The durable-recovery benchmark: what the crash-consistent checkpoint
//! store costs while the run is healthy, and what it buys when the driver
//! dies.
//!
//! One ASGD lineage runs three ways on the simulated cluster (all
//! byte-gated):
//!
//! 1. **uninterrupted** — the full update budget in one run, no durability;
//!    the reference loss and the reference bits.
//! 2. **resumed** — the same lineage "crashes" at a cadence boundary
//!    halfway through (the driver process is gone; everything the
//!    successor knows is on disk) and auto-resumes from the store's newest
//!    generation. The gated acceptance: the resumed lineage finishes
//!    **bit-identically** to the uninterrupted run, and the store's write
//!    amplification (physical bytes written / one checkpoint payload) is
//!    exactly the cadence count plus manifest overhead.
//! 3. **faulted** — after the crash, the newest generation bit-rots and a
//!    torn half-write lands above it ([`DiskFault`] injection). Recovery
//!    falls back to the newest *valid* generation: the cut moves one
//!    cadence earlier, more updates re-run, and the bits still match.
//!
//! A `wc_` arm (host-dependent, ungated) times cold recovery on this
//! machine: open the store, scan to the newest valid generation, verify
//! its checksum, and parse the checkpoint.

use std::path::PathBuf;
use std::time::Instant;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_optim::{
    Asgd, AsyncSolver, Checkpoint, CheckpointStore, DiskFault, DiskFaultPlan, Objective, RunReport,
    SolverCfg,
};

use crate::json_f64;

/// Configuration of the durable-recovery benchmark.
#[derive(Debug, Clone)]
pub struct DurableRecoveryCfg {
    /// Cluster size (BSP waves are this wide, so `checkpoint_every` must
    /// be a multiple of it for cadence saves to land on round boundaries).
    pub workers: usize,
    /// Dataset rows (dense synthetic).
    pub rows: usize,
    /// Dataset feature dimension.
    pub cols: usize,
    /// Total lineage update budget.
    pub updates: u64,
    /// The "crash": the first driver stops after this many updates.
    pub crash_at: u64,
    /// Durable checkpoint cadence in updates.
    pub checkpoint_every: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Seed for data and sampling.
    pub seed: u64,
}

impl Default for DurableRecoveryCfg {
    fn default() -> Self {
        Self {
            workers: 8,
            rows: 2_048,
            cols: 64,
            updates: 128,
            crash_at: 64,
            checkpoint_every: 16,
            batch_fraction: 0.2,
            step: 0.05,
            seed: 2031,
        }
    }
}

/// One recovery arm's outcome (`resumed` and `faulted`).
#[derive(Debug, Clone)]
pub struct RecoveryArm {
    /// "resumed" or "faulted".
    pub name: &'static str,
    /// Generation the successor run picked up.
    pub resumed_from: u64,
    /// Updates the successor re-ran to complete the lineage.
    pub replayed_updates: u64,
    /// Successful store commits across the whole lineage.
    pub saves_ok: u64,
    /// Failed store commits across the whole lineage.
    pub saves_failed: u64,
    /// Physical bytes the store wrote across the whole lineage.
    pub bytes_written: u64,
    /// `bytes_written / checkpoint_payload_bytes` — the durability
    /// protocol's write amplification over one checkpoint's worth of
    /// state.
    pub write_amplification: f64,
    /// The acceptance verdict: the lineage's final iterate is bit-equal
    /// to the uninterrupted run's.
    pub bit_identical: bool,
    /// Final objective of the completed lineage.
    pub final_objective: f64,
}

/// The host-dependent cold-recovery timing (`wc_` keys only).
#[derive(Debug, Clone)]
pub struct WcRecovery {
    /// Host seconds to open the store, find the newest valid generation,
    /// checksum it, and parse the checkpoint.
    pub recover_secs: f64,
    /// Recovery throughput over the verified payload, in MB/s.
    pub mb_per_sec: f64,
}

/// The benchmark outcome.
#[derive(Debug, Clone)]
pub struct DurableRecovery {
    /// The configuration measured.
    pub cfg: DurableRecoveryCfg,
    /// The uninterrupted reference run.
    pub uninterrupted: RunReport,
    /// Serialized size of one checkpoint payload at the crash point.
    pub checkpoint_payload_bytes: u64,
    /// `[resumed, faulted]`.
    pub arms: Vec<RecoveryArm>,
    /// Cold-recovery host timing (not gated).
    pub wc_recovery: WcRecovery,
}

fn spec(cfg: &DurableRecoveryCfg) -> ClusterSpec {
    // Quiet and homogeneous: the bit-identity acceptance needs the resumed
    // run to replay the exact completion order of the uninterrupted one.
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn solver_cfg(cfg: &DurableRecoveryCfg, max_updates: u64, dir: Option<PathBuf>) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier: BarrierFilter::Bsp,
        max_updates,
        checkpoint_every: cfg.checkpoint_every,
        seed: cfg.seed,
        durable_dir: dir,
        ..SolverCfg::default()
    }
}

fn run(cfg: &DurableRecoveryCfg, d: &Dataset, max_updates: u64, dir: Option<PathBuf>) -> RunReport {
    let mut ctx = AsyncContext::sim(spec(cfg));
    Asgd::new(Objective::LeastSquares { lambda: 1e-3 }).run(
        &mut ctx,
        d,
        &solver_cfg(cfg, max_updates, dir),
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("async-bench-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs the benchmark: the uninterrupted reference, the clean
/// crash-and-resume lineage, the faulted-store lineage, and the
/// cold-recovery timing arm.
pub fn run_durable_recovery(cfg: DurableRecoveryCfg) -> DurableRecovery {
    let (dataset, _) = SynthSpec::dense("durable-recovery", cfg.rows, cfg.cols, cfg.seed)
        .generate()
        .expect("synthetic generation");

    let uninterrupted = run(&cfg, &dataset, cfg.updates, None);

    // Arm 2: crash at the cadence boundary, resume from the store.
    let clean_dir = scratch_dir("clean");
    let crashed = run(&cfg, &dataset, cfg.crash_at, Some(clean_dir.clone()));
    let checkpoint_payload_bytes = CheckpointStore::open(&clean_dir)
        .expect("store")
        .latest_valid()
        .map(|(_, bytes)| bytes.len() as u64)
        .expect("crash left a valid generation");

    // The wc_ arm measures this store's cold recovery before the resumed
    // run extends it.
    let wc_recovery = time_recovery(&clean_dir, checkpoint_payload_bytes);

    let resumed = run(&cfg, &dataset, cfg.updates, Some(clean_dir.clone()));
    let resumed_arm = recovery_arm(
        "resumed",
        &crashed,
        &resumed,
        checkpoint_payload_bytes,
        &uninterrupted,
    );
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Arm 3: the same crash, then disk havoc — a torn half-write above the
    // newest generation and bit rot inside it. Recovery must fall back one
    // cadence and still land on the same bits.
    let faulted_dir = scratch_dir("faulted");
    let crashed_f = run(&cfg, &dataset, cfg.crash_at, Some(faulted_dir.clone()));
    let mut havoc = CheckpointStore::open(&faulted_dir)
        .expect("store")
        .with_fault_plan(DiskFaultPlan::scripted(&[(
            0,
            DiskFault::TornWrite { keep_bytes: 11 },
        )]));
    havoc
        .save(cfg.crash_at + cfg.checkpoint_every, &vec![0xEE; 1024])
        .expect("torn writes believe they succeed");
    let newest = faulted_dir.join(format!("gen-{:012}.ckpt", cfg.crash_at));
    let mut payload = std::fs::read(&newest).expect("newest generation payload");
    let mid = payload.len() / 2;
    payload[mid] ^= 0x10;
    std::fs::write(&newest, payload).expect("inject bit rot");

    let resumed_f = run(&cfg, &dataset, cfg.updates, Some(faulted_dir.clone()));
    let faulted_arm = recovery_arm(
        "faulted",
        &crashed_f,
        &resumed_f,
        checkpoint_payload_bytes,
        &uninterrupted,
    );
    let _ = std::fs::remove_dir_all(&faulted_dir);

    eprintln!(
        "durable_recovery: resumed from gen {} (bit_identical {}), faulted fell back to gen {} \
         (bit_identical {}), write amplification {:.2}x, cold recovery {:.1} MB/s",
        resumed_arm.resumed_from,
        resumed_arm.bit_identical,
        faulted_arm.resumed_from,
        faulted_arm.bit_identical,
        resumed_arm.write_amplification,
        wc_recovery.mb_per_sec,
    );
    DurableRecovery {
        cfg,
        uninterrupted,
        checkpoint_payload_bytes,
        arms: vec![resumed_arm, faulted_arm],
        wc_recovery,
    }
}

fn recovery_arm(
    name: &'static str,
    crashed: &RunReport,
    resumed: &RunReport,
    checkpoint_payload_bytes: u64,
    uninterrupted: &RunReport,
) -> RecoveryArm {
    let saves_ok = crashed.durable.store.saves_ok + resumed.durable.store.saves_ok;
    let saves_failed = crashed.durable.store.saves_failed + resumed.durable.store.saves_failed;
    let bytes_written = crashed.durable.store.bytes_written + resumed.durable.store.bytes_written;
    RecoveryArm {
        name,
        resumed_from: resumed.durable.resumed_from.unwrap_or(0),
        replayed_updates: resumed.updates,
        saves_ok,
        saves_failed,
        bytes_written,
        write_amplification: bytes_written as f64 / checkpoint_payload_bytes.max(1) as f64,
        bit_identical: bits_equal(&resumed.final_w, &uninterrupted.final_w),
        final_objective: resumed.final_objective,
    }
}

fn time_recovery(dir: &PathBuf, payload_bytes: u64) -> WcRecovery {
    let t0 = Instant::now();
    let store = CheckpointStore::open(dir).expect("store");
    let (_, bytes) = store.latest_valid().expect("valid generation");
    let _ckpt = Checkpoint::from_bytes(&bytes).expect("checkpoint parses");
    let recover_secs = t0.elapsed().as_secs_f64();
    WcRecovery {
        recover_secs,
        mb_per_sec: payload_bytes as f64 / 1e6 / recover_secs.max(1e-9),
    }
}

fn arm_json(a: &RecoveryArm, indent: &str) -> String {
    format!(
        "{{\n{i}  \"run\": \"{}\",\n{i}  \"resumed_from_generation\": {},\n{i}  \"replayed_updates\": {},\n{i}  \"saves_ok\": {},\n{i}  \"saves_failed\": {},\n{i}  \"bytes_written\": {},\n{i}  \"write_amplification\": {},\n{i}  \"bit_identical_to_uninterrupted\": {},\n{i}  \"final_objective\": {}\n{i}}}",
        a.name,
        a.resumed_from,
        a.replayed_updates,
        a.saves_ok,
        a.saves_failed,
        a.bytes_written,
        json_f64(a.write_amplification),
        a.bit_identical,
        json_f64(a.final_objective),
        i = indent,
    )
}

impl DurableRecovery {
    /// Renders the benchmark as a stable JSON document. Keys starting with
    /// `wc_` are host wall-clock observations and are excluded from the CI
    /// byte-reproduction gate (`grep -v '"wc_'`); every other byte is
    /// deterministic for a fixed configuration.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        let arms: Vec<String> = self
            .arms
            .iter()
            .map(|a| format!("  \"{}\": {}", a.name, arm_json(a, "  ")))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"durable_recovery\",\n  \"description\": \"One ASGD lineage three ways: uninterrupted; crashed at a cadence boundary and auto-resumed from the crash-consistent store (must finish bit-identically); and resumed through disk havoc — a torn half-write above the newest generation plus bit rot inside it — falling back to the newest valid generation. The wc_ keys time cold recovery on this host (ungated)\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"dense synthetic {}x{}\",\n    \"updates\": {},\n    \"crash_at\": {},\n    \"checkpoint_every\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"seed\": {}\n  }},\n  \"uninterrupted\": {{\n    \"updates\": {},\n    \"final_objective\": {},\n    \"wall_clock_ms\": {}\n  }},\n  \"checkpoint_payload_bytes\": {},\n{},\n  \"wc_recovery\": {{\n    \"wc_recover_secs\": {},\n    \"wc_recover_mb_per_sec\": {}\n  }}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.updates,
            c.crash_at,
            c.checkpoint_every,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.seed,
            self.uninterrupted.updates,
            json_f64(self.uninterrupted.final_objective),
            json_f64(self.uninterrupted.wall_clock.as_millis_f64()),
            self.checkpoint_payload_bytes,
            arms.join(",\n"),
            json_f64(self.wc_recovery.recover_secs),
            json_f64(self.wc_recovery.mb_per_sec),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DurableRecoveryCfg {
        DurableRecoveryCfg {
            workers: 4,
            rows: 256,
            cols: 24,
            updates: 48,
            crash_at: 24,
            checkpoint_every: 8,
            ..DurableRecoveryCfg::default()
        }
    }

    #[test]
    fn both_recovery_arms_finish_bit_identically() {
        let b = run_durable_recovery(small_cfg());
        let [resumed, faulted] = &b.arms[..] else {
            panic!("two recovery arms");
        };
        assert_eq!(b.uninterrupted.updates, 48);
        // Clean resume picks up the crash-point generation and replays
        // exactly the missing half.
        assert_eq!(resumed.resumed_from, 24);
        assert_eq!(resumed.replayed_updates, 24);
        assert!(
            resumed.bit_identical,
            "clean resume must reproduce the bits"
        );
        // The faulted store falls back one cadence (gen 24 rotted, the
        // torn gen 32 never validated) and replays more — same bits.
        assert_eq!(faulted.resumed_from, 16);
        assert_eq!(faulted.replayed_updates, 32);
        assert!(
            faulted.bit_identical,
            "fallback resume must reproduce the bits"
        );
        assert!(
            faulted.saves_failed == 0,
            "havoc is injected outside the runs"
        );
        // Amplification: cadence saves both phases + manifests, measured
        // in units of one checkpoint payload.
        assert!(resumed.write_amplification > 1.0);
        assert!(resumed.write_amplification < 20.0);
    }

    #[test]
    fn gated_portion_is_deterministic() {
        let a = run_durable_recovery(small_cfg());
        let b = run_durable_recovery(small_cfg());
        let strip = |j: &str| -> String {
            j.lines()
                .filter(|l| !l.contains("\"wc_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = run_durable_recovery(small_cfg()).to_json();
        assert!(j.contains("\"benchmark\": \"durable_recovery\""));
        for k in [
            "\"resumed\"",
            "\"faulted\"",
            "checkpoint_payload_bytes",
            "write_amplification",
            "wc_recovery",
        ] {
            assert!(j.contains(k), "missing {k}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }
}
