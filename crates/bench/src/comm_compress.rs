//! The compressed-communication benchmark: uncompressed vs top-k vs
//! top-k + int8 gradient shipping on one high-dimensional sparse ASGD
//! workload, with quantized version-diff patches riding the incremental
//! broadcast in the quantized arm.
//!
//! Two kinds of numbers come out of it:
//!
//! 1. **Modeled, deterministic** (byte-gated in CI): three arms on the
//!    simulated engine — worker → server result bytes (what compression
//!    shrinks), driver → worker broadcast bytes, updates, final
//!    objective, trace — plus the headline ratios and a deterministic
//!    `within_loss_tolerance` verdict per compressed arm: the byte
//!    reduction only counts if the arm lands within 10% of the
//!    uncompressed arm's closed optimality gap.
//! 2. **Wall-clock, host-dependent** (reported, *not* gated; keys carry
//!    the `wc_` prefix so CI can filter them): the uncompressed and
//!    quantized arms on the threaded engine, where modeled transfer time
//!    becomes real sleep — shipping ~10x fewer result bytes turns into
//!    steps/sec.
//!
//! The workload is the ridge-free sparse logistic of the hot-path bench:
//! λ = 0 keeps gradients (and therefore top-k selections and broadcast
//! diffs) sparse, which is exactly the configuration `SolverCfg::lint`
//! steers compression users to.

use std::time::Instant;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::Quant;
use async_optim::{Asgd, AsyncSolver, CompressCfg, Objective, RunReport, SolverCfg};

use crate::json_f64;

/// Configuration of the compressed-communication benchmark.
#[derive(Debug, Clone)]
pub struct CommCompressCfg {
    /// Cluster size.
    pub workers: usize,
    /// Dataset rows.
    pub rows: usize,
    /// Feature dimension.
    pub cols: usize,
    /// Mean stored nonzeros per row.
    pub nnz_per_row: usize,
    /// Coordinates shipped per compressed delta.
    pub k: usize,
    /// Server update budget for the simulated (gated) runs.
    pub updates: u64,
    /// Server update budget for the threaded (wall-clock) runs.
    pub wc_updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size (ridge-free logistic).
    pub step: f64,
    /// Incremental ring capacity (all arms; the quantized arm also
    /// quantizes its patches).
    pub ring: usize,
    /// Per-message latency in µs.
    pub per_msg_us: u64,
    /// Modeled wire cost in ns/byte (what compression saves).
    pub ns_per_byte: f64,
    /// Threaded-engine scale from modeled time to real sleep.
    pub time_scale: f64,
    /// Sampling/generation seed.
    pub seed: u64,
}

impl Default for CommCompressCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            rows: 2_048,
            cols: 65_536,
            nnz_per_row: 20,
            k: 256,
            updates: 300,
            wc_updates: 400,
            batch_fraction: 0.1,
            step: 0.5,
            ring: 16,
            per_msg_us: 50,
            ns_per_byte: 50.0,
            time_scale: 2.0,
            seed: 2026,
        }
    }
}

/// One simulated (deterministic) run's measurements.
#[derive(Debug, Clone)]
pub struct SimArm {
    /// "off", "topk" or "topk_i8".
    pub label: &'static str,
    /// Full run report.
    pub report: RunReport,
}

/// One threaded (wall-clock) run's measurements.
#[derive(Debug, Clone)]
pub struct WallClockArm {
    /// "off" or "topk_i8".
    pub label: &'static str,
    /// Real steps (server updates) per second of host time.
    pub steps_per_sec: f64,
    /// Host seconds the run took.
    pub elapsed_secs: f64,
    /// Worker → server result bytes.
    pub result_bytes: u64,
    /// Updates actually applied.
    pub updates: u64,
    /// Final objective value.
    pub final_objective: f64,
}

/// The benchmark outcome: three simulated arms, ratios and verdicts, two
/// wall-clock arms.
#[derive(Debug, Clone)]
pub struct CommCompress {
    /// The configuration measured.
    pub cfg: CommCompressCfg,
    /// Simulated uncompressed arm (deterministic, the reference).
    pub sim_off: SimArm,
    /// Simulated top-k (exact values) arm.
    pub sim_topk: SimArm,
    /// Simulated top-k + int8 arm.
    pub sim_topk_i8: SimArm,
    /// `sim_off.result_bytes / sim_topk.result_bytes`.
    pub result_bytes_ratio_topk: f64,
    /// `sim_off.result_bytes / sim_topk_i8.result_bytes` — the headline.
    pub result_bytes_ratio_topk_i8: f64,
    /// `sim_off.bytes_shipped / sim_topk_i8.bytes_shipped` (the quantized
    /// arm also shrinks the driver → worker patches).
    pub bcast_bytes_ratio_topk_i8: f64,
    /// True when the top-k arm's final gap is within 10% of uncompressed.
    pub topk_within_loss_tolerance: bool,
    /// True when the int8 arm's final gap is within 10% of uncompressed.
    pub topk_i8_within_loss_tolerance: bool,
    /// Threaded uncompressed arm (wall clock, not gated).
    pub wc_off: WallClockArm,
    /// Threaded quantized arm (wall clock, not gated).
    pub wc_topk_i8: WallClockArm,
    /// `wc_topk_i8.steps_per_sec / wc_off.steps_per_sec`.
    pub wc_speedup: f64,
}

fn dataset(cfg: &CommCompressCfg) -> Dataset {
    let (base, w_star) = SynthSpec::sparse(
        "comm-compress",
        cfg.rows,
        cfg.cols,
        cfg.nnz_per_row,
        cfg.seed,
    )
    .generate()
    .expect("synthetic generation");
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    Dataset::new("comm-compress-pm1", base.features().clone(), labels).expect("relabel")
}

fn cluster(cfg: &CommCompressCfg) -> ClusterSpec {
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel {
            per_msg: VDur::from_micros(cfg.per_msg_us),
            ns_per_byte: cfg.ns_per_byte,
        })
        .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2))
}

fn solver_cfg(cfg: &CommCompressCfg, updates: u64, compress: CompressCfg) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier: BarrierFilter::Asp,
        max_updates: updates,
        eval_every: (updates / 6).max(1),
        seed: cfg.seed,
        bcast_ring: cfg.ring,
        compress,
        ..SolverCfg::default()
    }
}

/// The ridge-free logistic objective: λ = 0 keeps the gradient support —
/// and so the top-k candidate set and the broadcast diffs — sparse.
fn objective() -> Objective {
    Objective::Logistic { lambda: 0.0 }
}

fn arms(cfg: &CommCompressCfg) -> [(&'static str, CompressCfg); 3] {
    [
        ("off", CompressCfg::Off),
        (
            "topk",
            CompressCfg::TopK {
                k: cfg.k,
                quant: Quant::Exact,
            },
        ),
        (
            "topk_i8",
            CompressCfg::TopK {
                k: cfg.k,
                quant: Quant::I8,
            },
        ),
    ]
}

fn run_sim(
    cfg: &CommCompressCfg,
    data: &Dataset,
    compress: CompressCfg,
    label: &'static str,
) -> SimArm {
    let mut ctx = AsyncContext::sim(cluster(cfg));
    let report =
        Asgd::new(objective()).run(&mut ctx, data, &solver_cfg(cfg, cfg.updates, compress));
    SimArm { label, report }
}

fn run_threaded(
    cfg: &CommCompressCfg,
    data: &Dataset,
    compress: CompressCfg,
    label: &'static str,
) -> WallClockArm {
    let mut ctx = AsyncContext::threaded(cluster(cfg), cfg.time_scale);
    let mut solver_cfg = solver_cfg(cfg, cfg.wc_updates, compress);
    // No mid-run objective evaluations: the wall clock should measure the
    // iteration loop, not the trace.
    solver_cfg.eval_every = 0;
    let t0 = Instant::now();
    let report = Asgd::new(objective()).run(&mut ctx, data, &solver_cfg);
    let elapsed_secs = t0.elapsed().as_secs_f64();
    WallClockArm {
        label,
        steps_per_sec: report.updates as f64 / elapsed_secs.max(1e-9),
        elapsed_secs,
        result_bytes: report.result_bytes,
        updates: report.updates,
        final_objective: report.final_objective,
    }
}

/// A compressed arm is "within tolerance" when it closes at least 90% of
/// the optimality gap the uncompressed arm closes (both start from ln 2 on
/// ±1 logistic labels at w = 0).
fn within_tolerance(off_final: f64, comp_final: f64) -> bool {
    let f0 = std::f64::consts::LN_2;
    comp_final - off_final <= 0.10 * (f0 - off_final)
}

/// Runs the five measurements (three simulated and gated, two threaded
/// and wall-clock).
pub fn run_comm_compress(cfg: CommCompressCfg) -> CommCompress {
    let data = dataset(&cfg);
    let [(l0, c0), (l1, c1), (l2, c2)] = arms(&cfg);
    let sim_off = run_sim(&cfg, &data, c0, l0);
    let sim_topk = run_sim(&cfg, &data, c1, l1);
    let sim_topk_i8 = run_sim(&cfg, &data, c2, l2);
    let off_bytes = sim_off.report.result_bytes as f64;
    let result_bytes_ratio_topk = off_bytes / sim_topk.report.result_bytes.max(1) as f64;
    let result_bytes_ratio_topk_i8 = off_bytes / sim_topk_i8.report.result_bytes.max(1) as f64;
    let bcast_bytes_ratio_topk_i8 =
        sim_off.report.bytes_shipped as f64 / sim_topk_i8.report.bytes_shipped.max(1) as f64;
    let topk_within_loss_tolerance = within_tolerance(
        sim_off.report.final_objective,
        sim_topk.report.final_objective,
    );
    let topk_i8_within_loss_tolerance = within_tolerance(
        sim_off.report.final_objective,
        sim_topk_i8.report.final_objective,
    );
    let wc_off = run_threaded(&cfg, &data, c0, l0);
    let wc_topk_i8 = run_threaded(&cfg, &data, c2, l2);
    let wc_speedup = wc_topk_i8.steps_per_sec / wc_off.steps_per_sec.max(1e-9);
    eprintln!(
        "comm_compress: modeled result bytes {:.1}x (topk) / {:.1}x (topk+i8) smaller; wall-clock {:.0} vs {:.0} steps/s ({:.2}x) [profile: lto=thin, codegen-units=1, panic=abort bins]",
        result_bytes_ratio_topk,
        result_bytes_ratio_topk_i8,
        wc_topk_i8.steps_per_sec,
        wc_off.steps_per_sec,
        wc_speedup,
    );
    CommCompress {
        cfg,
        sim_off,
        sim_topk,
        sim_topk_i8,
        result_bytes_ratio_topk,
        result_bytes_ratio_topk_i8,
        bcast_bytes_ratio_topk_i8,
        topk_within_loss_tolerance,
        topk_i8_within_loss_tolerance,
        wc_off,
        wc_topk_i8,
        wc_speedup,
    }
}

fn sim_json(a: &SimArm, indent: &str) -> String {
    let r = &a.report;
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"arm\": \"{}\",\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"result_bytes\": {},\n{i}  \"grad_entries\": {},\n{i}  \"wall_clock_ms\": {},\n{i}  \"final_objective\": {},\n{i}  \"trace_ms_objective\": [{}]\n{i}}}",
        a.label,
        r.updates,
        r.tasks_completed,
        r.max_staleness,
        r.bytes_shipped,
        r.result_bytes,
        r.grad_entries,
        json_f64(r.wall_clock.as_millis_f64()),
        json_f64(r.final_objective),
        trace.join(", "),
        i = indent,
    )
}

fn wc_json(a: &WallClockArm, indent: &str) -> String {
    format!(
        "{{\n{i}  \"arm\": \"{}\",\n{i}  \"wc_steps_per_sec\": {},\n{i}  \"wc_elapsed_secs\": {},\n{i}  \"wc_result_bytes\": {},\n{i}  \"wc_updates\": {},\n{i}  \"wc_final_objective\": {}\n{i}}}",
        a.label,
        json_f64(a.steps_per_sec),
        json_f64(a.elapsed_secs),
        a.result_bytes,
        a.updates,
        json_f64(a.final_objective),
        i = indent,
    )
}

impl CommCompress {
    /// Renders the benchmark as a stable JSON document. Keys starting with
    /// `wc_` are host wall-clock observations and are excluded from the CI
    /// byte-reproduction gate (`grep -v wc_`); every other byte —
    /// including the loss-tolerance verdicts — is deterministic for a
    /// fixed configuration.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        format!(
            "{{\n  \"benchmark\": \"comm_compress\",\n  \"description\": \"uncompressed vs top-k vs top-k+int8 gradient shipping (error feedback; quantized incremental-broadcast patches in the int8 arm) for ASGD on a high-dim sparse logistic workload; modeled bytes and loss verdicts on the simulator (gated), real steps/sec on the threaded engine (wc_, not gated); built with the tuned release profile (lto=thin, codegen-units=1, panic=abort bins)\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"sparse synthetic {}x{} (~{} nnz/row), logistic +-1 labels, lambda 0\",\n    \"k\": {},\n    \"updates\": {},\n    \"wc_updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"ring\": {},\n    \"per_msg_us\": {},\n    \"ns_per_byte\": {},\n    \"time_scale\": {},\n    \"seed\": {}\n  }},\n  \"sim_off\": {},\n  \"sim_topk\": {},\n  \"sim_topk_i8\": {},\n  \"result_bytes_ratio_off_over_topk\": {},\n  \"result_bytes_ratio_off_over_topk_i8\": {},\n  \"bcast_bytes_ratio_off_over_topk_i8\": {},\n  \"topk_within_loss_tolerance\": {},\n  \"topk_i8_within_loss_tolerance\": {},\n  \"wc_threaded_off\": {},\n  \"wc_threaded_topk_i8\": {},\n  \"wc_steps_per_sec_speedup_topk_i8_over_off\": {}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.nnz_per_row,
            c.k,
            c.updates,
            c.wc_updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.ring,
            c.per_msg_us,
            json_f64(c.ns_per_byte),
            json_f64(c.time_scale),
            c.seed,
            sim_json(&self.sim_off, "  "),
            sim_json(&self.sim_topk, "  "),
            sim_json(&self.sim_topk_i8, "  "),
            json_f64(self.result_bytes_ratio_topk),
            json_f64(self.result_bytes_ratio_topk_i8),
            json_f64(self.bcast_bytes_ratio_topk_i8),
            self.topk_within_loss_tolerance,
            self.topk_i8_within_loss_tolerance,
            wc_json(&self.wc_off, "  "),
            wc_json(&self.wc_topk_i8, "  "),
            json_f64(self.wc_speedup),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CommCompressCfg {
        CommCompressCfg {
            rows: 256,
            cols: 4_096,
            k: 32,
            updates: 200,
            wc_updates: 60,
            time_scale: 0.2,
            ..CommCompressCfg::default()
        }
    }

    #[test]
    fn compression_slashes_result_bytes_within_loss_tolerance() {
        let b = run_comm_compress(small_cfg());
        assert_eq!(b.sim_off.report.updates, 200);
        assert_eq!(b.sim_topk.report.updates, 200);
        assert_eq!(b.sim_topk_i8.report.updates, 200);
        assert!(
            b.result_bytes_ratio_topk_i8 >= 5.0,
            "int8 top-k must cut result bytes >=5x even at test scale: {}",
            b.result_bytes_ratio_topk_i8
        );
        assert!(
            b.result_bytes_ratio_topk > b.result_bytes_ratio_topk_i8 / 3.0,
            "exact top-k already sparsifies: {}",
            b.result_bytes_ratio_topk
        );
        assert!(
            b.topk_within_loss_tolerance,
            "top-k arm out of tolerance: off {} topk {} i8 {}",
            b.sim_off.report.final_objective,
            b.sim_topk.report.final_objective,
            b.sim_topk_i8.report.final_objective
        );
        assert!(
            b.topk_i8_within_loss_tolerance,
            "top-k+i8 arm out of tolerance"
        );
        // Both compressed arms still land below the ln(2) start.
        let ln2 = std::f64::consts::LN_2;
        assert!(b.sim_topk.report.final_objective < ln2);
        assert!(b.sim_topk_i8.report.final_objective < ln2);
    }

    #[test]
    fn json_is_stable_and_filters_wall_clock_keys() {
        let b = run_comm_compress(small_cfg());
        let j1 = b.to_json();
        let j2 = b.to_json();
        assert_eq!(j1, j2, "rendering must be deterministic");
        for key in [
            "\"benchmark\": \"comm_compress\"",
            "\"result_bytes_ratio_off_over_topk_i8\"",
            "\"topk_i8_within_loss_tolerance\"",
            "\"wc_steps_per_sec\"",
        ] {
            assert!(j1.contains(key), "missing {key}");
        }
        // Every wall-clock observation lives under a wc_ key, so the CI
        // gate's grep -v '"wc_' filter drops them all.
        let gated: Vec<&str> = j1.lines().filter(|l| !l.contains("\"wc_")).collect();
        assert!(gated.iter().all(|l| !l.contains("steps_per_sec")));
        assert!(gated.iter().any(|l| l.contains("result_bytes")));
    }
}
