//! The sparse-fast-path benchmark: dense vs CSR gradient paths on one
//! logical high-dimension/low-nnz (rcv1-shaped) workload, plus a
//! staleness-adaptive momentum (AsyncMsgd) ASP-vs-SSP datapoint.
//!
//! Two claims are measured, both deterministically (the JSON is
//! byte-reproducible for a fixed configuration):
//!
//! 1. **Fast path** — the same logistic-regression problem, stored dense
//!    and as CSR, driven by the same ASGD configuration. The sparse run
//!    must beat the dense run on gradient work (stored entries touched),
//!    result-message bytes, and modeled wall clock (task cost scales with
//!    stored nonzeros).
//! 2. **AsyncMsgd** — the momentum solver under ASP vs SSP against one
//!    controlled-delay straggler on the sparse storage: the convergence
//!    datapoint for the paper's second solver scenario. These runs use
//!    free communication (like the e2e suites) so the straggler and the
//!    barrier — not the modeled wire — set the pace; the sparse fast path
//!    makes tasks so cheap that any per-message cost would otherwise
//!    drown the asynchrony effect being measured.
//!
//! Real (host) kernel timings are printed to stderr for the curious but
//! deliberately kept out of the JSON, which must be diffable in CI.

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_optim::{Asgd, AsyncMsgd, AsyncSolver, Objective, RunReport, SolverCfg};

use crate::json_f64;

/// Configuration of the sparse-fast-path benchmark.
#[derive(Debug, Clone)]
pub struct SparseFastpathCfg {
    /// Cluster size.
    pub workers: usize,
    /// Dataset rows.
    pub rows: usize,
    /// Feature dimension (high, rcv1-like).
    pub cols: usize,
    /// Mean stored nonzeros per row (low).
    pub nnz_per_row: usize,
    /// Server update budget per run.
    pub updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size (logistic).
    pub step: f64,
    /// Base momentum β₀ for the AsyncMsgd datapoint.
    pub momentum: f64,
    /// Straggler intensity for the AsyncMsgd ASP-vs-SSP comparison.
    pub intensity: f64,
    /// Per-message latency in µs (plus 1 ns/byte on payloads).
    pub per_msg_us: u64,
    /// Sampling/generation seed.
    pub seed: u64,
}

impl Default for SparseFastpathCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            rows: 1_024,
            cols: 8_192,
            nnz_per_row: 24,
            updates: 200,
            batch_fraction: 0.1,
            step: 0.5,
            momentum: 0.9,
            intensity: 1.0,
            per_msg_us: 20,
            seed: 2025,
        }
    }
}

/// One run's measurements plus its label.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// "dense", "sparse", "msgd_asp" or "msgd_ssp".
    pub label: &'static str,
    /// Full run report.
    pub report: RunReport,
}

/// The benchmark outcome: the four runs plus the headline ratios.
#[derive(Debug, Clone)]
pub struct SparseFastpath {
    /// The configuration measured.
    pub cfg: SparseFastpathCfg,
    /// ASGD on dense storage (no straggler).
    pub dense: RunResult,
    /// ASGD on CSR storage, same logical data (no straggler).
    pub sparse: RunResult,
    /// AsyncMsgd under ASP on CSR storage, one straggler.
    pub msgd_asp: RunResult,
    /// AsyncMsgd under SSP(2) on CSR storage, one straggler.
    pub msgd_ssp: RunResult,
    /// `dense.grad_entries / sparse.grad_entries` — kernel-work ratio.
    pub entries_ratio: f64,
    /// `dense.result_bytes / sparse.result_bytes` — result-wire ratio.
    pub result_bytes_ratio: f64,
    /// `dense.wall_clock / sparse.wall_clock` — modeled time speedup.
    pub wall_clock_speedup: f64,
    /// `msgd_ssp.wall_clock / msgd_asp.wall_clock` under the straggler.
    pub msgd_asp_speedup: f64,
}

/// The ±1-labelled logistic problem in both storages (labels from the
/// planted linear model, shared between the two datasets).
fn paired_datasets(cfg: &SparseFastpathCfg) -> (Dataset, Dataset) {
    let (base, w_star) =
        SynthSpec::sparse("fastpath", cfg.rows, cfg.cols, cfg.nnz_per_row, cfg.seed)
            .generate()
            .expect("synthetic generation");
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let sparse = Dataset::new("fastpath-pm1", base.features().clone(), labels).expect("relabel");
    let dense = sparse.densified();
    (sparse, dense)
}

fn ctx(cfg: &SparseFastpathCfg, delay: DelayModel) -> AsyncContext {
    AsyncContext::sim(
        ClusterSpec::homogeneous(cfg.workers, delay)
            .with_comm(CommModel {
                per_msg: VDur::from_micros(cfg.per_msg_us),
                ns_per_byte: 1.0,
            })
            .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2)),
    )
}

fn solver_cfg(cfg: &SparseFastpathCfg, barrier: BarrierFilter) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier,
        max_updates: cfg.updates,
        eval_every: (cfg.updates / 8).max(1),
        seed: cfg.seed,
        ..SolverCfg::default()
    }
}

/// Runs the four measurements. Host-time observations go to stderr; every
/// value in the returned structure is deterministic.
pub fn run_sparse_fastpath(cfg: SparseFastpathCfg) -> SparseFastpath {
    let objective = Objective::Logistic { lambda: 1e-3 };
    let (sparse_d, dense_d) = paired_datasets(&cfg);

    let timed = |label: &'static str, report_fn: &mut dyn FnMut() -> RunReport| {
        let t0 = std::time::Instant::now();
        let report = report_fn();
        eprintln!(
            "sparse_fastpath: {label} ran in {:?} host time ({} entries touched)",
            t0.elapsed(),
            report.grad_entries
        );
        RunResult { label, report }
    };

    let dense = timed("dense", &mut || {
        let mut c = ctx(&cfg, DelayModel::None);
        Asgd::new(objective).run(&mut c, &dense_d, &solver_cfg(&cfg, BarrierFilter::Asp))
    });
    let sparse = timed("sparse", &mut || {
        let mut c = ctx(&cfg, DelayModel::None);
        Asgd::new(objective).run(&mut c, &sparse_d, &solver_cfg(&cfg, BarrierFilter::Asp))
    });
    let straggler = DelayModel::ControlledDelay {
        worker: cfg.workers - 1,
        intensity: cfg.intensity,
    };
    // Free comms for the momentum comparison: the straggler stretches
    // compute, and compute must set the pace for the barrier choice to
    // matter on fast sparse tasks.
    let msgd_ctx = |delay: DelayModel| {
        AsyncContext::sim(
            ClusterSpec::homogeneous(cfg.workers, delay)
                .with_comm(CommModel::free())
                .with_sched_overhead(VDur::ZERO),
        )
    };
    let msgd_asp = timed("msgd_asp", &mut || {
        let mut c = msgd_ctx(straggler.clone());
        AsyncMsgd::new(objective).with_momentum(cfg.momentum).run(
            &mut c,
            &sparse_d,
            &solver_cfg(&cfg, BarrierFilter::Asp),
        )
    });
    let msgd_ssp = timed("msgd_ssp", &mut || {
        let mut c = msgd_ctx(straggler.clone());
        AsyncMsgd::new(objective).with_momentum(cfg.momentum).run(
            &mut c,
            &sparse_d,
            &solver_cfg(&cfg, BarrierFilter::Ssp { slack: 2 }),
        )
    });

    let entries_ratio = dense.report.grad_entries as f64 / sparse.report.grad_entries.max(1) as f64;
    let result_bytes_ratio =
        dense.report.result_bytes as f64 / sparse.report.result_bytes.max(1) as f64;
    let wall_clock_speedup = dense.report.wall_clock.as_micros() as f64
        / sparse.report.wall_clock.as_micros().max(1) as f64;
    let msgd_asp_speedup = msgd_ssp.report.wall_clock.as_micros() as f64
        / msgd_asp.report.wall_clock.as_micros().max(1) as f64;

    SparseFastpath {
        cfg,
        dense,
        sparse,
        msgd_asp,
        msgd_ssp,
        entries_ratio,
        result_bytes_ratio,
        wall_clock_speedup,
        msgd_asp_speedup,
    }
}

fn run_json(r: &RunResult, indent: &str) -> String {
    let rep = &r.report;
    let clocks: Vec<String> = rep.worker_clocks.iter().map(|c| c.to_string()).collect();
    let trace: Vec<String> = rep
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"run\": \"{}\",\n{i}  \"wall_clock_ms\": {},\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"grad_entries\": {},\n{i}  \"result_bytes\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"final_objective\": {},\n{i}  \"worker_clocks\": [{}],\n{i}  \"trace_ms_objective\": [{}]\n{i}}}",
        r.label,
        json_f64(rep.wall_clock.as_millis_f64()),
        rep.updates,
        rep.tasks_completed,
        rep.max_staleness,
        rep.grad_entries,
        rep.result_bytes,
        rep.bytes_shipped,
        json_f64(rep.final_objective),
        clocks.join(", "),
        trace.join(", "),
        i = indent,
    )
}

impl SparseFastpath {
    /// Renders the benchmark as a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        format!(
            "{{\n  \"benchmark\": \"sparse_fastpath\",\n  \"description\": \"CSR vs dense gradient path on one logical high-dim/low-nnz logistic workload (ASGD), plus AsyncMsgd staleness-adaptive momentum under ASP vs SSP with one controlled-delay straggler\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"sparse synthetic {}x{} (~{} nnz/row), logistic +-1 labels\",\n    \"updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"momentum\": {},\n    \"straggler_intensity\": {},\n    \"per_msg_us\": {},\n    \"seed\": {}\n  }},\n  \"dense\": {},\n  \"sparse\": {},\n  \"msgd_asp\": {},\n  \"msgd_ssp\": {},\n  \"grad_entries_ratio_dense_over_sparse\": {},\n  \"result_bytes_ratio_dense_over_sparse\": {},\n  \"wall_clock_speedup_sparse_over_dense\": {},\n  \"wall_clock_speedup_msgd_asp_over_ssp\": {}\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            c.nnz_per_row,
            c.updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            json_f64(c.momentum),
            json_f64(c.intensity),
            c.per_msg_us,
            c.seed,
            run_json(&self.dense, "  "),
            run_json(&self.sparse, "  "),
            run_json(&self.msgd_asp, "  "),
            run_json(&self.msgd_ssp, "  "),
            json_f64(self.entries_ratio),
            json_f64(self.result_bytes_ratio),
            json_f64(self.wall_clock_speedup),
            json_f64(self.msgd_asp_speedup),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SparseFastpathCfg {
        SparseFastpathCfg {
            rows: 200,
            cols: 1_000,
            nnz_per_row: 12,
            updates: 60,
            per_msg_us: 0,
            ..SparseFastpathCfg::default()
        }
    }

    #[test]
    fn sparse_beats_dense_on_every_fastpath_metric() {
        let b = run_sparse_fastpath(small_cfg());
        assert_eq!(b.dense.report.updates, 60);
        assert_eq!(b.sparse.report.updates, 60);
        assert!(
            b.entries_ratio > 10.0,
            "kernel-work ratio {}",
            b.entries_ratio
        );
        assert!(
            b.result_bytes_ratio > 2.0,
            "wire ratio {}",
            b.result_bytes_ratio
        );
        assert!(
            b.wall_clock_speedup > 2.0,
            "modeled speedup {}",
            b.wall_clock_speedup
        );
    }

    #[test]
    fn msgd_converges_and_asp_outruns_ssp() {
        let b = run_sparse_fastpath(small_cfg());
        // Both momentum runs converge well below the ln(2) start.
        let ln2 = std::f64::consts::LN_2;
        eprintln!(
            "msgd finals: asp {} ssp {} speedup {}",
            b.msgd_asp.report.final_objective,
            b.msgd_ssp.report.final_objective,
            b.msgd_asp_speedup
        );
        // ASP trades per-update progress for wall clock: it sees far more
        // staleness, so it lands higher than SSP but still descends.
        assert!(b.msgd_asp.report.final_objective < 0.85 * ln2);
        assert!(b.msgd_ssp.report.final_objective < 0.6 * ln2);
        // Under a straggler, ASP reaches the budget first.
        assert!(
            b.msgd_asp_speedup > 1.0,
            "ASP-MSGD speedup {}",
            b.msgd_asp_speedup
        );
    }

    #[test]
    fn fastpath_json_is_deterministic_and_well_formed() {
        let a = run_sparse_fastpath(small_cfg());
        let b = run_sparse_fastpath(small_cfg());
        assert_eq!(a.to_json(), b.to_json());
        let j = a.to_json();
        assert!(j.contains("\"benchmark\": \"sparse_fastpath\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }
}
