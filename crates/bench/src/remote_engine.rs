//! The remote-engine benchmark: real cross-process optimization throughput
//! behind the unified [`Engine`](sparklet::Engine) API.
//!
//! One ASGD workload runs three ways:
//!
//! 1. **Simulated, deterministic** (byte-gated in CI): the virtual-time
//!    oracle. Its trace, byte ledger, and final objective are exact
//!    functions of the configuration.
//! 2. **Remote over worker processes** (`wc_` keys, host-dependent, not
//!    gated): the same solver on [`sparklet::EngineKind::Remote`] — one OS process
//!    per worker over loopback TCP, blocks shipped once per incarnation,
//!    model versions resolved through `WirePlan`s, minibatch gradients
//!    recomputed worker-side. The headline number is genuine end-to-end
//!    steps/s through the wire protocol, serialization and kernel included.
//! 3. **Remote over loopback threads** (`wc_` keys): identical wire
//!    protocol without process spawns — isolates frame/codec overhead from
//!    process scheduling, and doubles as the arm CI can always run.
//!
//! Each remote arm also records its optimality-gap agreement with the sim
//! oracle — the same contract `remote_e2e.rs` asserts — under `wc_` keys
//! (the gap depends on the host's real completion order).

use std::time::Instant;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};
use sparklet::{Driver, EngineBuilder};

use crate::json_f64;

/// Configuration of the remote-engine benchmark.
#[derive(Debug, Clone)]
pub struct RemoteEngineCfg {
    /// Cluster size (one worker process per worker on the remote arms).
    pub workers: usize,
    /// Dataset rows.
    pub rows: usize,
    /// Feature dimension.
    pub cols: usize,
    /// Ridge coefficient.
    pub lambda: f64,
    /// Server update budget for the simulated (gated) run.
    pub updates: u64,
    /// Server update budget for the remote (wall-clock) arms.
    pub wc_updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Sampling/generation seed.
    pub seed: u64,
    /// Worker executable for the process arm; `None` uses
    /// [`sparklet::remote::default_worker_bin`] discovery.
    pub worker_bin: Option<std::path::PathBuf>,
}

impl Default for RemoteEngineCfg {
    fn default() -> Self {
        Self {
            workers: 4,
            rows: 2_048,
            cols: 256,
            lambda: 1e-3,
            updates: 300,
            wc_updates: 600,
            batch_fraction: 0.1,
            step: 0.04,
            seed: 2028,
            worker_bin: None,
        }
    }
}

/// One remote arm's wall-clock measurements (all host-dependent).
#[derive(Debug, Clone)]
pub struct RemoteArm {
    /// "process" (real OS worker processes) or "loopback" (in-process
    /// threads speaking the same wire protocol).
    pub transport: &'static str,
    /// Server updates per second of host time, end to end through the
    /// frame codec.
    pub steps_per_sec: f64,
    /// Host seconds the run took.
    pub elapsed_secs: f64,
    /// Updates actually applied.
    pub updates: u64,
    /// Final objective value.
    pub final_objective: f64,
    /// `(remote_gap − sim_gap) / gap0`: signed relative disagreement with
    /// the oracle on how far the run closed the optimality gap.
    pub gap_disagreement: f64,
    /// The `remote_e2e.rs` contract: both gaps below 15% of the initial
    /// gap and within 10% of each other.
    pub agrees_with_sim: bool,
}

/// The benchmark outcome: the gated oracle plus the wall-clock arms.
#[derive(Debug, Clone)]
pub struct RemoteEngine {
    /// The configuration measured.
    pub cfg: RemoteEngineCfg,
    /// Deterministic simulated run (byte-gated).
    pub sim: RunReport,
    /// Initial optimality gap `f(0) − f*` of the workload.
    pub gap0: f64,
    /// Sim run's final optimality gap.
    pub sim_gap: f64,
    /// Remote arms: `[process, loopback]` (wall clock, not gated).
    pub arms: Vec<RemoteArm>,
}

fn dataset(cfg: &RemoteEngineCfg) -> Dataset {
    SynthSpec::dense("remote-engine", cfg.rows, cfg.cols, cfg.seed)
        .generate()
        .expect("synthetic generation")
        .0
}

fn cluster(cfg: &RemoteEngineCfg) -> ClusterSpec {
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn solver_cfg(cfg: &RemoteEngineCfg, updates: u64, eval_every: u64) -> SolverCfg {
    SolverCfg::builder()
        .step(cfg.step)
        .batch_fraction(cfg.batch_fraction)
        .barrier(BarrierFilter::Asp)
        .max_updates(updates)
        .eval_every(eval_every)
        .seed(cfg.seed)
        .build()
        .expect("benchmark configuration is valid")
}

fn objective(cfg: &RemoteEngineCfg) -> Objective {
    Objective::LeastSquares { lambda: cfg.lambda }
}

fn run_remote(
    cfg: &RemoteEngineCfg,
    data: &Dataset,
    transport: &'static str,
    baseline: f64,
    gap0: f64,
    sim_gap: f64,
) -> Option<RemoteArm> {
    let mut b = EngineBuilder::remote().spec(cluster(cfg)).time_scale(0.0);
    b = match transport {
        "loopback" => b.loopback_workers(std::sync::Arc::new(async_optim::worker_registry)),
        _ => match &cfg.worker_bin {
            Some(p) => b.worker_bin(p.clone()),
            None => b,
        },
    };
    let engine = match b.build() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("remote_engine: {transport} arm unavailable ({e}); skipping");
            return None;
        }
    };
    let mut ctx = AsyncContext::new(Driver::from_engine(engine));
    let t0 = Instant::now();
    let report = Asgd::new(objective(cfg)).run(&mut ctx, data, &solver_cfg(cfg, cfg.wc_updates, 0));
    let elapsed_secs = t0.elapsed().as_secs_f64();
    let gap = report.final_objective - baseline;
    Some(RemoteArm {
        transport,
        steps_per_sec: report.updates as f64 / elapsed_secs.max(1e-9),
        elapsed_secs,
        updates: report.updates,
        final_objective: report.final_objective,
        gap_disagreement: (gap - sim_gap) / gap0.max(1e-12),
        agrees_with_sim: gap < 0.15 * gap0
            && sim_gap < 0.15 * gap0
            && (gap - sim_gap).abs() <= 0.10 * gap0,
    })
}

/// Runs the oracle and both remote arms.
pub fn run_remote_engine(cfg: RemoteEngineCfg) -> RemoteEngine {
    let data = dataset(&cfg);
    let obj = objective(&cfg);
    let baseline = obj
        .optimum(ParallelismCfg::sequential(), &data)
        .expect("least-squares baseline");
    let f0 = obj.full_objective(ParallelismCfg::sequential(), &data, &vec![0.0; data.cols()]);
    let gap0 = f0 - baseline;
    let mut sim_ctx = AsyncContext::sim(cluster(&cfg));
    let sim = Asgd::new(obj).run(
        &mut sim_ctx,
        &data,
        &solver_cfg(&cfg, cfg.updates, (cfg.updates / 6).max(1)),
    );
    let sim_gap = sim.final_objective - baseline;
    let arms: Vec<RemoteArm> = ["process", "loopback"]
        .iter()
        .filter_map(|t| run_remote(&cfg, &data, t, baseline, gap0, sim_gap))
        .collect();
    for a in &arms {
        eprintln!(
            "remote_engine: {} arm {:.0} steps/s over {} updates; agrees with sim: {}",
            a.transport, a.steps_per_sec, a.updates, a.agrees_with_sim,
        );
    }
    RemoteEngine {
        cfg,
        sim,
        gap0,
        sim_gap,
        arms,
    }
}

fn sim_json(r: &RunReport, indent: &str) -> String {
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"result_bytes\": {},\n{i}  \"grad_entries\": {},\n{i}  \"wall_clock_ms\": {},\n{i}  \"final_objective\": {},\n{i}  \"trace_ms_objective\": [{}]\n{i}}}",
        r.updates,
        r.tasks_completed,
        r.max_staleness,
        r.bytes_shipped,
        r.result_bytes,
        r.grad_entries,
        json_f64(r.wall_clock.as_millis_f64()),
        json_f64(r.final_objective),
        trace.join(", "),
        i = indent,
    )
}

fn arm_json(a: &RemoteArm, indent: &str) -> String {
    // Every line of an arm object carries a `wc_` key: the measurements are
    // host wall-clock observations and the CI byte gate drops them.
    format!(
        "{{\n{i}  \"wc_transport\": \"{}\",\n{i}  \"wc_steps_per_sec\": {},\n{i}  \"wc_elapsed_secs\": {},\n{i}  \"wc_updates\": {},\n{i}  \"wc_final_objective\": {},\n{i}  \"wc_gap_disagreement_vs_sim\": {},\n{i}  \"wc_agrees_with_sim\": {}\n{i}}}",
        a.transport,
        json_f64(a.steps_per_sec),
        json_f64(a.elapsed_secs),
        a.updates,
        json_f64(a.final_objective),
        json_f64(a.gap_disagreement),
        a.agrees_with_sim,
        i = indent,
    )
}

impl RemoteEngine {
    /// Renders the benchmark as a stable JSON document. Keys starting with
    /// `wc_` are host wall-clock observations and are excluded from the CI
    /// byte-reproduction gate (`grep -v '"wc_'`); every other byte is
    /// deterministic for a fixed configuration. The remote arm *count* can
    /// vary only if the process arm is unavailable, so the arm array is
    /// rendered as one line per arm — each fully under `wc_` keys except
    /// the braces, which stay balanced either way.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        let arms: Vec<String> = self.arms.iter().map(|a| arm_json(a, "    ")).collect();
        format!(
            "{{\n  \"benchmark\": \"remote_engine\",\n  \"description\": \"ASGD through the multi-process remote engine vs the deterministic simulator: the sim oracle is byte-gated; wc_ arms are real cross-process (and loopback-thread) steps/sec through the frame codec with sim-agreement verdicts (host-dependent, ungated)\",\n  \"config\": {{\n    \"workers\": {},\n    \"dataset\": \"dense synthetic {}x{}, lambda {}\",\n    \"updates\": {},\n    \"wc_updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"seed\": {}\n  }},\n  \"sim_oracle\": {},\n  \"sim_final_gap_over_gap0\": {},\n  \"wc_remote_arms\": [\n    {}\n  ]\n}}\n",
            c.workers,
            c.rows,
            c.cols,
            json_f64(c.lambda),
            c.updates,
            c.wc_updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.seed,
            sim_json(&self.sim, "  "),
            json_f64(self.sim_gap / self.gap0.max(1e-12)),
            arms.join(",\n    "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RemoteEngineCfg {
        RemoteEngineCfg {
            rows: 256,
            cols: 32,
            updates: 60,
            wc_updates: 60,
            // Tests must not depend on a prebuilt worker binary; the
            // loopback arm covers the wire protocol.
            worker_bin: Some("/nonexistent/async_worker".into()),
            ..RemoteEngineCfg::default()
        }
    }

    #[test]
    fn loopback_arm_agrees_with_the_sim_oracle() {
        let r = run_remote_engine(small_cfg());
        assert_eq!(r.sim.updates, 60);
        let loopback = r
            .arms
            .iter()
            .find(|a| a.transport == "loopback")
            .expect("loopback arm always runs");
        assert_eq!(loopback.updates, 60);
        assert!(
            loopback.agrees_with_sim,
            "gap disagreement {}",
            loopback.gap_disagreement
        );
    }

    #[test]
    fn gated_portion_is_deterministic() {
        let a = run_remote_engine(small_cfg());
        let b = run_remote_engine(small_cfg());
        let strip = |j: &str| -> String {
            j.lines()
                .filter(|l| !l.contains("\"wc_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
        let j = a.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn missing_worker_binary_degrades_to_the_loopback_arm() {
        let r = run_remote_engine(small_cfg());
        assert!(r.arms.iter().all(|a| a.transport == "loopback"));
    }
}
