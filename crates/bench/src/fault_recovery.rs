//! The fault-recovery benchmark: what the supervision layer buys when
//! workers die without warning and *nothing scripted ever brings them
//! back*.
//!
//! Unlike [`crate::elastic_chaos`] — where the churn script revives every
//! casualty itself — the kills here are one-way: a staggered burst takes
//! out part of the fleet mid-run and only the driver's supervisor
//! ([`sparklet::SuperviseCfg`]: exponential backoff, jitter, crash-loop
//! circuit breaker) can restore them, while the [`AsyncContext`] retry
//! layer re-places the tasks that died with them. The same ASGD workload
//! runs three ways on the simulated cluster (all byte-gated):
//!
//! 1. **baseline** — no faults; the reference wall clock and loss.
//! 2. **unsupervised** — the kill burst with no supervisor and no retry:
//!    in-flight tasks on the casualties surface as permanent losses and
//!    the survivors carry the budget alone.
//! 3. **supervised** — the same burst with the supervisor and bounded
//!    retry on: every casualty is respawned after a backed-off delay,
//!    every stranded task is re-placed, and the run ends with zero losses.
//!
//! A fourth arm (`wc_` keys, host-dependent, not gated) runs the
//! supervised stack against real loopback-TCP workers with a seeded
//! [`FaultPlan`] dropping frames on the live connections — end-to-end
//! steps/s through heartbeats, task deadlines, retry, and respawn.

use std::sync::Arc;
use std::time::{Duration, Instant};

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};
use sparklet::{Driver, EngineBuilder, FaultPlan, SuperviseCfg};

use crate::json_f64;

/// Configuration of the fault-recovery benchmark.
#[derive(Debug, Clone)]
pub struct FaultRecoveryCfg {
    /// Cluster size.
    pub workers: usize,
    /// Workers killed mid-run (one-way; only the supervisor revives).
    pub kills: usize,
    /// Dataset rows (dense synthetic).
    pub rows: usize,
    /// Dataset feature dimension.
    pub cols: usize,
    /// Server update budget per simulated run.
    pub updates: u64,
    /// Mini-batch fraction per task.
    pub batch_fraction: f64,
    /// Step size.
    pub step: f64,
    /// Per-message latency in µs (plus 1 ns/byte on payloads).
    pub per_msg_us: u64,
    /// First kill lands at this fraction of the baseline wall clock;
    /// later kills are staggered after it.
    pub kill_at_fraction: f64,
    /// Supervisor backoff base as a fraction of the baseline wall clock
    /// (scales the respawn delay to the workload's own pace).
    pub backoff_fraction: f64,
    /// Retry budget per lost task in the supervised arms.
    pub retry_lost: u32,
    /// Server update budget for the loopback wall-clock arm.
    pub wc_updates: u64,
    /// Frame-drop probability on the loopback arm's wire.
    pub wc_drop: f64,
    /// Seed for data, sampling, supervisor jitter, and wire faults.
    pub seed: u64,
}

impl Default for FaultRecoveryCfg {
    fn default() -> Self {
        Self {
            workers: 8,
            kills: 3,
            rows: 2_048,
            cols: 64,
            updates: 320,
            batch_fraction: 0.2,
            step: 0.05,
            per_msg_us: 20,
            kill_at_fraction: 0.25,
            backoff_fraction: 0.05,
            retry_lost: 3,
            wc_updates: 400,
            wc_drop: 0.02,
            seed: 2029,
        }
    }
}

/// One simulated arm's outcome.
#[derive(Debug, Clone)]
pub struct SimArm {
    /// "baseline", "unsupervised" or "supervised".
    pub name: &'static str,
    /// Full run report (includes the loss/retry counters).
    pub report: RunReport,
    /// Supervised respawns the driver performed during the run.
    pub respawns: u64,
}

/// The loopback wall-clock arm (host-dependent, `wc_` keys only).
#[derive(Debug, Clone)]
pub struct WcArm {
    /// Server updates per second of host time.
    pub steps_per_sec: f64,
    /// Host seconds the run took.
    pub elapsed_secs: f64,
    /// Updates actually applied.
    pub updates: u64,
    /// Tasks permanently lost (must be zero for a recovered run).
    pub lost_tasks: u64,
    /// Tasks re-placed by the retry layer.
    pub retried_tasks: u64,
    /// Workers the supervisor respawned.
    pub respawns: u64,
    /// The acceptance verdict: full budget spent and nothing lost.
    pub recovered: bool,
}

/// The benchmark outcome: three gated simulated arms plus the wall-clock
/// loopback arm.
#[derive(Debug, Clone)]
pub struct FaultRecovery {
    /// The configuration measured.
    pub cfg: FaultRecoveryCfg,
    /// Virtual kill instants (identical across the faulty arms).
    pub kill_schedule: Vec<(usize, VTime)>,
    /// `[baseline, unsupervised, supervised]`.
    pub arms: Vec<SimArm>,
    /// `supervised.wall_clock / baseline.wall_clock`.
    pub recovery_slowdown: f64,
    /// `supervised.final_error / baseline.final_error`.
    pub error_ratio: f64,
    /// Loopback wall-clock arm (not gated).
    pub wc_loopback: WcArm,
}

fn spec(cfg: &FaultRecoveryCfg) -> ClusterSpec {
    ClusterSpec::homogeneous(cfg.workers, DelayModel::None)
        .with_comm(CommModel {
            per_msg: VDur::from_micros(cfg.per_msg_us),
            ns_per_byte: 1.0,
        })
        .with_sched_overhead(VDur::from_micros(cfg.per_msg_us / 2))
}

fn solver_cfg(cfg: &FaultRecoveryCfg, updates: u64, retry: u32, baseline: f64) -> SolverCfg {
    SolverCfg {
        step: cfg.step,
        batch_fraction: cfg.batch_fraction,
        barrier: BarrierFilter::Asp,
        max_updates: updates,
        eval_every: (updates / 8).max(1),
        baseline,
        seed: cfg.seed,
        retry_lost: retry,
        ..SolverCfg::default()
    }
}

/// Kill instants: the burst starts at `kill_at_fraction` of the baseline
/// wall clock and staggers one casualty per 5% after it. Workers `1..`
/// die (worker 0 always survives, so the run can never fully stall).
fn kill_schedule(cfg: &FaultRecoveryCfg, horizon: VTime) -> Vec<(usize, VTime)> {
    let span = horizon.as_micros() as f64;
    (0..cfg.kills.min(cfg.workers.saturating_sub(1)))
        .map(|k| {
            let frac = cfg.kill_at_fraction + 0.05 * k as f64;
            (k + 1, VTime::from_micros((span * frac).max(1.0) as u64))
        })
        .collect()
}

/// Runs the benchmark: baseline, unsupervised kills, supervised kills,
/// then the loopback wall-clock arm.
pub fn run_fault_recovery(cfg: FaultRecoveryCfg) -> FaultRecovery {
    let (dataset, _) = SynthSpec::dense("fault-recovery", cfg.rows, cfg.cols, cfg.seed)
        .generate()
        .expect("synthetic generation");
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective
        .optimum(ParallelismCfg::sequential(), &dataset)
        .expect("least-squares baseline");

    let clean = {
        let mut ctx = AsyncContext::sim(spec(&cfg));
        let report = Asgd::new(objective).run(
            &mut ctx,
            &dataset,
            &solver_cfg(&cfg, cfg.updates, 0, baseline),
        );
        SimArm {
            name: "baseline",
            report,
            respawns: 0,
        }
    };
    let schedule = kill_schedule(&cfg, clean.report.wall_clock);

    let unsupervised = {
        let mut ctx = AsyncContext::sim(spec(&cfg));
        for &(w, at) in &schedule {
            ctx.driver_mut().schedule_failure(w, at);
        }
        let report = Asgd::new(objective).run(
            &mut ctx,
            &dataset,
            &solver_cfg(&cfg, cfg.updates, 0, baseline),
        );
        SimArm {
            name: "unsupervised",
            report,
            respawns: ctx.driver().supervised_respawns(),
        }
    };

    let supervised = {
        let mut ctx = AsyncContext::sim(spec(&cfg));
        for &(w, at) in &schedule {
            ctx.driver_mut().schedule_failure(w, at);
        }
        let base = clean
            .report
            .wall_clock
            .saturating_since(VTime::ZERO)
            .mul_f64(cfg.backoff_fraction);
        ctx.driver_mut().supervise(SuperviseCfg {
            backoff_base: base,
            backoff_max: base.mul_f64(8.0),
            seed: cfg.seed,
            ..SuperviseCfg::default()
        });
        let report = Asgd::new(objective).run(
            &mut ctx,
            &dataset,
            &solver_cfg(&cfg, cfg.updates, cfg.retry_lost, baseline),
        );
        SimArm {
            name: "supervised",
            report,
            respawns: ctx.driver().supervised_respawns(),
        }
    };

    let recovery_slowdown = supervised.report.wall_clock.as_micros() as f64
        / clean.report.wall_clock.as_micros().max(1) as f64;
    let error_ratio = supervised.report.trace.final_error().unwrap_or(f64::NAN)
        / clean.report.trace.final_error().unwrap_or(f64::NAN);
    let wc_loopback = run_wc_loopback(&cfg, &dataset, baseline);
    eprintln!(
        "fault_recovery: supervised run lost {} / retried {} / respawned {} \
         (unsupervised lost {}), slowdown {recovery_slowdown:.3}x",
        supervised.report.lost_tasks,
        supervised.report.retried_tasks,
        supervised.respawns,
        unsupervised.report.lost_tasks,
    );
    FaultRecovery {
        cfg,
        kill_schedule: schedule,
        arms: vec![clean, unsupervised, supervised],
        recovery_slowdown,
        error_ratio,
        wc_loopback,
    }
}

/// The wall-clock arm: the full supervision stack over loopback-TCP
/// workers with frames randomly dropped on the live connections.
fn run_wc_loopback(cfg: &FaultRecoveryCfg, dataset: &Dataset, baseline: f64) -> WcArm {
    let engine = EngineBuilder::remote()
        .spec(spec(cfg))
        .time_scale(0.0)
        .loopback_workers(Arc::new(async_optim::worker_registry))
        .heartbeat(Duration::from_millis(3))
        .liveness(Duration::from_millis(150))
        .task_deadline(Duration::from_millis(80))
        .fault(FaultPlan {
            seed: cfg.seed,
            drop: cfg.wc_drop,
            ..FaultPlan::none()
        })
        .build()
        .expect("loopback workers need no binary");
    let mut ctx = AsyncContext::new(Driver::from_engine(engine));
    ctx.driver_mut().supervise(SuperviseCfg {
        backoff_base: VDur::from_millis(4),
        backoff_max: VDur::from_millis(40),
        max_crashes: 50,
        crash_window: VDur::from_millis(50),
        seed: cfg.seed,
        ..SuperviseCfg::default()
    });
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let t0 = Instant::now();
    let report = Asgd::new(objective).run(
        &mut ctx,
        dataset,
        &solver_cfg(cfg, cfg.wc_updates, cfg.retry_lost, baseline),
    );
    let elapsed_secs = t0.elapsed().as_secs_f64();
    WcArm {
        steps_per_sec: report.updates as f64 / elapsed_secs.max(1e-9),
        elapsed_secs,
        updates: report.updates,
        lost_tasks: report.lost_tasks,
        retried_tasks: report.retried_tasks,
        respawns: ctx.driver().supervised_respawns(),
        recovered: report.updates == cfg.wc_updates && report.lost_tasks == 0,
    }
}

fn run_json(arm: &SimArm, indent: &str) -> String {
    let r = &arm.report;
    let clocks: Vec<String> = r.worker_clocks.iter().map(|c| c.to_string()).collect();
    let trace: Vec<String> = r
        .trace
        .points()
        .iter()
        .map(|&(t, e)| format!("[{}, {}]", json_f64(t.as_millis_f64()), json_f64(e)))
        .collect();
    format!(
        "{{\n{i}  \"run\": \"{}\",\n{i}  \"wall_clock_ms\": {},\n{i}  \"updates\": {},\n{i}  \"tasks_completed\": {},\n{i}  \"lost_tasks\": {},\n{i}  \"retried_tasks\": {},\n{i}  \"supervised_respawns\": {},\n{i}  \"max_staleness\": {},\n{i}  \"bytes_shipped\": {},\n{i}  \"final_error\": {},\n{i}  \"worker_clocks\": [{}],\n{i}  \"trace_ms_error\": [{}]\n{i}}}",
        arm.name,
        json_f64(r.wall_clock.as_millis_f64()),
        r.updates,
        r.tasks_completed,
        r.lost_tasks,
        r.retried_tasks,
        arm.respawns,
        r.max_staleness,
        r.bytes_shipped,
        json_f64(r.trace.final_error().unwrap_or(f64::NAN)),
        clocks.join(", "),
        trace.join(", "),
        i = indent,
    )
}

fn wc_json(a: &WcArm, indent: &str) -> String {
    // Every measurement line carries a `wc_` key: the numbers are host
    // wall-clock observations and the CI byte gate drops them.
    format!(
        "{{\n{i}  \"wc_steps_per_sec\": {},\n{i}  \"wc_elapsed_secs\": {},\n{i}  \"wc_updates\": {},\n{i}  \"wc_lost_tasks\": {},\n{i}  \"wc_retried_tasks\": {},\n{i}  \"wc_supervised_respawns\": {},\n{i}  \"wc_recovered\": {}\n{i}}}",
        json_f64(a.steps_per_sec),
        json_f64(a.elapsed_secs),
        a.updates,
        a.lost_tasks,
        a.retried_tasks,
        a.respawns,
        a.recovered,
        i = indent,
    )
}

impl FaultRecovery {
    /// Renders the benchmark as a stable JSON document. Keys starting
    /// with `wc_` are host wall-clock observations and are excluded from
    /// the CI byte-reproduction gate (`grep -v '"wc_'`); every other byte
    /// is deterministic for a fixed configuration.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        let kills: Vec<String> = self
            .kill_schedule
            .iter()
            .map(|&(w, at)| {
                format!(
                    "{{\"worker\": {w}, \"at_ms\": {}}}",
                    json_f64(at.as_millis_f64())
                )
            })
            .collect();
        let arms: Vec<String> = self
            .arms
            .iter()
            .map(|a| format!("  \"{}\": {}", a.name, run_json(a, "  ")))
            .collect();
        format!(
            "{{\n  \"benchmark\": \"fault_recovery\",\n  \"description\": \"ASGD through a one-way kill burst (no scripted revivals): unsupervised, the casualties' in-flight tasks are lost for good; supervised, backed-off respawn plus bounded retry restores the fleet and the run ends with zero losses. The wc_ arm replays the supervised stack over loopback TCP with dropped frames (host-dependent, ungated)\",\n  \"config\": {{\n    \"workers\": {},\n    \"kills\": {},\n    \"dataset\": \"dense synthetic {}x{}\",\n    \"updates\": {},\n    \"batch_fraction\": {},\n    \"step\": {},\n    \"per_msg_us\": {},\n    \"kill_at_fraction\": {},\n    \"backoff_fraction\": {},\n    \"retry_lost\": {},\n    \"wc_updates\": {},\n    \"wc_drop\": {},\n    \"seed\": {}\n  }},\n  \"kill_schedule\": [{}],\n{},\n  \"wall_clock_slowdown_supervised_over_baseline\": {},\n  \"final_error_ratio_supervised_over_baseline\": {},\n  \"wc_loopback\": {}\n}}\n",
            c.workers,
            c.kills,
            c.rows,
            c.cols,
            c.updates,
            json_f64(c.batch_fraction),
            json_f64(c.step),
            c.per_msg_us,
            json_f64(c.kill_at_fraction),
            json_f64(c.backoff_fraction),
            c.retry_lost,
            c.wc_updates,
            json_f64(c.wc_drop),
            c.seed,
            kills.join(", "),
            arms.join(",\n"),
            json_f64(self.recovery_slowdown),
            json_f64(self.error_ratio),
            wc_json(&self.wc_loopback, "  "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FaultRecoveryCfg {
        FaultRecoveryCfg {
            workers: 4,
            kills: 2,
            rows: 256,
            cols: 24,
            updates: 80,
            per_msg_us: 0,
            wc_updates: 80,
            ..FaultRecoveryCfg::default()
        }
    }

    #[test]
    fn supervision_converts_losses_into_retries() {
        let b = run_fault_recovery(small_cfg());
        let [base, unsup, sup] = &b.arms[..] else {
            panic!("three simulated arms");
        };
        assert_eq!(base.report.updates, 80);
        assert_eq!(base.report.lost_tasks, 0);
        // Without a supervisor the one-way kills permanently lose the
        // casualties' in-flight tasks; the survivors still spend the
        // budget (BestEffort keeps the run alive on a shrunken fleet).
        assert_eq!(unsup.report.updates, 80);
        assert!(
            unsup.report.lost_tasks >= 1,
            "one-way kills must lose tasks: {}",
            unsup.report.lost_tasks
        );
        assert_eq!(unsup.respawns, 0);
        // Supervised: every casualty respawns, every stranded task is
        // re-placed, nothing is lost.
        assert_eq!(sup.report.updates, 80);
        assert_eq!(sup.report.lost_tasks, 0, "retry must re-place every loss");
        assert!(sup.report.retried_tasks >= 1);
        assert!(
            sup.respawns >= b.kill_schedule.len() as u64,
            "every kill must be answered by a respawn: {} < {}",
            sup.respawns,
            b.kill_schedule.len()
        );
        assert!(b.error_ratio.is_finite() && b.error_ratio < 10.0);
    }

    #[test]
    fn the_loopback_arm_recovers() {
        let b = run_fault_recovery(small_cfg());
        assert!(
            b.wc_loopback.recovered,
            "loopback arm lost {} of {} updates",
            b.wc_loopback.lost_tasks, b.wc_loopback.updates
        );
    }

    #[test]
    fn gated_portion_is_deterministic() {
        let a = run_fault_recovery(small_cfg());
        let b = run_fault_recovery(small_cfg());
        let strip = |j: &str| -> String {
            j.lines()
                .filter(|l| !l.contains("\"wc_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = run_fault_recovery(small_cfg()).to_json();
        assert!(j.contains("\"benchmark\": \"fault_recovery\""));
        for k in [
            "\"baseline\"",
            "\"unsupervised\"",
            "\"supervised\"",
            "kill_schedule",
            "wc_loopback",
        ] {
            assert!(j.contains(k), "missing {k}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }
}
