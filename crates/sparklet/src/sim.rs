//! Deterministic virtual-time engine.
//!
//! Task closures execute *eagerly at submission* on the driver thread —
//! which is exactly when a real worker would snapshot its inputs (Spark
//! ships the broadcast state captured at task-launch) — and the *result is
//! delivered* at the task's modelled completion instant through a
//! deterministic event queue. The asynchrony the paper studies is therefore
//! reproduced faithfully: the server sees results tagged with the model
//! version they were computed against, arbitrarily stale relative to the
//! advancing virtual clock, with straggler delays stretching exactly the
//! workers the delay model selects.
//!
//! Determinism: same spec + same submission sequence ⇒ identical completion
//! order and identical timestamps, bit for bit.

use async_cluster::straggler::DelayAssignment;
use async_cluster::{ClusterSpec, EventQueue, VDur, VTime, WorkerId};

use crate::engine::{Completion, Engine, EngineError, Task, TaskDone, TaskOutput};
use crate::worker::WorkerCtx;

enum SimEvent {
    Finish {
        worker: WorkerId,
        epoch: u64,
        tag: u64,
        output: TaskOutput,
        issued_at: VTime,
        service_time: VDur,
        bytes_in: u64,
    },
    Fail {
        worker: WorkerId,
    },
    /// Activates a dead (or not-yet-activated joined) worker as a fresh
    /// executor. Dropped if the worker is already alive at fire time.
    Up {
        worker: WorkerId,
    },
}

/// The simulated engine. See the module docs for the execution model.
pub struct SimEngine {
    spec: ClusterSpec,
    assignment: DelayAssignment,
    clock: VTime,
    queue: EventQueue<SimEvent>,
    ctxs: Vec<WorkerCtx>,
    busy: Vec<bool>,
    dead: Vec<bool>,
    /// Incremented when a worker's in-flight task is cancelled by failure;
    /// stale Finish events are dropped by epoch mismatch.
    epoch: Vec<u64>,
    inflight_tag: Vec<Option<u64>>,
    task_seq: Vec<u64>,
    pending: usize,
}

impl SimEngine {
    /// Builds an engine from a validated [`ClusterSpec`].
    ///
    /// # Panics
    /// Panics if the spec fails validation.
    pub fn new(spec: ClusterSpec) -> Self {
        spec.validate().expect("invalid cluster spec");
        let n = spec.workers;
        let assignment = spec.delay.assign(n);
        Self {
            assignment,
            clock: VTime::ZERO,
            queue: EventQueue::new(),
            ctxs: (0..n).map(WorkerCtx::new).collect(),
            busy: vec![false; n],
            dead: vec![false; n],
            epoch: vec![0; n],
            inflight_tag: vec![None; n],
            task_seq: vec![0; n],
            pending: 0,
            spec,
        }
    }

    /// Read-only access to a worker's context (for cache statistics).
    pub fn worker_ctx(&self, w: WorkerId) -> &WorkerCtx {
        &self.ctxs[w]
    }

    /// The realized straggler assignment (who straggles, with what class).
    pub fn delay_assignment(&self) -> &DelayAssignment {
        &self.assignment
    }
}

impl Engine for SimEngine {
    fn workers(&self) -> usize {
        self.spec.workers
    }

    fn now(&self) -> VTime {
        self.clock
    }

    fn available(&self, w: WorkerId) -> bool {
        !self.dead[w] && !self.busy[w]
    }

    fn alive(&self, w: WorkerId) -> bool {
        !self.dead[w]
    }

    fn submit(&mut self, w: WorkerId, task: Task) -> Result<(), EngineError> {
        if self.dead[w] {
            return Err(EngineError::WorkerDead(w));
        }
        if self.busy[w] {
            return Err(EngineError::WorkerBusy(w));
        }
        let issued_at = self.clock;
        // Execute now: the closure sees exactly the state captured at
        // submission, like a task shipped to a real worker.
        let output = (task.run)(&mut self.ctxs[w]);
        let (extra_bytes, extra_time) = self.ctxs[w].take_charges();
        let bytes_in = task.bytes_in + extra_bytes;

        let seq = self.task_seq[w];
        self.task_seq[w] += 1;
        let factor = self.assignment.factor(w, seq);
        let exec = self.spec.profiles[w].exec_time(task.cost).mul_f64(factor);
        let service_time = self.spec.sched_overhead
            + self.spec.comm.transfer_time(bytes_in)
            + exec
            + extra_time
            // Result submission message back to the server.
            + self.spec.comm.per_msg;

        self.busy[w] = true;
        self.inflight_tag[w] = Some(task.tag);
        self.pending += 1;
        self.queue.push(
            issued_at + service_time,
            SimEvent::Finish {
                worker: w,
                epoch: self.epoch[w],
                tag: task.tag,
                output,
                issued_at,
                service_time,
                bytes_in,
            },
        );
        Ok(())
    }

    fn next(&mut self) -> Option<Completion> {
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                SimEvent::Finish {
                    worker,
                    epoch,
                    tag,
                    output,
                    issued_at,
                    service_time,
                    bytes_in,
                } => {
                    if epoch != self.epoch[worker] {
                        continue; // cancelled by a failure
                    }
                    self.clock = self.clock.max(t);
                    self.busy[worker] = false;
                    self.inflight_tag[worker] = None;
                    self.pending -= 1;
                    return Some(Completion::Done(TaskDone {
                        worker,
                        tag,
                        output,
                        issued_at,
                        finished_at: t,
                        service_time,
                        bytes_in,
                    }));
                }
                SimEvent::Fail { worker } => {
                    if self.dead[worker] {
                        continue;
                    }
                    self.clock = self.clock.max(t);
                    return Some(self.fail_now(worker));
                }
                SimEvent::Up { worker } => {
                    if worker >= self.dead.len() || !self.dead[worker] {
                        continue; // stale revival (already alive)
                    }
                    self.clock = self.clock.max(t);
                    self.up_now(worker);
                    return Some(Completion::WorkerUp { worker });
                }
            }
        }
        None
    }

    fn try_next(&mut self) -> Option<Completion> {
        match self.queue.peek_time() {
            Some(t) if t <= self.clock => self.next(),
            _ => None,
        }
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn kill_worker(&mut self, w: WorkerId) {
        if !self.dead[w] {
            // Killing is immediate; surface the Lost/WorkerDown completion
            // through the normal queue so ordering stays deterministic.
            self.queue.push(self.clock, SimEvent::Fail { worker: w });
        }
    }

    fn revive_worker(&mut self, w: WorkerId) -> Result<(), EngineError> {
        if !self.dead[w] {
            return Err(EngineError::WorkerAlive(w));
        }
        // The revival flows through the event queue like failures do, so
        // its WorkerUp notification stays deterministically ordered with
        // task completions; the worker becomes available when it pops.
        self.queue.push(self.clock, SimEvent::Up { worker: w });
        Ok(())
    }

    fn add_worker(&mut self) -> WorkerId {
        let w = self.grow_one_dead();
        self.queue.push(self.clock, SimEvent::Up { worker: w });
        w
    }

    fn schedule_failure(&mut self, w: WorkerId, at: VTime) {
        self.queue.push(at, SimEvent::Fail { worker: w });
    }

    fn schedule_revival(&mut self, w: WorkerId, at: VTime) {
        self.queue.push(at, SimEvent::Up { worker: w });
    }

    fn schedule_join(&mut self, at: VTime) {
        // The id is assigned at scheduling time (dense, in schedule order);
        // the worker stays dead until its Up event fires.
        let w = self.grow_one_dead();
        self.queue.push(at, SimEvent::Up { worker: w });
    }

    fn next_event_at(&self) -> Option<VTime> {
        // The simulator's queue holds completions *and* membership events;
        // either way this is the instant `next()` would advance to, which
        // is what recovery-aware callers want to know.
        self.queue.peek_time()
    }
}

impl SimEngine {
    /// Appends a structurally present but not-yet-activated worker row.
    fn grow_one_dead(&mut self) -> WorkerId {
        let w = self.spec.workers;
        self.spec.workers += 1;
        self.spec
            .profiles
            .push(async_cluster::WorkerProfile::default_speed());
        self.ctxs.push(WorkerCtx::new(w));
        self.busy.push(false);
        self.dead.push(true);
        self.epoch.push(0);
        self.inflight_tag.push(None);
        self.task_seq.push(0);
        w
    }

    /// Activates `w` as a fresh executor: empty cache, bumped epoch (any
    /// still-queued result from a previous life is cancelled — the same
    /// guard that cancels in-flight tasks on failure).
    fn up_now(&mut self, w: WorkerId) {
        self.dead[w] = false;
        self.busy[w] = false;
        self.inflight_tag[w] = None;
        self.epoch[w] += 1;
        self.ctxs[w] = WorkerCtx::new(w);
    }

    fn fail_now(&mut self, w: WorkerId) -> Completion {
        self.dead[w] = true;
        if self.busy[w] {
            self.busy[w] = false;
            self.epoch[w] += 1; // cancels the in-flight Finish event
            self.pending -= 1;
            let tag = self.inflight_tag[w].take().expect("busy worker has a tag");
            Completion::Lost { worker: w, tag }
        } else {
            Completion::WorkerDown { worker: w }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel};

    fn quiet_spec(workers: usize, delay: DelayModel) -> ClusterSpec {
        ClusterSpec::homogeneous(workers, delay)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO)
    }

    fn task(tag: u64, cost: f64, value: i64) -> Task {
        Task {
            tag,
            cost,
            bytes_in: 0,
            run: Box::new(move |_| Box::new(value)),
        }
    }

    fn run_to_done(engine: &mut SimEngine) -> Vec<(u64, i64, VTime)> {
        let mut out = Vec::new();
        while let Some(c) = engine.next() {
            if let Completion::Done(d) = c {
                out.push((d.tag, *d.output.downcast::<i64>().unwrap(), d.finished_at));
            }
        }
        out
    }

    #[test]
    fn completions_ordered_by_cost() {
        let mut e = SimEngine::new(quiet_spec(3, DelayModel::None));
        e.submit(0, task(0, 3e8, 10)).unwrap();
        e.submit(1, task(1, 1e8, 20)).unwrap();
        e.submit(2, task(2, 2e8, 30)).unwrap();
        let done = run_to_done(&mut e);
        let tags: Vec<u64> = done.iter().map(|d| d.0).collect();
        assert_eq!(tags, vec![1, 2, 0]);
        // Default speed 2e8/s → costs 1e8 = 0.5 s.
        assert_eq!(done[0].2, VTime::from_micros(500_000));
    }

    #[test]
    fn straggler_factor_stretches_exactly_target() {
        let delay = DelayModel::ControlledDelay {
            worker: 1,
            intensity: 1.0,
        };
        let mut e = SimEngine::new(quiet_spec(2, delay));
        e.submit(0, task(0, 2e8, 1)).unwrap();
        e.submit(1, task(1, 2e8, 2)).unwrap();
        let done = run_to_done(&mut e);
        assert_eq!(done[0].0, 0);
        assert_eq!(done[0].2, VTime::from_micros(1_000_000));
        assert_eq!(done[1].0, 1);
        assert_eq!(done[1].2, VTime::from_micros(2_000_000)); // 2x slower
    }

    #[test]
    fn busy_and_dead_submissions_rejected() {
        let mut e = SimEngine::new(quiet_spec(1, DelayModel::None));
        e.submit(0, task(0, 1.0, 1)).unwrap();
        assert_eq!(
            e.submit(0, task(1, 1.0, 1)).unwrap_err(),
            EngineError::WorkerBusy(0)
        );
        assert!(!e.available(0));
        let _ = e.next();
        e.kill_worker(0);
        let c = e.next();
        assert!(matches!(c, Some(Completion::WorkerDown { worker: 0 })));
        assert_eq!(
            e.submit(0, task(2, 1.0, 1)).unwrap_err(),
            EngineError::WorkerDead(0)
        );
    }

    #[test]
    fn failure_loses_inflight_task() {
        let mut e = SimEngine::new(quiet_spec(2, DelayModel::None));
        e.submit(0, task(7, 2e8, 1)).unwrap();
        e.schedule_failure(0, VTime::from_micros(1000));
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 7 }) => {}
            _ => panic!("expected Lost completion"),
        }
        assert_eq!(e.pending(), 0);
        // The cancelled Finish event must not surface.
        assert!(e.next().is_none());
        assert!(!e.alive(0));
        assert!(e.alive(1));
    }

    #[test]
    fn try_next_does_not_advance_clock() {
        let mut e = SimEngine::new(quiet_spec(1, DelayModel::None));
        e.submit(0, task(0, 2e8, 1)).unwrap();
        assert!(e.try_next().is_none());
        assert_eq!(e.now(), VTime::ZERO);
        assert!(matches!(e.next(), Some(Completion::Done(_))));
        assert_eq!(e.now(), VTime::from_micros(1_000_000));
    }

    #[test]
    fn try_next_returns_ready_completion_at_same_instant() {
        let mut e = SimEngine::new(quiet_spec(2, DelayModel::None));
        // Same cost → both finish at the same virtual instant.
        e.submit(0, task(0, 2e8, 1)).unwrap();
        e.submit(1, task(1, 2e8, 2)).unwrap();
        assert!(matches!(e.next(), Some(Completion::Done(_))));
        // Second completion is at the (now-current) clock: ready.
        assert!(matches!(e.try_next(), Some(Completion::Done(_))));
        assert!(e.try_next().is_none());
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let build = || {
            let mut e = SimEngine::new(quiet_spec(
                4,
                DelayModel::ProductionCluster(async_cluster::PcsConfig::paper(3)),
            ));
            for w in 0..4 {
                e.submit(w, task(w as u64, 1e8 + w as f64, w as i64))
                    .unwrap();
            }
            run_to_done(&mut e)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn comm_model_charges_bytes() {
        let spec = ClusterSpec::homogeneous(1, DelayModel::None)
            .with_comm(CommModel {
                per_msg: VDur::ZERO,
                ns_per_byte: 1000.0,
            })
            .with_sched_overhead(VDur::ZERO);
        let mut e = SimEngine::new(spec);
        // 1e6 bytes at 1000 ns/B = 1 s transfer; zero compute cost.
        e.submit(
            0,
            Task {
                tag: 0,
                cost: 0.0,
                bytes_in: 1_000_000,
                run: Box::new(|_| Box::new(())),
            },
        )
        .unwrap();
        match e.next() {
            Some(Completion::Done(d)) => {
                assert_eq!(d.finished_at, VTime::from_micros(1_000_000));
                assert_eq!(d.bytes_in, 1_000_000);
            }
            _ => panic!("expected Done"),
        }
    }

    #[test]
    fn revive_brings_back_a_fresh_worker() {
        let mut e = SimEngine::new(quiet_spec(2, DelayModel::None));
        e.kill_worker(0);
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 0 })
        ));
        assert!(!e.alive(0));
        assert_eq!(e.revive_worker(1).unwrap_err(), EngineError::WorkerAlive(1));
        e.revive_worker(0).unwrap();
        // State changes when the Up event pops, like failures.
        assert!(!e.alive(0));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        assert!(e.alive(0));
        assert!(e.available(0));
        e.submit(0, task(5, 2e8, 77)).unwrap();
        let done = run_to_done(&mut e);
        assert_eq!(done, vec![(5, 77, VTime::from_micros(1_000_000))]);
    }

    #[test]
    fn stale_result_never_surfaces_after_revival() {
        // Kill mid-task, revive immediately: the pre-failure Finish event
        // is epoch-cancelled and must not reappear in the revived life.
        let mut e = SimEngine::new(quiet_spec(1, DelayModel::None));
        e.submit(0, task(9, 2e8, 111)).unwrap();
        e.schedule_failure(0, VTime::from_micros(1000));
        e.schedule_revival(0, VTime::from_micros(2000));
        assert!(matches!(
            e.next(),
            Some(Completion::Lost { worker: 0, tag: 9 })
        ));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        // The only remaining event is the cancelled Finish: it must drop.
        assert!(e.next().is_none());
        // The revived worker runs fresh tasks normally.
        e.submit(0, task(10, 2e8, 5)).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(d.tag, 10),
            _ => panic!("expected the post-revival task"),
        }
    }

    #[test]
    fn revival_resets_worker_cache() {
        let mut e = SimEngine::new(quiet_spec(1, DelayModel::None));
        e.submit(
            0,
            Task {
                tag: 0,
                cost: 0.0,
                bytes_in: 0,
                run: Box::new(|ctx| {
                    ctx.cache_put_local((1, 0), std::sync::Arc::new(42u32));
                    Box::new(())
                }),
            },
        )
        .unwrap();
        let _ = e.next();
        assert_eq!(e.worker_ctx(0).cache_len(), 1);
        e.kill_worker(0);
        let _ = e.next();
        e.revive_worker(0).unwrap();
        let _ = e.next();
        assert_eq!(
            e.worker_ctx(0).cache_len(),
            0,
            "a revived executor starts with an empty cache"
        );
    }

    #[test]
    fn add_worker_joins_and_runs_tasks() {
        let mut e = SimEngine::new(quiet_spec(1, DelayModel::None));
        let w = e.add_worker();
        assert_eq!(w, 1);
        assert_eq!(e.workers(), 2);
        assert!(!e.alive(1), "joined worker activates when its event pops");
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        assert!(e.available(1));
        e.submit(1, task(3, 2e8, 30)).unwrap();
        let done = run_to_done(&mut e);
        assert_eq!(done, vec![(3, 30, VTime::from_micros(1_000_000))]);
    }

    #[test]
    fn scheduled_membership_fires_at_exact_instants() {
        let mut e = SimEngine::new(quiet_spec(2, DelayModel::None));
        e.schedule_failure(1, VTime::from_micros(500));
        e.schedule_revival(1, VTime::from_micros(1500));
        e.schedule_join(VTime::from_micros(2500));
        assert_eq!(e.workers(), 3, "join ids are assigned at scheduling");
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 1 })
        ));
        assert_eq!(e.now(), VTime::from_micros(500));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        assert_eq!(e.now(), VTime::from_micros(1500));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 2 })));
        assert_eq!(e.now(), VTime::from_micros(2500));
        assert!(e.next().is_none());
        for w in 0..3 {
            assert!(e.alive(w));
        }
    }

    #[test]
    fn charges_from_ctx_extend_duration() {
        let spec = ClusterSpec::homogeneous(1, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO);
        let mut e = SimEngine::new(spec);
        e.submit(
            0,
            Task {
                tag: 0,
                cost: 0.0,
                bytes_in: 0,
                run: Box::new(|ctx| {
                    ctx.charge_time(VDur::from_millis(5));
                    Box::new(())
                }),
            },
        )
        .unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(d.finished_at, VTime::from_micros(5_000)),
            _ => panic!("expected Done"),
        }
    }
}
