//! Payload sizing and wire encoding for broadcast values.
//!
//! The simulated engine charges communication time per byte, so every
//! broadcastable value reports its encoded size. [`Payload::encode`] writes
//! the actual little-endian wire format; the engines only need
//! [`Payload::encoded_len`], but tests use `encode` to verify that the
//! declared sizes match reality.

use async_linalg::{GradDelta, SparseVec};
use bytes::{BufMut, BytesMut};

/// A value that can be broadcast: knows its wire size and representation.
pub trait Payload {
    /// Exact encoded size in bytes.
    fn encoded_len(&self) -> u64;

    /// Appends the wire encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

impl Payload for f64 {
    fn encoded_len(&self) -> u64 {
        8
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
}

impl Payload for u64 {
    fn encoded_len(&self) -> u64 {
        8
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
}

impl Payload for Vec<f64> {
    /// Length prefix plus the raw entries.
    fn encoded_len(&self) -> u64 {
        8 + 8 * self.len() as u64
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for v in self {
            buf.put_f64_le(*v);
        }
    }
}

impl Payload for SparseVec {
    /// `(len, dim)` header plus a 4-byte column index and 8-byte value per
    /// stored entry — the wire shape of a sparse gradient delta.
    fn encoded_len(&self) -> u64 {
        16 + 12 * self.nnz() as u64
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.nnz() as u64);
        buf.put_u64_le(self.dim() as u64);
        for (i, v) in self.indices().iter().zip(self.values().iter()) {
            buf.put_u32_le(*i);
            buf.put_f64_le(*v);
        }
    }
}

impl Payload for GradDelta {
    /// One tag byte plus the payload of whichever arm is stored. For
    /// rcv1-shaped gradients (tens of nonzeros in tens of thousands of
    /// dims) the sparse arm is orders of magnitude smaller — the reason
    /// broadcast payloads and task results carry deltas in this type.
    fn encoded_len(&self) -> u64 {
        1 + match self {
            GradDelta::Dense(v) => v.encoded_len(),
            GradDelta::Sparse(s) => s.encoded_len(),
        }
    }
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GradDelta::Dense(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            GradDelta::Sparse(s) => {
                buf.put_u8(1);
                s.encode(buf);
            }
        }
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn encoded_len(&self) -> u64 {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<T: Payload> Payload for Vec<(u64, T)> {
    /// A keyed table: length prefix, then `key, value` pairs. This is the
    /// shape of the naive SAGA "model parameter table" broadcast that the
    /// paper calls out as impractically large (§5.2, Algorithm 3).
    fn encoded_len(&self) -> u64 {
        8 + self.iter().map(|(_, v)| 8 + v.encoded_len()).sum::<u64>()
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for (k, v) in self {
            buf.put_u64_le(*k);
            v.encode(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded_bytes<P: Payload>(p: &P) -> usize {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        buf.len()
    }

    #[test]
    fn scalar_sizes_match_encoding() {
        assert_eq!(encoded_bytes(&1.5f64) as u64, 1.5f64.encoded_len());
        assert_eq!(encoded_bytes(&7u64) as u64, 7u64.encoded_len());
    }

    #[test]
    fn vec_size_matches_encoding() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(encoded_bytes(&v) as u64, v.encoded_len());
        assert_eq!(v.encoded_len(), 8 + 800);
    }

    #[test]
    fn table_size_matches_encoding_and_grows() {
        let small: Vec<(u64, Vec<f64>)> = vec![(0, vec![1.0; 10])];
        let big: Vec<(u64, Vec<f64>)> = (0..50).map(|k| (k, vec![1.0; 10])).collect();
        assert_eq!(encoded_bytes(&small) as u64, small.encoded_len());
        assert_eq!(encoded_bytes(&big) as u64, big.encoded_len());
        assert!(big.encoded_len() > 40 * small.encoded_len());
    }

    #[test]
    fn sparse_payload_sizes_match_encoding() {
        let s = SparseVec::from_pairs(vec![(3, 1.5), (9, -2.0), (40, 0.25)], 64).unwrap();
        assert_eq!(encoded_bytes(&s) as u64, s.encoded_len());
        assert_eq!(s.encoded_len(), 16 + 12 * 3);
        let gd = GradDelta::Sparse(s);
        assert_eq!(encoded_bytes(&gd) as u64, gd.encoded_len());
        let dd = GradDelta::Dense(vec![1.0; 64]);
        assert_eq!(encoded_bytes(&dd) as u64, dd.encoded_len());
        // The sparse arm is the cheaper wire shape at this density.
        assert!(gd.encoded_len() < dd.encoded_len() / 5);
    }

    #[test]
    fn tuple_composes() {
        let p = (2.0f64, vec![1.0f64, 2.0]);
        assert_eq!(p.encoded_len(), 8 + (8 + 16));
        assert_eq!(encoded_bytes(&p) as u64, p.encoded_len());
    }
}
