//! Payload sizing and wire encoding for broadcast values.
//!
//! The simulated engine charges communication time per byte, so every
//! broadcastable value reports its encoded size. [`Payload::encode`] writes
//! the actual little-endian wire format and [`Payload::decode`] reads it
//! back; the engines only need [`Payload::encoded_len`], but the remote
//! backend ships these encodings over real sockets, so decoding is fallible
//! with *positioned* errors ([`DecodeError`]) — a torn frame reports where
//! it tore, not just that it tore.
//!
//! Dense `f64` slabs are encoded with **one** byte-slice extend (on
//! little-endian targets the in-memory representation *is* the wire
//! encoding), not a per-element `put_f64_le` loop — the encode cost of a
//! model snapshot is a single `memcpy`.

use std::sync::Arc;

use async_linalg::{CompressedDelta, GradDelta, SparseVec};
use bytes::{BufMut, BytesMut};

/// Why a wire decode failed, with the byte offset where it did.
///
/// Every variant carries `at`, the offset (from the start of the buffer
/// handed to the outermost [`Payload::decode`] call) at which the decoder
/// gave up. Nested decoders re-base child errors so positions stay
/// end-to-end meaningful — the error from a `Vec<(u64, GradDelta)>` table
/// points into the table's bytes, not into one entry's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a fixed-size field or counted body: `needed`
    /// more bytes were required at offset `at`.
    Truncated {
        /// Offset at which the input ran out.
        at: usize,
        /// Bytes still required at that offset.
        needed: usize,
    },
    /// A discriminant byte named no known variant.
    BadTag {
        /// Offset of the offending tag byte.
        at: usize,
        /// The unrecognized tag value.
        tag: u8,
    },
    /// A length prefix that cannot be honest: it overflows size arithmetic
    /// or exceeds any plausible buffer. Checked *before* any allocation it
    /// would size, so a hostile prefix cannot drive memory growth.
    LengthOverflow {
        /// Offset of the offending length prefix.
        at: usize,
        /// The claimed length.
        len: u64,
    },
    /// Structurally well-formed bytes that violate a value invariant (e.g.
    /// unsorted sparse indices).
    Invalid {
        /// Offset of the value whose invariant failed.
        at: usize,
        /// Which invariant failed.
        what: &'static str,
    },
}

impl DecodeError {
    /// The offset where decoding failed.
    pub fn at(&self) -> usize {
        match *self {
            DecodeError::Truncated { at, .. }
            | DecodeError::BadTag { at, .. }
            | DecodeError::LengthOverflow { at, .. }
            | DecodeError::Invalid { at, .. } => at,
        }
    }

    /// The same error re-based `base` bytes later — how composite decoders
    /// keep child error positions meaningful in the parent's frame.
    #[must_use]
    pub fn shifted(self, base: usize) -> Self {
        match self {
            DecodeError::Truncated { at, needed } => DecodeError::Truncated {
                at: at + base,
                needed,
            },
            DecodeError::BadTag { at, tag } => DecodeError::BadTag { at: at + base, tag },
            DecodeError::LengthOverflow { at, len } => {
                DecodeError::LengthOverflow { at: at + base, len }
            }
            DecodeError::Invalid { at, what } => DecodeError::Invalid {
                at: at + base,
                what,
            },
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { at, needed } => {
                write!(
                    f,
                    "truncated input at byte {at}: {needed} more bytes needed"
                )
            }
            DecodeError::BadTag { at, tag } => write!(f, "bad tag {tag:#04x} at byte {at}"),
            DecodeError::LengthOverflow { at, len } => {
                write!(f, "implausible length {len} at byte {at}")
            }
            DecodeError::Invalid { at, what } => write!(f, "invalid value at byte {at}: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode result: the value plus the bytes consumed.
pub type DecodeResult<T> = Result<(T, usize), DecodeError>;

/// Appends `xs` as little-endian `f64`s in one slice extend.
fn put_f64s_le(buf: &mut BytesMut, xs: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `f64` has no padding bytes and, on a little-endian
        // target, its in-memory byte order is exactly the LE wire order;
        // the view covers `xs.len() * 8` initialized bytes.
        let bytes = unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), xs.len() * 8) };
        buf.put_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for v in xs {
        buf.put_f64_le(*v);
    }
}

/// Reads `n` little-endian `f64`s starting at offset `at` of `bytes`. The
/// count is untrusted wire data: the length check uses checked arithmetic
/// so a hostile prefix can neither wrap the bound nor drive an allocation.
fn get_f64s_le(bytes: &[u8], at: usize, n: usize) -> Result<Vec<f64>, DecodeError> {
    let need = n
        .checked_mul(8)
        .ok_or(DecodeError::LengthOverflow { at, len: n as u64 })?;
    let body = bytes.get(at..).unwrap_or(&[]);
    if body.len() < need {
        return Err(DecodeError::Truncated {
            at: at + body.len(),
            needed: need - body.len(),
        });
    }
    Ok(body[..need]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect())
}

fn get_u64_le(bytes: &[u8], at: usize) -> Result<u64, DecodeError> {
    let body = bytes.get(at..).unwrap_or(&[]);
    match body.get(..8) {
        Some(b) => Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice"))),
        None => Err(DecodeError::Truncated {
            at: at + body.len(),
            needed: 8 - body.len(),
        }),
    }
}

/// A value that can be broadcast: knows its wire size and representation.
pub trait Payload {
    /// Exact encoded size in bytes.
    fn encoded_len(&self) -> u64;

    /// Appends the wire encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes one value from the front of `bytes`, returning it and the
    /// number of bytes consumed. Errors carry the offset where decoding
    /// failed. The default implementation refuses (for payloads that are
    /// size-accounted but never rematerialized driver-side).
    fn decode(bytes: &[u8]) -> DecodeResult<Self>
    where
        Self: Sized,
    {
        let _ = bytes;
        Err(DecodeError::Invalid {
            at: 0,
            what: "payload type does not support decoding",
        })
    }
}

impl Payload for f64 {
    fn encoded_len(&self) -> u64 {
        8
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        match bytes.get(..8) {
            Some(b) => Ok((f64::from_le_bytes(b.try_into().expect("8-byte slice")), 8)),
            None => Err(DecodeError::Truncated {
                at: bytes.len(),
                needed: 8 - bytes.len(),
            }),
        }
    }
}

impl Payload for u64 {
    fn encoded_len(&self) -> u64 {
        8
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        Ok((get_u64_le(bytes, 0)?, 8))
    }
}

impl Payload for Vec<f64> {
    /// Length prefix plus the raw entries, written as one slice extend.
    fn encoded_len(&self) -> u64 {
        8 + 8 * self.len() as u64
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        put_f64s_le(buf, self);
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let n = get_u64_le(bytes, 0)? as usize;
        let vals = get_f64s_le(bytes, 8, n)?;
        Ok((vals, 8 + 8 * n))
    }
}

impl Payload for [f64] {
    /// Identical wire shape to `Vec<f64>` — a borrowed or `Arc`-shared
    /// dense slab costs the same bytes as an owned one.
    fn encoded_len(&self) -> u64 {
        8 + 8 * self.len() as u64
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        put_f64s_le(buf, self);
    }
}

/// Shared payloads encode exactly like their contents: broadcasting an
/// `Arc` snapshot costs the same wire bytes while making driver-side
/// cloning free. This is what lets the engines hold one model snapshot per
/// version instead of one owned `Vec<f64>` per worker per round.
impl<T: Payload> Payload for Arc<T> {
    fn encoded_len(&self) -> u64 {
        (**self).encoded_len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        (**self).encode(buf);
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let (v, n) = T::decode(bytes)?;
        Ok((Arc::new(v), n))
    }
}

/// An `Arc<[f64]>` model snapshot: same wire shape as `Vec<f64>`, zero-copy
/// to clone driver-side.
impl Payload for Arc<[f64]> {
    fn encoded_len(&self) -> u64 {
        (**self).encoded_len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        (**self).encode(buf);
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let (v, n) = Vec::<f64>::decode(bytes)?;
        Ok((v.into(), n))
    }
}

impl Payload for SparseVec {
    /// `(len, dim)` header plus a 4-byte column index and 8-byte value per
    /// stored entry — the wire shape of a sparse gradient delta.
    fn encoded_len(&self) -> u64 {
        16 + 12 * self.nnz() as u64
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.nnz() as u64);
        buf.put_u64_le(self.dim() as u64);
        for (i, v) in self.indices().iter().zip(self.values().iter()) {
            buf.put_u32_le(*i);
            buf.put_f64_le(*v);
        }
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let nnz64 = get_u64_le(bytes, 0)?;
        let nnz = nnz64 as usize;
        let dim = get_u64_le(bytes, 8)? as usize;
        // Validate the untrusted count against the available bytes (with
        // checked arithmetic) before any allocation sized by it.
        let overflow = DecodeError::LengthOverflow { at: 0, len: nnz64 };
        let body = nnz.checked_mul(12).ok_or(overflow)?;
        let total = body.checked_add(16).ok_or(overflow)?;
        let mut rest = bytes.get(16..total).ok_or_else(|| DecodeError::Truncated {
            at: bytes.len(),
            needed: total.saturating_sub(bytes.len()),
        })?;
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")));
            values.push(f64::from_le_bytes(rest[4..12].try_into().expect("8 bytes")));
            rest = &rest[12..];
        }
        let sv = SparseVec::new(indices, values, dim).map_err(|_| DecodeError::Invalid {
            at: 16,
            what: "sparse indices not strictly increasing or out of dimension",
        })?;
        Ok((sv, total))
    }
}

impl Payload for GradDelta {
    /// One tag byte plus the payload of whichever arm is stored. For
    /// rcv1-shaped gradients (tens of nonzeros in tens of thousands of
    /// dims) the sparse arm is orders of magnitude smaller — the reason
    /// broadcast payloads and task results carry deltas in this type.
    fn encoded_len(&self) -> u64 {
        1 + match self {
            GradDelta::Dense(v) => v.encoded_len(),
            GradDelta::Sparse(s) => s.encoded_len(),
        }
    }
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GradDelta::Dense(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            GradDelta::Sparse(s) => {
                buf.put_u8(1);
                s.encode(buf);
            }
        }
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let tag = *bytes
            .first()
            .ok_or(DecodeError::Truncated { at: 0, needed: 1 })?;
        match tag {
            0 => {
                let (v, n) = Vec::<f64>::decode(&bytes[1..]).map_err(|e| e.shifted(1))?;
                Ok((GradDelta::Dense(v), 1 + n))
            }
            1 => {
                let (s, n) = SparseVec::decode(&bytes[1..]).map_err(|e| e.shifted(1))?;
                Ok((GradDelta::Sparse(s), 1 + n))
            }
            tag => Err(DecodeError::BadTag { at: 0, tag }),
        }
    }
}

/// Decodes one quantized-sparse body (`nnz`, `dim`, `scale` headers after
/// a 1-byte tag, then `code_bytes`-wide codes interleaved with 4-byte
/// indices). Returns `(dim, scale, indices, raw code bytes)`; positions
/// are relative to the start of the tagged value.
#[allow(clippy::type_complexity)]
fn decode_quant_body(
    bytes: &[u8],
    code_bytes: usize,
) -> Result<(usize, f64, Vec<u32>, Vec<u8>, usize), DecodeError> {
    let nnz64 = get_u64_le(bytes, 1)?;
    let nnz = nnz64 as usize;
    let dim = get_u64_le(bytes, 9)? as usize;
    let scale = f64::from_le_bytes(
        bytes
            .get(17..25)
            .ok_or_else(|| DecodeError::Truncated {
                at: bytes.len(),
                needed: 25usize.saturating_sub(bytes.len()),
            })?
            .try_into()
            .expect("8-byte slice"),
    );
    if !scale.is_finite() || scale < 0.0 {
        return Err(DecodeError::Invalid {
            at: 17,
            what: "quantization scale not finite and non-negative",
        });
    }
    // Validate the untrusted count with checked arithmetic before any
    // allocation it would size.
    let overflow = DecodeError::LengthOverflow { at: 1, len: nnz64 };
    let body = nnz.checked_mul(4 + code_bytes).ok_or(overflow)?;
    let total = body.checked_add(25).ok_or(overflow)?;
    let mut rest = bytes.get(25..total).ok_or_else(|| DecodeError::Truncated {
        at: bytes.len(),
        needed: total.saturating_sub(bytes.len()),
    })?;
    let mut indices = Vec::with_capacity(nnz);
    let mut codes = Vec::with_capacity(nnz * code_bytes);
    for _ in 0..nnz {
        indices.push(u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")));
        codes.extend_from_slice(&rest[4..4 + code_bytes]);
        rest = &rest[4 + code_bytes..];
    }
    let sorted = indices.windows(2).all(|w| w[0] < w[1])
        && indices.last().is_none_or(|&i| (i as usize) < dim);
    if !sorted {
        return Err(DecodeError::Invalid {
            at: 25,
            what: "compressed support not strictly increasing or out of dimension",
        });
    }
    Ok((dim, scale, indices, codes, total))
}

impl Payload for CompressedDelta {
    /// One tag byte plus either the exact `GradDelta` payload or a
    /// quantized sparse body (`nnz`/`dim`/`scale` headers, then a 4-byte
    /// index and a 1- or 2-byte code per entry). `encoded_len` equals
    /// [`CompressedDelta::wire_bytes`] by construction — the simulator's
    /// modeled accounting and the remote frame layer charge the same
    /// bytes.
    fn encoded_len(&self) -> u64 {
        self.wire_bytes()
    }
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CompressedDelta::Exact(g) => {
                buf.put_u8(0);
                g.encode(buf);
            }
            CompressedDelta::I8 {
                dim,
                scale,
                indices,
                codes,
            } => {
                buf.put_u8(1);
                buf.put_u64_le(indices.len() as u64);
                buf.put_u64_le(*dim as u64);
                buf.put_f64_le(*scale);
                for (i, c) in indices.iter().zip(codes.iter()) {
                    buf.put_u32_le(*i);
                    buf.put_i8(*c);
                }
            }
            CompressedDelta::F16 {
                dim,
                scale,
                indices,
                codes,
            } => {
                buf.put_u8(2);
                buf.put_u64_le(indices.len() as u64);
                buf.put_u64_le(*dim as u64);
                buf.put_f64_le(*scale);
                for (i, c) in indices.iter().zip(codes.iter()) {
                    buf.put_u32_le(*i);
                    buf.put_u16_le(*c);
                }
            }
        }
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let tag = *bytes
            .first()
            .ok_or(DecodeError::Truncated { at: 0, needed: 1 })?;
        match tag {
            0 => {
                let (g, n) = GradDelta::decode(&bytes[1..]).map_err(|e| e.shifted(1))?;
                Ok((CompressedDelta::Exact(g), 1 + n))
            }
            1 => {
                let (dim, scale, indices, codes, total) = decode_quant_body(bytes, 1)?;
                let codes = codes.iter().map(|&b| b as i8).collect();
                Ok((
                    CompressedDelta::I8 {
                        dim,
                        scale,
                        indices,
                        codes,
                    },
                    total,
                ))
            }
            2 => {
                let (dim, scale, indices, codes, total) = decode_quant_body(bytes, 2)?;
                let codes = codes
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
                    .collect();
                Ok((
                    CompressedDelta::F16 {
                        dim,
                        scale,
                        indices,
                        codes,
                    },
                    total,
                ))
            }
            tag => Err(DecodeError::BadTag { at: 0, tag }),
        }
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn encoded_len(&self) -> u64 {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let (a, na) = A::decode(bytes)?;
        let (b, nb) = B::decode(&bytes[na..]).map_err(|e| e.shifted(na))?;
        Ok(((a, b), na + nb))
    }
}

impl<T: Payload> Payload for Vec<(u64, T)> {
    /// A keyed table: length prefix, then `key, value` pairs. This is the
    /// shape of the naive SAGA "model parameter table" broadcast that the
    /// paper calls out as impractically large (§5.2, Algorithm 3).
    fn encoded_len(&self) -> u64 {
        8 + self.iter().map(|(_, v)| 8 + v.encoded_len()).sum::<u64>()
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for (k, v) in self {
            buf.put_u64_le(*k);
            v.encode(buf);
        }
    }
    fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let n64 = get_u64_le(bytes, 0)?;
        let n = n64 as usize;
        // Every entry needs at least its 8-byte key, so the remaining
        // input bounds the plausible count — a corrupt prefix must not
        // size an allocation.
        if n > bytes.len() {
            return Err(DecodeError::LengthOverflow { at: 0, len: n64 });
        }
        let mut out = Vec::with_capacity(n.min(bytes.len() / 8));
        let mut at = 8usize;
        for _ in 0..n {
            let k = get_u64_le(bytes, at)?;
            let body = bytes.get(at + 8..).unwrap_or(&[]);
            let (v, nv) = T::decode(body).map_err(|e| e.shifted(at + 8))?;
            out.push((k, v));
            at += 8 + nv;
        }
        Ok((out, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded_bytes<P: Payload + ?Sized>(p: &P) -> usize {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        buf.len()
    }

    fn roundtrip<P: Payload + PartialEq + std::fmt::Debug>(p: &P) {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        assert_eq!(buf.len() as u64, p.encoded_len());
        let (back, used) = P::decode(buf.as_slice()).expect("decodes");
        assert_eq!(&back, p);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn scalar_sizes_match_encoding() {
        assert_eq!(encoded_bytes(&1.5f64) as u64, 1.5f64.encoded_len());
        assert_eq!(encoded_bytes(&7u64) as u64, 7u64.encoded_len());
        roundtrip(&-1.25f64);
        roundtrip(&u64::MAX);
    }

    #[test]
    fn vec_size_matches_encoding_and_roundtrips() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(encoded_bytes(&v) as u64, v.encoded_len());
        assert_eq!(v.encoded_len(), 8 + 800);
        roundtrip(&v);
        roundtrip(&Vec::<f64>::new());
    }

    #[test]
    fn arc_and_slice_payloads_match_owned_encoding() {
        let v: Vec<f64> = vec![1.0, -2.5, 3.25];
        let slab: Arc<[f64]> = v.clone().into();
        assert_eq!(slab.encoded_len(), v.encoded_len());
        assert_eq!(encoded_bytes(slab.as_ref()), encoded_bytes(&v));
        let shared = Arc::new(v.clone());
        assert_eq!(shared.encoded_len(), v.encoded_len());
        assert_eq!(encoded_bytes(&shared), encoded_bytes(&v));
        let mut a = BytesMut::new();
        slab.encode(&mut a);
        let mut b = BytesMut::new();
        v.encode(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
        roundtrip(&slab);
        roundtrip(&shared);
    }

    #[test]
    fn table_size_matches_encoding_and_grows() {
        let small: Vec<(u64, Vec<f64>)> = vec![(0, vec![1.0; 10])];
        let big: Vec<(u64, Vec<f64>)> = (0..50).map(|k| (k, vec![1.0; 10])).collect();
        assert_eq!(encoded_bytes(&small) as u64, small.encoded_len());
        assert_eq!(encoded_bytes(&big) as u64, big.encoded_len());
        assert!(big.encoded_len() > 40 * small.encoded_len());
        roundtrip(&small);
        roundtrip(&big);
    }

    #[test]
    fn sparse_payload_sizes_match_encoding() {
        let s = SparseVec::from_pairs(vec![(3, 1.5), (9, -2.0), (40, 0.25)], 64).unwrap();
        assert_eq!(encoded_bytes(&s) as u64, s.encoded_len());
        assert_eq!(s.encoded_len(), 16 + 12 * 3);
        roundtrip(&s);
        let gd = GradDelta::Sparse(s);
        assert_eq!(encoded_bytes(&gd) as u64, gd.encoded_len());
        roundtrip(&gd);
        let dd = GradDelta::Dense(vec![1.0; 64]);
        assert_eq!(encoded_bytes(&dd) as u64, dd.encoded_len());
        roundtrip(&dd);
        // The sparse arm is the cheaper wire shape at this density.
        assert!(gd.encoded_len() < dd.encoded_len() / 5);
    }

    #[test]
    fn compressed_delta_sizes_match_encoding_and_roundtrip() {
        let exact = CompressedDelta::Exact(GradDelta::Sparse(
            SparseVec::from_pairs(vec![(3, 1.5), (9, -2.0)], 32).unwrap(),
        ));
        let i8d = CompressedDelta::I8 {
            dim: 32,
            scale: 2.0,
            indices: vec![1, 5, 30],
            codes: vec![-127, 64, 3],
        };
        let f16d = CompressedDelta::F16 {
            dim: 32,
            scale: 0.5,
            indices: vec![0, 31],
            codes: vec![0x3c00, 0xbc00],
        };
        assert_eq!(i8d.encoded_len(), 25 + 5 * 3);
        assert_eq!(f16d.encoded_len(), 25 + 6 * 2);
        for cd in [&exact, &i8d, &f16d] {
            assert_eq!(encoded_bytes(cd) as u64, cd.encoded_len());
            assert_eq!(cd.encoded_len(), cd.wire_bytes());
            roundtrip(cd);
        }
        // Quantized forms undercut the exact sparse wire at equal support.
        let exact3 = CompressedDelta::Exact(GradDelta::Sparse(
            SparseVec::from_pairs(vec![(1, 1.0), (5, 1.0), (30, 1.0)], 32).unwrap(),
        ));
        assert!(i8d.encoded_len() < exact3.encoded_len());
    }

    #[test]
    fn compressed_delta_decode_rejects_hostile_frames() {
        // Unknown tag.
        assert_eq!(
            CompressedDelta::decode(&[7u8]),
            Err(DecodeError::BadTag { at: 0, tag: 7 })
        );
        // Hostile count prefixes must not size an allocation.
        for n in [u64::MAX, 1u64 << 61, 1u64 << 40] {
            let mut buf = BytesMut::new();
            buf.put_u8(1);
            buf.put_u64_le(n);
            buf.put_u64_le(10);
            buf.put_f64_le(1.0);
            assert!(CompressedDelta::decode(buf.as_slice()).is_err(), "n={n}");
        }
        // Non-finite scale is structurally valid bytes, semantically not.
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u64_le(0);
        buf.put_u64_le(4);
        buf.put_f64_le(f64::NAN);
        assert!(matches!(
            CompressedDelta::decode(buf.as_slice()),
            Err(DecodeError::Invalid { at: 17, .. })
        ));
        // Unsorted support.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(2);
        buf.put_u64_le(10);
        buf.put_f64_le(1.0);
        buf.put_u32_le(5);
        buf.put_i8(1);
        buf.put_u32_le(3);
        buf.put_i8(1);
        assert!(matches!(
            CompressedDelta::decode(buf.as_slice()),
            Err(DecodeError::Invalid { at: 25, .. })
        ));
        // Truncation positions point at the cut.
        let full = CompressedDelta::I8 {
            dim: 16,
            scale: 1.0,
            indices: vec![2, 7],
            codes: vec![10, -10],
        };
        let mut buf = BytesMut::new();
        full.encode(&mut buf);
        for cut in 0..buf.len() {
            let err = CompressedDelta::decode(&buf.as_slice()[..cut]).unwrap_err();
            assert!(err.at() <= cut, "cut={cut} at={}", err.at());
        }
    }

    #[test]
    fn tuple_composes() {
        let p = (2.0f64, vec![1.0f64, 2.0]);
        assert_eq!(p.encoded_len(), 8 + (8 + 16));
        assert_eq!(encoded_bytes(&p) as u64, p.encoded_len());
        roundtrip(&p);
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let v: Vec<f64> = vec![1.0, 2.0, 3.0];
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        assert!(matches!(
            Vec::<f64>::decode(&buf.as_slice()[..buf.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        assert_eq!(
            f64::decode(&[0u8; 4]),
            Err(DecodeError::Truncated { at: 4, needed: 4 })
        );
        assert_eq!(
            GradDelta::decode(&[9u8, 0, 0]),
            Err(DecodeError::BadTag { at: 0, tag: 9 })
        );
        // SparseVec decode re-validates invariants: unsorted indices fail.
        let mut bad = BytesMut::new();
        bad.put_u64_le(2);
        bad.put_u64_le(10);
        bad.put_u32_le(5);
        bad.put_f64_le(1.0);
        bad.put_u32_le(3);
        bad.put_f64_le(1.0);
        assert!(matches!(
            SparseVec::decode(bad.as_slice()),
            Err(DecodeError::Invalid { at: 16, .. })
        ));
    }

    #[test]
    fn decode_errors_carry_positions() {
        // A truncated second tuple element reports a position past the
        // first element's bytes, not a zero offset.
        let p = (2.0f64, vec![1.0f64, 2.0, 3.0]);
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        let cut = buf.len() - 3;
        let err = <(f64, Vec<f64>)>::decode(&buf.as_slice()[..cut]).unwrap_err();
        assert!(
            err.at() >= 8,
            "position {} not re-based past element 0",
            err.at()
        );
        // A bad GradDelta arm inside a keyed table is positioned inside
        // the table, past the length prefix and first key.
        let table: Vec<(u64, GradDelta)> = vec![(7, GradDelta::Dense(vec![1.0]))];
        let mut buf = BytesMut::new();
        table.encode(&mut buf);
        let mut bytes = buf.to_vec();
        bytes[16] = 9; // corrupt entry 0's GradDelta tag byte
        let err = Vec::<(u64, GradDelta)>::decode(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::BadTag { at: 16, tag: 9 });
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocating() {
        // A count prefix of 2^61 would wrap `n * 8` to 0 under unchecked
        // arithmetic and be silently accepted; a huge-but-unwrapped count
        // must also not size an allocation before validation.
        for n in [u64::MAX, 1u64 << 61, 1u64 << 40] {
            let mut buf = BytesMut::new();
            buf.put_u64_le(n);
            buf.put_f64_le(1.0);
            assert!(Vec::<f64>::decode(buf.as_slice()).is_err(), "n={n}");
            let mut table = BytesMut::new();
            table.put_u64_le(n);
            table.put_u64_le(7);
            assert!(
                matches!(
                    Vec::<(u64, f64)>::decode(table.as_slice()),
                    Err(DecodeError::LengthOverflow { at: 0, .. })
                ),
                "n={n}"
            );
            let mut sv = BytesMut::new();
            sv.put_u64_le(n);
            sv.put_u64_le(10);
            assert!(SparseVec::decode(sv.as_slice()).is_err(), "n={n}");
        }
    }
}
