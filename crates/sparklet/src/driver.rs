//! The driver: stage execution, actions, and the low-level submission API.
//!
//! The driver plays Spark's DAG-scheduler role for the subset we need:
//! one-stage jobs (map + per-partition fold) with a full BSP barrier. It
//! owns the engine, the broadcast registry, and the cluster-wide wait-time
//! recorder. The asynchronous layer (`async-core`) bypasses stages and uses
//! [`Driver::submit_raw`] / [`Driver::next_completion`] directly.

use std::collections::VecDeque;
use std::sync::Arc;

use async_cluster::{
    ChaosAction, ChaosSchedule, ClusterSpec, VDur, VTime, WaitTimeRecorder, WorkerId,
};

use crate::broadcast::{BcastCharge, Broadcast, BroadcastRegistry};
use crate::builder::EngineBuilder;
use crate::engine::{Completion, Engine, EngineError, Task, TaskFn, WireTask};
use crate::payload::Payload;
use crate::rdd::{Data, Rdd};
use crate::worker::WorkerCtx;

/// Summary of one executed stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Driver time when the stage started submitting.
    pub start: VTime,
    /// Driver time when the last task result arrived (the barrier).
    pub end: VTime,
    /// Bytes shipped to workers during the stage (task payloads plus
    /// first-use broadcast transfers).
    pub bytes_shipped: u64,
    /// Tasks resubmitted after worker failures.
    pub resubmissions: u32,
    /// Per-worker completion time of its last task in this stage (`None`
    /// when the worker ran nothing).
    pub last_finish: Vec<Option<VTime>>,
}

/// Supervised auto-respawn policy: when a worker dies for *any* reason —
/// scripted chaos, a crashed process, a missed liveness or task deadline —
/// the driver schedules a revival after an exponentially backed-off,
/// jittered delay, unless the worker is crash-looping.
///
/// Delays are virtual durations, so the same policy is deterministic on
/// the simulator (byte-gateable) and maps to real elapsed time on the
/// threaded/remote backends. The jitter stream is seeded, never
/// wall-clock.
#[derive(Debug, Clone)]
pub struct SuperviseCfg {
    /// Delay before the first respawn attempt.
    pub backoff_base: VDur,
    /// Multiplier applied per consecutive crash (≥ 1).
    pub backoff_factor: f64,
    /// Ceiling on the backed-off delay (before jitter).
    pub backoff_max: VDur,
    /// Uniform jitter fraction: the delay is stretched by up to this
    /// fraction (e.g. `0.1` → ×[1.0, 1.1)). Keeps respawn herds apart.
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Circuit breaker: after this many consecutive crashes (each without
    /// `crash_window` of uptime in between) the worker is abandoned — no
    /// further respawns until something external revives it.
    pub max_crashes: u32,
    /// Uptime that counts as "recovered": a death after at least this much
    /// uptime starts a fresh crash streak.
    pub crash_window: VDur,
}

impl Default for SuperviseCfg {
    fn default() -> Self {
        Self {
            backoff_base: VDur::from_millis(10),
            backoff_factor: 2.0,
            backoff_max: VDur::from_millis(1_000),
            jitter_frac: 0.1,
            seed: 0x5EED_CAFE,
            max_crashes: 5,
            crash_window: VDur::from_millis(500),
        }
    }
}

/// Per-worker supervisor bookkeeping (see [`SuperviseCfg`]).
struct Supervisor {
    cfg: SuperviseCfg,
    rng: u64,
    /// A supervised revival is already scheduled; don't schedule another
    /// (one death can surface as several `Lost` completions when multiple
    /// tasks were in flight).
    scheduled: Vec<bool>,
    /// Consecutive crashes without `crash_window` of uptime in between.
    streak: Vec<u32>,
    /// When the worker last came (or started) up.
    up_since: Vec<VTime>,
    /// Circuit open: crash-looped past `max_crashes`, abandoned.
    broken: Vec<bool>,
    respawns: u64,
}

impl Supervisor {
    fn new(cfg: SuperviseCfg, workers: usize, now: VTime) -> Self {
        let rng = cfg.seed | 1;
        Self {
            cfg,
            rng,
            scheduled: vec![false; workers],
            streak: vec![0; workers],
            up_since: vec![now; workers],
            broken: vec![false; workers],
            respawns: 0,
        }
    }

    fn grow(&mut self, workers: usize, now: VTime) {
        while self.scheduled.len() < workers {
            self.scheduled.push(false);
            self.streak.push(0);
            self.up_since.push(now);
            self.broken.push(false);
        }
    }

    /// Next uniform sample in `[0, 1)` from the seeded jitter stream
    /// (splitmix64).
    fn unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Registers a death at `now`; returns the instant to schedule the
    /// respawn at, or `None` when the circuit is (now) open.
    fn on_death(&mut self, w: WorkerId, now: VTime) -> Option<VTime> {
        if self.broken[w] {
            return None;
        }
        if now.saturating_since(self.up_since[w]) >= self.cfg.crash_window {
            self.streak[w] = 0;
        }
        self.streak[w] += 1;
        if self.streak[w] > self.cfg.max_crashes {
            self.broken[w] = true;
            return None;
        }
        let exp = (self.streak[w] - 1).min(30);
        let backed = (self.cfg.backoff_base.as_micros() as f64
            * self.cfg.backoff_factor.powi(exp as i32))
        .min(self.cfg.backoff_max.as_micros() as f64);
        let jittered = backed * (1.0 + self.cfg.jitter_frac * self.unit());
        self.respawns += 1;
        Some(now + VDur::from_micros(jittered.round() as u64))
    }
}

/// The cluster driver. See the module docs.
pub struct Driver {
    engine: Box<dyn Engine>,
    registry: BroadcastRegistry,
    wait: WaitTimeRecorder,
    total_bytes: u64,
    total_tasks: u64,
    supervisor: Option<Supervisor>,
}

impl Driver {
    /// A driver over the deterministic simulated engine.
    pub fn sim(spec: ClusterSpec) -> Self {
        Self::from_engine(
            EngineBuilder::sim()
                .spec(spec)
                .build()
                .expect("sim construction is infallible"),
        )
    }

    /// A driver over the real-thread engine (see
    /// [`crate::threaded::ThreadedEngine::new`] for `time_scale`).
    pub fn threaded(spec: ClusterSpec, time_scale: f64) -> Self {
        Self::from_engine(
            EngineBuilder::threaded()
                .spec(spec)
                .time_scale(time_scale)
                .build()
                .expect("threaded construction is infallible"),
        )
    }

    /// A driver over any engine implementation.
    pub fn from_engine(engine: Box<dyn Engine>) -> Self {
        let n = engine.workers();
        Self {
            engine,
            registry: BroadcastRegistry::new(n),
            wait: WaitTimeRecorder::new(n),
            total_bytes: 0,
            total_tasks: 0,
            supervisor: None,
        }
    }

    /// Installs the supervised auto-respawn policy: every subsequent
    /// death observed through the completion stream schedules a backed-off
    /// jittered revival (see [`SuperviseCfg`]). Scripted
    /// [`ChaosSchedule`] revivals compose — reviving an alive worker is a
    /// no-op at fire time.
    pub fn supervise(&mut self, cfg: SuperviseCfg) {
        let now = self.engine.now();
        self.supervisor = Some(Supervisor::new(cfg, self.engine.workers(), now));
    }

    /// Respawns the supervisor has scheduled so far (0 when supervision is
    /// not installed).
    pub fn supervised_respawns(&self) -> u64 {
        self.supervisor.as_ref().map_or(0, |s| s.respawns)
    }

    /// True when the supervisor abandoned `w` after it crash-looped past
    /// [`SuperviseCfg::max_crashes`].
    pub fn circuit_open(&self, w: WorkerId) -> bool {
        self.supervisor
            .as_ref()
            .is_some_and(|s| w < s.broken.len() && s.broken[w])
    }

    /// Total workers (dead or alive).
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// Ids of workers that have not failed.
    pub fn alive_workers(&self) -> Vec<WorkerId> {
        (0..self.engine.workers())
            .filter(|&w| self.engine.alive(w))
            .collect()
    }

    /// True when `w` is alive and idle.
    pub fn available(&self, w: WorkerId) -> bool {
        self.engine.available(w)
    }

    /// Current engine time.
    pub fn now(&self) -> VTime {
        self.engine.now()
    }

    /// Tasks currently in flight.
    pub fn pending(&self) -> usize {
        self.engine.pending()
    }

    /// The earliest still-scheduled membership event (including
    /// supervisor-scheduled revivals), or `None`. See
    /// [`Engine::next_event_at`].
    pub fn next_event_at(&self) -> Option<VTime> {
        self.engine.next_event_at()
    }

    /// The stable owner of partition `part` given the current set of alive
    /// workers (round-robin; reassigns automatically after failures,
    /// revivals, and joins).
    ///
    /// Returns [`EngineError::NoAliveWorkers`] when every worker has failed
    /// — ownership is undefined until a revival or join restores capacity.
    pub fn owner_of(&self, part: usize) -> Result<WorkerId, EngineError> {
        let alive = self.alive_workers();
        if alive.is_empty() {
            return Err(EngineError::NoAliveWorkers);
        }
        Ok(alive[part % alive.len()])
    }

    /// Partitions (out of `nparts`) owned by `w` under the current
    /// alive-worker assignment. Empty when no worker is alive (no owner
    /// exists) or `w` owns nothing.
    pub fn partitions_of(&self, w: WorkerId, nparts: usize) -> Vec<usize> {
        (0..nparts).filter(|&p| self.owner_of(p) == Ok(w)).collect()
    }

    /// Creates a classic broadcast variable.
    pub fn broadcast<T: Payload>(&mut self, value: T) -> Broadcast<T> {
        self.registry.create(value)
    }

    /// Cumulative bytes shipped to workers.
    pub fn total_bytes_shipped(&self) -> u64 {
        self.total_bytes
    }

    /// Cumulative tasks submitted.
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    /// The cluster-wide wait-time recorder.
    pub fn wait_recorder(&self) -> &WaitTimeRecorder {
        &self.wait
    }

    /// Replaces the wait recorder, returning the old one (experiments reset
    /// between warm-up and measurement).
    pub fn reset_wait_recorder(&mut self) -> WaitTimeRecorder {
        std::mem::replace(&mut self.wait, WaitTimeRecorder::new(self.engine.workers()))
    }

    /// Immediately fails a worker.
    pub fn kill_worker(&mut self, w: WorkerId) {
        self.engine.kill_worker(w);
    }

    /// Brings a dead worker back as a fresh executor. The revival surfaces
    /// as a [`Completion::WorkerUp`] through the completion stream, at
    /// which point the driver resets the worker's broadcast bookkeeping (a
    /// fresh executor re-receives every broadcast on first use).
    pub fn revive_worker(&mut self, w: WorkerId) -> Result<(), EngineError> {
        self.engine.revive_worker(w)
    }

    /// Adds a brand-new worker mid-run and returns its id. Driver-side
    /// bookkeeping (broadcast registry, wait recorder) grows immediately;
    /// [`Completion::WorkerUp`] surfaces through the completion stream for
    /// higher layers (e.g. the async coordinator's `STAT` table).
    pub fn add_worker(&mut self) -> WorkerId {
        let w = self.engine.add_worker();
        self.grow_bookkeeping();
        w
    }

    /// Schedules a failure at a virtual instant (real elapsed time on the
    /// threaded backend).
    pub fn schedule_failure(&mut self, w: WorkerId, at: VTime) {
        self.engine.schedule_failure(w, at);
    }

    /// Schedules a revival at a virtual instant (no-op at fire time if the
    /// worker is alive).
    pub fn schedule_revival(&mut self, w: WorkerId, at: VTime) {
        self.engine.schedule_revival(w, at);
    }

    /// Schedules a brand-new worker to join at a virtual instant.
    ///
    /// Id-allocation timing differs by backend: the simulator assigns the
    /// joiner's id at *scheduling* time (so `workers()` grows immediately,
    /// though the worker stays dead until its instant), while the threaded
    /// backend assigns it when the event *fires*. Either way the worker
    /// only becomes schedulable once its [`Completion::WorkerUp`] pops.
    pub fn schedule_join(&mut self, at: VTime) {
        self.engine.schedule_join(at);
        self.grow_bookkeeping();
    }

    /// Installs a whole membership-churn script: every event is mapped to
    /// the engine's scheduling primitives (the simulator fires them at
    /// exact virtual instants inside its deterministic event queue; the
    /// threaded backend applies them when real elapsed time passes them).
    pub fn install_chaos(&mut self, schedule: &ChaosSchedule) {
        for ev in schedule.events() {
            match ev.action {
                ChaosAction::Kill(w) => self.schedule_failure(w, ev.at),
                ChaosAction::Revive(w) => self.schedule_revival(w, ev.at),
                ChaosAction::Join => self.schedule_join(ev.at),
            }
        }
    }

    /// Grows driver bookkeeping to the engine's worker count (joins may
    /// have been requested engine-side; growth is idempotent).
    fn grow_bookkeeping(&mut self) {
        while self.wait.workers() < self.engine.workers() {
            self.wait.add_worker();
            self.registry.add_worker();
        }
    }

    /// Folds a membership notification into driver bookkeeping: joined
    /// workers get fresh rows, revived workers get their broadcast state
    /// reset (a fresh executor re-receives every broadcast on first use).
    fn note_membership(&mut self, c: &Completion) {
        match *c {
            Completion::WorkerUp { worker } => {
                if worker < self.registry.workers() {
                    self.registry.reset_worker(worker);
                    // Defensive: a wait left open by a pre-failure life
                    // must not span the downtime.
                    self.wait.cancel_open(worker);
                } else {
                    self.grow_bookkeeping();
                }
            }
            Completion::Lost { worker, .. } | Completion::WorkerDown { worker } => {
                // A dead worker is not waiting at a barrier: discard its
                // open wait so downtime never inflates mean wait times.
                self.wait.cancel_open(worker);
            }
            Completion::Done(_) => {}
        }
        self.supervise_membership(c);
    }

    /// The supervisor's half of membership bookkeeping: deaths schedule
    /// backed-off revivals, ups reset the crash window. One death can
    /// surface as several `Lost` completions (multiple tasks in flight);
    /// the `scheduled` latch collapses them into one respawn.
    fn supervise_membership(&mut self, c: &Completion) {
        let now = self.engine.now();
        let workers = self.engine.workers();
        let Some(sup) = self.supervisor.as_mut() else {
            return;
        };
        sup.grow(workers, now);
        match *c {
            Completion::WorkerUp { worker } => {
                sup.scheduled[worker] = false;
                sup.up_since[worker] = now;
            }
            Completion::Lost { worker, .. } | Completion::WorkerDown { worker } => {
                if !sup.scheduled[worker] {
                    if let Some(at) = sup.on_death(worker, now) {
                        sup.scheduled[worker] = true;
                        self.engine.schedule_revival(worker, at);
                    }
                }
            }
            Completion::Done(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Low-level API (used by async-core).
    // ------------------------------------------------------------------

    /// Submits a raw task to worker `w`, charging first-use broadcast
    /// transfers plus `extra_bytes` of task payload (e.g. history-broadcast
    /// version IDs) and recording the worker's wait end.
    pub fn submit_raw(
        &mut self,
        w: WorkerId,
        tag: u64,
        cost: f64,
        extra_bytes: u64,
        uses: &[BcastCharge],
        run: TaskFn,
    ) -> Result<(), EngineError> {
        self.submit_raw_wired(w, tag, cost, extra_bytes, uses, run, None)
    }

    /// [`Driver::submit_raw`] with an optional wire form of the task. When
    /// `wire` is `Some` and the engine is networked (the remote backend),
    /// the wire form crosses the socket and `run` is used for its
    /// driver-side bookkeeping only; in-process engines drop the wire form
    /// and execute `run` as usual. See [`WireTask`].
    #[allow(clippy::too_many_arguments)]
    pub fn submit_raw_wired(
        &mut self,
        w: WorkerId,
        tag: u64,
        cost: f64,
        extra_bytes: u64,
        uses: &[BcastCharge],
        run: TaskFn,
        wire: Option<WireTask>,
    ) -> Result<(), EngineError> {
        let bytes = self.registry.charge_for(w, uses) + extra_bytes;
        self.wait.task_received(w, self.engine.now());
        self.total_tasks += 1;
        let task = Task {
            tag,
            cost,
            bytes_in: bytes,
            run,
        };
        match wire {
            Some(wire) => self.engine.submit_wired(w, task, wire),
            None => self.engine.submit(w, task),
        }
    }

    /// Blocks for the next completion (advancing virtual time), recording
    /// wait starts for finished workers and folding membership changes
    /// (revivals, joins) into driver bookkeeping.
    pub fn next_completion(&mut self) -> Option<Completion> {
        let c = self.engine.next();
        if let Some(ref c) = c {
            self.note_membership(c);
            if let Completion::Done(d) = c {
                self.wait.result_submitted(d.worker, d.finished_at);
                self.total_bytes += d.bytes_in;
            }
        }
        c
    }

    /// Non-blocking completion poll ("has the server received results as of
    /// now" — the simulator does not advance its clock).
    pub fn try_next_completion(&mut self) -> Option<Completion> {
        let c = self.engine.try_next();
        if let Some(ref c) = c {
            self.note_membership(c);
            if let Completion::Done(d) = c {
                self.wait.result_submitted(d.worker, d.finished_at);
                self.total_bytes += d.bytes_in;
            }
        }
        c
    }

    // ------------------------------------------------------------------
    // BSP stages and actions.
    // ------------------------------------------------------------------

    /// Runs one BSP stage: applies `f` to every partition of `rdd` (the
    /// task materializes the partition via lineage, then folds it with
    /// `f`), waits for all partitions — the synchronous barrier — and
    /// returns the per-partition results in partition order.
    ///
    /// `uses` lists broadcast variables the closure captures so their
    /// first-use transfer can be billed per worker. `cost_scale` multiplies
    /// the RDD cost hints (e.g. a gradient pass costs ~2 work units per
    /// nonzero).
    ///
    /// Tasks lost to worker failures are resubmitted to surviving workers
    /// (lineage makes this safe); workers revived mid-stage steal queued
    /// work, and workers joined mid-stage are picked up by the next stage.
    ///
    /// # Errors
    /// Returns [`EngineError::NoAliveWorkers`] if every worker dies (with
    /// no revival in sight) before the stage completes.
    pub fn run_stage<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        f: F,
    ) -> Result<(Vec<R>, StageStats), EngineError>
    where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + 'static,
    {
        let nparts = rdd.num_partitions();
        let n_workers = self.engine.workers();
        let start = self.engine.now();
        let mut stats = StageStats {
            start,
            end: start,
            bytes_shipped: 0,
            resubmissions: 0,
            last_finish: vec![None; n_workers],
        };
        let mut results: Vec<Option<R>> = (0..nparts).map(|_| None).collect();
        if nparts == 0 {
            return Ok((Vec::new(), stats));
        }

        let f = Arc::new(f);
        let alive = self.alive_workers();
        if alive.is_empty() {
            return Err(EngineError::NoAliveWorkers);
        }
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_workers];
        for p in 0..nparts {
            queues[alive[p % alive.len()]].push_back(p);
        }
        let mut first_submitted = vec![false; n_workers];

        for w in 0..n_workers {
            self.dispatch_next(
                rdd,
                uses,
                cost_scale,
                &f,
                &mut queues,
                &mut first_submitted,
                w,
            );
        }

        let mut completed = 0;
        while completed < nparts {
            let c = self.engine.next().ok_or(EngineError::NoAliveWorkers)?;
            self.note_membership(&c);
            match c {
                Completion::Done(d) => {
                    let part = d.tag as usize;
                    let out = d
                        .output
                        .downcast::<R>()
                        .expect("stage task returned unexpected result type");
                    debug_assert!(results[part].is_none(), "partition {part} completed twice");
                    results[part] = Some(*out);
                    completed += 1;
                    stats.bytes_shipped += d.bytes_in;
                    self.total_bytes += d.bytes_in;
                    stats.last_finish[d.worker] = Some(d.finished_at);
                    if queues[d.worker].is_empty() {
                        // Worker is done for this stage: it now waits for
                        // the barrier + next stage.
                        self.wait.result_submitted(d.worker, d.finished_at);
                    } else {
                        self.dispatch_next(
                            rdd,
                            uses,
                            cost_scale,
                            &f,
                            &mut queues,
                            &mut first_submitted,
                            d.worker,
                        );
                    }
                }
                Completion::Lost { worker, tag } => {
                    stats.resubmissions += 1;
                    let mut orphans: Vec<usize> = queues[worker].drain(..).collect();
                    orphans.push(tag as usize);
                    self.redistribute(
                        rdd,
                        uses,
                        cost_scale,
                        &f,
                        &mut queues,
                        &mut first_submitted,
                        orphans,
                    );
                }
                Completion::WorkerDown { worker } => {
                    let orphans: Vec<usize> = queues[worker].drain(..).collect();
                    self.redistribute(
                        rdd,
                        uses,
                        cost_scale,
                        &f,
                        &mut queues,
                        &mut first_submitted,
                        orphans,
                    );
                }
                Completion::WorkerUp { worker } => {
                    // A worker whose id sits inside this stage's layout —
                    // a revival, or (on the simulator, which allocates
                    // scheduled-join ids up front) a pre-scheduled join —
                    // takes over work parked on dead workers and steals
                    // from the longest live backlog. Workers beyond the
                    // layout (joins allocated after the stage started,
                    // which is always the case on the threaded backend)
                    // wait for the next stage.
                    if worker < queues.len() {
                        let mut orphans: Vec<usize> = Vec::new();
                        for w in 0..queues.len() {
                            if !self.engine.alive(w) {
                                orphans.extend(queues[w].drain(..));
                            }
                        }
                        if orphans.is_empty() && queues[worker].is_empty() {
                            if let Some(donor) = (0..queues.len())
                                .filter(|&w| w != worker && !queues[w].is_empty())
                                .max_by_key(|&w| queues[w].len())
                            {
                                let stolen = queues[donor].pop_back().expect("donor has backlog");
                                queues[worker].push_back(stolen);
                            }
                        }
                        self.redistribute(
                            rdd,
                            uses,
                            cost_scale,
                            &f,
                            &mut queues,
                            &mut first_submitted,
                            orphans,
                        );
                    }
                }
            }
        }
        stats.end = self.engine.now();
        Ok((
            results
                .into_iter()
                .map(|r| r.expect("all partitions completed"))
                .collect(),
            stats,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_next<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        f: &Arc<F>,
        queues: &mut [VecDeque<usize>],
        first_submitted: &mut [bool],
        w: WorkerId,
    ) where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + 'static,
    {
        if !self.engine.available(w) {
            return;
        }
        let Some(part) = queues[w].pop_front() else {
            return;
        };
        let bytes = self.registry.charge_for(w, uses);
        self.total_tasks += 1;
        if !first_submitted[w] {
            // Receiving the first task of the stage closes the worker's
            // inter-stage wait.
            self.wait.task_received(w, self.engine.now());
            first_submitted[w] = true;
        }
        let ops = rdd.ops();
        let f = Arc::clone(f);
        let cost = rdd.cost_hint(part) * cost_scale;
        let run: TaskFn = Box::new(move |ctx| {
            let data = ops.compute(part);
            Box::new(f(ctx, data, part))
        });
        self.engine
            .submit(
                w,
                Task {
                    tag: part as u64,
                    cost,
                    bytes_in: bytes,
                    run,
                },
            )
            .expect("dispatch_next checked availability");
    }

    #[allow(clippy::too_many_arguments)]
    fn redistribute<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        f: &Arc<F>,
        queues: &mut [VecDeque<usize>],
        first_submitted: &mut [bool],
        orphans: Vec<usize>,
    ) where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + 'static,
    {
        // Joined workers (ids beyond this stage's queue layout) only take
        // part from the next stage; orphans go to surviving layout workers.
        let alive: Vec<WorkerId> = self
            .alive_workers()
            .into_iter()
            .filter(|&w| w < queues.len())
            .collect();
        if alive.is_empty() {
            // Everyone in the stage layout is down: park the orphans on
            // worker 0's queue. They are re-redistributed when a revival's
            // WorkerUp steals work, or the stage errors out when the
            // engine starves.
            queues[0].extend(orphans);
            return;
        }
        for part in orphans {
            // Shortest queue among survivors.
            let w = *alive
                .iter()
                .min_by_key(|&&w| queues[w].len())
                .expect("alive workers nonempty");
            queues[w].push_back(part);
        }
        for &w in &alive {
            self.dispatch_next(rdd, uses, cost_scale, f, queues, first_submitted, w);
        }
    }

    /// Action: per-partition fold with `rf`, then a driver-side combine of
    /// the partial results (Spark's `reduce`). Returns `None` for an RDD
    /// with no elements.
    ///
    /// # Errors
    /// Propagates [`EngineError::NoAliveWorkers`] from the stage.
    pub fn reduce<T: Data>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        rf: impl Fn(T, T) -> T + Send + Sync + 'static,
    ) -> Result<(Option<T>, StageStats), EngineError> {
        let rf = Arc::new(rf);
        let rf2 = Arc::clone(&rf);
        let (partials, stats) =
            self.run_stage(rdd, uses, cost_scale, move |_ctx, data, _part| {
                let mut it = data.into_iter();
                let first = it.next();
                first.map(|f0| it.fold(f0, |a, b| rf2(a, b)))
            })?;
        let combined = partials.into_iter().flatten().reduce(|a, b| rf(a, b));
        Ok((combined, stats))
    }

    /// Action: Spark's `aggregate` — per-partition fold from `zero` with
    /// `seq_op`, then driver-side `comb_op`.
    ///
    /// # Errors
    /// Propagates [`EngineError::NoAliveWorkers`] from the stage.
    pub fn aggregate<T: Data, U: Data>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        zero: U,
        seq_op: impl Fn(U, &T) -> U + Send + Sync + 'static,
        comb_op: impl Fn(U, U) -> U,
    ) -> Result<(U, StageStats), EngineError> {
        let z = zero.clone();
        let (partials, stats) =
            self.run_stage(rdd, uses, cost_scale, move |_ctx, data, _part| {
                data.iter().fold(z.clone(), &seq_op)
            })?;
        Ok((partials.into_iter().fold(zero, comb_op), stats))
    }

    /// Action: materializes the whole RDD on the driver in partition order.
    ///
    /// # Errors
    /// Propagates [`EngineError::NoAliveWorkers`] from the stage.
    pub fn collect<T: Data>(&mut self, rdd: &Rdd<T>) -> Result<(Vec<T>, StageStats), EngineError> {
        let (parts, stats) = self.run_stage(rdd, &[], 1.0, |_ctx, data, _part| data)?;
        Ok((parts.into_iter().flatten().collect(), stats))
    }

    /// Action: element count.
    ///
    /// # Errors
    /// Propagates [`EngineError::NoAliveWorkers`] from the stage.
    pub fn count<T: Data>(&mut self, rdd: &Rdd<T>) -> Result<(usize, StageStats), EngineError> {
        let (parts, stats) = self.run_stage(rdd, &[], 1.0, |_ctx, data, _part| data.len())?;
        Ok((parts.into_iter().sum(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel, VDur};

    fn sim_driver(workers: usize, delay: DelayModel) -> Driver {
        Driver::sim(
            ClusterSpec::homogeneous(workers, delay)
                .with_comm(CommModel::free())
                .with_sched_overhead(VDur::ZERO),
        )
    }

    #[test]
    fn map_reduce_computes_sum() {
        let mut d = sim_driver(4, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2], vec![3, 4], vec![5], vec![]]);
        let (sum, stats) = d
            .reduce(&rdd.map(|x| x * 2), &[], 1.0, |a, b| a + b)
            .unwrap();
        assert_eq!(sum, Some(30));
        assert!(stats.end >= stats.start);
        assert_eq!(stats.resubmissions, 0);
    }

    #[test]
    fn aggregate_counts_elements() {
        let mut d = sim_driver(2, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2, 3], vec![4, 5]]);
        let (n, _) = d
            .aggregate(&rdd, &[], 1.0, 0usize, |acc, _| acc + 1, |a, b| a + b)
            .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn collect_preserves_partition_order() {
        let mut d = sim_driver(3, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2, 3], vec![4]]);
        let (all, _) = d.collect(&rdd).unwrap();
        assert_eq!(all, vec![1, 2, 3, 4]);
        let (n, _) = d.count(&rdd).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn more_partitions_than_workers_pipelines() {
        let mut d = sim_driver(2, DelayModel::None);
        let parts: Vec<Vec<i64>> = (0..8).map(|p| vec![p as i64]).collect();
        let rdd = Rdd::parallelize(parts);
        let (vals, _) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, part| {
                assert_eq!(data[0], part as i64);
                data[0] * 10
            })
            .unwrap();
        assert_eq!(vals, (0..8).map(|p| p * 10).collect::<Vec<i64>>());
    }

    #[test]
    fn stage_barrier_waits_for_straggler() {
        // Worker 1 runs 2x slower: the stage end must match its finish.
        let mut d = sim_driver(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 1.0,
            },
        );
        let rdd = Rdd::parallelize_with_cost(vec![vec![0i64], vec![0i64]], vec![2e8, 2e8]);
        let (_, stats) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, _data, _part| 0i64)
            .unwrap();
        let f0 = stats.last_finish[0].unwrap();
        let f1 = stats.last_finish[1].unwrap();
        assert_eq!(f0.as_micros(), 1_000_000);
        assert_eq!(f1.as_micros(), 2_000_000);
        assert_eq!(stats.end, f1);
    }

    #[test]
    fn wait_times_grow_with_straggler_intensity() {
        // Two stages: worker 0's wait between stages = straggler finish −
        // its own finish. With a 100% straggler the wait equals one full
        // task time.
        let mut d = sim_driver(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 1.0,
            },
        );
        let rdd = Rdd::parallelize_with_cost(vec![vec![0i64], vec![0i64]], vec![2e8, 2e8]);
        for _ in 0..2 {
            let _ = d
                .run_stage(&rdd, &[], 1.0, |_ctx, _data, _part| 0i64)
                .unwrap();
        }
        let w0 = d.wait_recorder().mean_for(0);
        let w1 = d.wait_recorder().mean_for(1);
        assert_eq!(w0.as_micros(), 1_000_000, "fast worker waits one task time");
        assert_eq!(w1.as_micros(), 0, "straggler never waits");
    }

    #[test]
    fn broadcast_charged_once_per_worker() {
        let spec = ClusterSpec::homogeneous(2, DelayModel::None)
            .with_comm(CommModel {
                per_msg: VDur::ZERO,
                ns_per_byte: 0.0,
            })
            .with_sched_overhead(VDur::ZERO);
        let mut d = Driver::sim(spec);
        let b = d.broadcast(vec![0.0f64; 100]);
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2]]);
        let uses = [b.charge()];
        let (_, s1) = d
            .run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(s1.bytes_shipped, 2 * b.bytes());
        let (_, s2) = d
            .run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(s2.bytes_shipped, 0, "already shipped to both workers");
        assert_eq!(d.total_bytes_shipped(), 2 * b.bytes());
    }

    #[test]
    fn worker_failure_mid_stage_resubmits() {
        let mut d = sim_driver(2, DelayModel::None);
        // Two long tasks; worker 0 dies halfway through its task.
        let rdd = Rdd::parallelize_with_cost(vec![vec![10i64], vec![20i64]], vec![2e8, 2e8]);
        d.schedule_failure(0, VTime::from_micros(500_000));
        let (vals, stats) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(vals, vec![10, 20], "lost partition recomputed via lineage");
        assert_eq!(stats.resubmissions, 1);
        assert_eq!(d.alive_workers(), vec![1]);
    }

    #[test]
    fn failure_of_idle_worker_redistributes_queue() {
        let mut d = sim_driver(2, DelayModel::None);
        let parts: Vec<Vec<i64>> = (0..6).map(|p| vec![p as i64]).collect();
        let rdd = Rdd::parallelize_with_cost(parts, vec![2e8; 6]);
        // Dies after its first task completes (at 1s the worker is between
        // tasks only momentarily; schedule just before second finishes).
        d.schedule_failure(0, VTime::from_micros(1_500_000));
        let (vals, stats) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(vals, (0..6).collect::<Vec<i64>>());
        assert!(stats.resubmissions >= 1);
    }

    #[test]
    fn owner_assignment_is_stable_and_rebalances() {
        let d = sim_driver(4, DelayModel::None);
        assert_eq!(d.owner_of(0), Ok(0));
        assert_eq!(d.owner_of(5), Ok(1));
        assert_eq!(d.partitions_of(1, 8), vec![1, 5]);
        let mut d = d;
        d.kill_worker(1);
        // Drain the WorkerDown completion.
        while d.next_completion().is_some() {}
        let alive = d.alive_workers();
        assert_eq!(alive, vec![0, 2, 3]);
        assert_eq!(d.owner_of(1), Ok(2));
    }

    #[test]
    fn owner_of_with_no_alive_workers_is_a_typed_error() {
        let mut d = sim_driver(2, DelayModel::None);
        d.kill_worker(0);
        d.kill_worker(1);
        while d.next_completion().is_some() {}
        assert_eq!(d.owner_of(0), Err(EngineError::NoAliveWorkers));
        assert!(d.partitions_of(0, 4).is_empty());
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2]]);
        let err = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data.len())
            .unwrap_err();
        assert_eq!(err, EngineError::NoAliveWorkers);
        let err = d.reduce(&rdd, &[], 1.0, |a, b| a + b).unwrap_err();
        assert_eq!(err, EngineError::NoAliveWorkers);
    }

    #[test]
    fn stage_error_when_all_workers_die_mid_stage() {
        let mut d = sim_driver(2, DelayModel::None);
        let rdd = Rdd::parallelize_with_cost(vec![vec![1i64], vec![2]], vec![2e8, 2e8]);
        d.schedule_failure(0, VTime::from_micros(100));
        d.schedule_failure(1, VTime::from_micros(200));
        let err = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
            .unwrap_err();
        assert_eq!(err, EngineError::NoAliveWorkers);
    }

    #[test]
    fn revival_mid_stage_rescues_the_stage() {
        // Both workers die, then one revives: the stage must complete via
        // the revived worker's work-stealing instead of erroring out.
        let mut d = sim_driver(2, DelayModel::None);
        let parts: Vec<Vec<i64>> = (0..4).map(|p| vec![p as i64]).collect();
        let rdd = Rdd::parallelize_with_cost(parts, vec![2e8; 4]);
        d.schedule_failure(0, VTime::from_micros(100));
        d.schedule_failure(1, VTime::from_micros(200));
        d.schedule_revival(0, VTime::from_micros(300));
        let (vals, stats) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert!(stats.resubmissions >= 1);
        assert_eq!(d.alive_workers(), vec![0]);
    }

    #[test]
    fn chaos_schedule_drives_a_stage_end_to_end() {
        use async_cluster::ChaosSchedule;
        let mut d = sim_driver(3, DelayModel::None);
        let chaos = ChaosSchedule::new()
            .kill(VTime::from_micros(500), 2)
            .revive(VTime::from_micros(1_200_000), 2)
            .join(VTime::from_micros(1_500_000));
        d.install_chaos(&chaos);
        let parts: Vec<Vec<i64>> = (0..9).map(|p| vec![p as i64]).collect();
        let rdd = Rdd::parallelize_with_cost(parts, vec![2e8; 9]);
        let (vals, _) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(vals, (0..9).collect::<Vec<i64>>());
        // After the schedule: 3 originals alive (2 revived) + 1 joined.
        while d.next_completion().is_some() {}
        assert_eq!(d.workers(), 4);
        assert_eq!(d.alive_workers(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn revived_worker_pays_broadcasts_again() {
        let spec = ClusterSpec::homogeneous(2, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO);
        let mut d = Driver::sim(spec);
        let b = d.broadcast(vec![0.0f64; 50]);
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2]]);
        let uses = [b.charge()];
        let (_, s1) = d
            .run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(s1.bytes_shipped, 2 * b.bytes());
        // Kill + revive worker 0 (draining between the two — the sim
        // applies membership changes at event pop): its fresh executor
        // must re-receive the broadcast; worker 1 keeps its copy.
        d.kill_worker(0);
        while d.next_completion().is_some() {}
        d.revive_worker(0).unwrap();
        while d.next_completion().is_some() {}
        let (_, s2) = d
            .run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(s2.bytes_shipped, b.bytes(), "only the revived worker pays");
    }

    #[test]
    fn joined_worker_owns_partitions_and_pays_broadcasts() {
        let spec = ClusterSpec::homogeneous(2, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO);
        let mut d = Driver::sim(spec);
        let b = d.broadcast(vec![0.0f64; 10]);
        let w = d.add_worker();
        assert_eq!(w, 2);
        while d.next_completion().is_some() {}
        assert_eq!(d.alive_workers(), vec![0, 1, 2]);
        assert_eq!(d.owner_of(2), Ok(2), "join rebalances ownership");
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2], vec![3]]);
        let uses = [b.charge()];
        let (vals, s) = d
            .run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(vals, vec![1, 2, 3]);
        assert_eq!(s.bytes_shipped, 3 * b.bytes());
    }

    #[test]
    fn threaded_stage_matches_sim_results() {
        let spec = ClusterSpec::homogeneous(3, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2], vec![3], vec![4, 5, 6]]);
        let mut sim = Driver::sim(spec.clone());
        let mut thr = Driver::threaded(spec, 0.0);
        let (a, _) = sim
            .reduce(&rdd.map(|x| x * x), &[], 1.0, |x, y| x + y)
            .unwrap();
        let (b, _) = thr
            .reduce(&rdd.map(|x| x * x), &[], 1.0, |x, y| x + y)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, Some(1 + 4 + 9 + 16 + 25 + 36));
    }

    #[test]
    fn supervisor_respawns_an_unscripted_death_with_backoff() {
        let mut d = sim_driver(2, DelayModel::None);
        d.supervise(SuperviseCfg {
            backoff_base: VDur::from_millis(10),
            jitter_frac: 0.0,
            ..SuperviseCfg::default()
        });
        // An unscripted kill: no chaos schedule mentions a revival, only
        // the supervisor can bring worker 1 back.
        d.schedule_failure(1, VTime::from_micros(1_000));
        let rdd =
            Rdd::parallelize_with_cost((0..4).map(|p| vec![p as i64]).collect(), vec![2e8; 4]);
        let (vals, _) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
            .unwrap();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert_eq!(d.supervised_respawns(), 1);
        while d.next_completion().is_some() {}
        assert_eq!(d.alive_workers(), vec![0, 1], "worker 1 came back");
        assert!(!d.circuit_open(1));
    }

    #[test]
    fn supervisor_backoff_grows_and_jitter_is_deterministic() {
        let run = || {
            let mut d = sim_driver(1, DelayModel::None);
            d.supervise(SuperviseCfg {
                backoff_base: VDur::from_millis(10),
                backoff_factor: 2.0,
                backoff_max: VDur::from_millis(80),
                jitter_frac: 0.5,
                seed: 42,
                max_crashes: 10,
                crash_window: VDur::from_millis(100_000), // never recovers
            });
            let mut ups = Vec::new();
            for _ in 0..4 {
                d.kill_worker(0);
                loop {
                    match d.next_completion() {
                        Some(Completion::WorkerUp { .. }) => {
                            ups.push(d.now().as_micros());
                            break;
                        }
                        Some(_) => continue,
                        None => panic!("supervisor must revive worker 0"),
                    }
                }
            }
            ups
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded jitter must be reproducible");
        // Gaps between death (at the prior up instant) and the next up
        // grow roughly geometrically: each at least the un-jittered
        // backoff for its streak position.
        let mut prev = 0;
        for (i, &up) in a.iter().enumerate() {
            let gap = up - prev;
            let floor = (10_000u64 << i).min(80_000);
            assert!(
                gap >= floor,
                "respawn {i} came after {gap}us, backoff floor {floor}us"
            );
            prev = up;
        }
    }

    #[test]
    fn crash_loop_opens_the_circuit_breaker() {
        let mut d = sim_driver(2, DelayModel::None);
        d.supervise(SuperviseCfg {
            max_crashes: 2,
            jitter_frac: 0.0,
            crash_window: VDur::from_millis(100_000),
            ..SuperviseCfg::default()
        });
        // Worker 0 dies instantly every time it comes up.
        for _ in 0..3 {
            d.kill_worker(0);
            // Drain until the respawn lands (or nothing more happens).
            while d.next_completion().is_some() {}
        }
        assert!(d.circuit_open(0), "third crash must open the circuit");
        assert_eq!(d.supervised_respawns(), 2, "no respawn past the breaker");
        assert_eq!(d.alive_workers(), vec![1]);
        // External revival still works and the worker stays supervisable
        // for bookkeeping (the circuit stays open by design).
        d.revive_worker(0).unwrap();
        while d.next_completion().is_some() {}
        assert_eq!(d.alive_workers(), vec![0, 1]);
    }

    #[test]
    fn uptime_past_the_crash_window_resets_the_streak() {
        let mut d = sim_driver(1, DelayModel::None);
        d.supervise(SuperviseCfg {
            max_crashes: 2,
            jitter_frac: 0.0,
            crash_window: VDur::from_millis(1), // recovers almost instantly
            ..SuperviseCfg::default()
        });
        // Many kill/recover cycles separated by "long" uptime: the streak
        // resets each time, so the circuit never opens.
        let rdd = Rdd::parallelize_with_cost(vec![vec![1i64]], vec![2e8]);
        for _ in 0..5 {
            d.kill_worker(0);
            while d.next_completion().is_some() {}
            // Run a stage so virtual time advances well past the window.
            let (v, _) = d
                .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0])
                .unwrap();
            assert_eq!(v, vec![1]);
        }
        assert!(!d.circuit_open(0));
        assert_eq!(d.supervised_respawns(), 5);
    }

    #[test]
    fn empty_rdd_stage_is_noop() {
        let mut d = sim_driver(2, DelayModel::None);
        let rdd: Rdd<i64> = Rdd::parallelize(vec![]);
        let (vals, stats) = d
            .run_stage(&rdd, &[], 1.0, |_ctx, data, _| data.len())
            .unwrap();
        assert!(vals.is_empty());
        assert_eq!(stats.bytes_shipped, 0);
        let (sum, _) = d.reduce(&rdd, &[], 1.0, |a, b| a + b).unwrap();
        assert_eq!(sum, None);
    }
}
