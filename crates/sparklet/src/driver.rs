//! The driver: stage execution, actions, and the low-level submission API.
//!
//! The driver plays Spark's DAG-scheduler role for the subset we need:
//! one-stage jobs (map + per-partition fold) with a full BSP barrier. It
//! owns the engine, the broadcast registry, and the cluster-wide wait-time
//! recorder. The asynchronous layer (`async-core`) bypasses stages and uses
//! [`Driver::submit_raw`] / [`Driver::next_completion`] directly.

use std::collections::VecDeque;
use std::sync::Arc;

use async_cluster::{ClusterSpec, VTime, WaitTimeRecorder, WorkerId};

use crate::broadcast::{BcastCharge, Broadcast, BroadcastRegistry};
use crate::engine::{Completion, Engine, EngineError, Task, TaskFn};
use crate::payload::Payload;
use crate::rdd::{Data, Rdd};
use crate::sim::SimEngine;
use crate::threaded::ThreadedEngine;
use crate::worker::WorkerCtx;

/// Summary of one executed stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Driver time when the stage started submitting.
    pub start: VTime,
    /// Driver time when the last task result arrived (the barrier).
    pub end: VTime,
    /// Bytes shipped to workers during the stage (task payloads plus
    /// first-use broadcast transfers).
    pub bytes_shipped: u64,
    /// Tasks resubmitted after worker failures.
    pub resubmissions: u32,
    /// Per-worker completion time of its last task in this stage (`None`
    /// when the worker ran nothing).
    pub last_finish: Vec<Option<VTime>>,
}

/// The cluster driver. See the module docs.
pub struct Driver {
    engine: Box<dyn Engine>,
    registry: BroadcastRegistry,
    wait: WaitTimeRecorder,
    total_bytes: u64,
    total_tasks: u64,
}

impl Driver {
    /// A driver over the deterministic simulated engine.
    pub fn sim(spec: ClusterSpec) -> Self {
        Self::from_engine(Box::new(SimEngine::new(spec)))
    }

    /// A driver over the real-thread engine (see
    /// [`ThreadedEngine::new`] for `time_scale`).
    pub fn threaded(spec: ClusterSpec, time_scale: f64) -> Self {
        Self::from_engine(Box::new(ThreadedEngine::new(spec, time_scale)))
    }

    /// A driver over any engine implementation.
    pub fn from_engine(engine: Box<dyn Engine>) -> Self {
        let n = engine.workers();
        Self {
            engine,
            registry: BroadcastRegistry::new(n),
            wait: WaitTimeRecorder::new(n),
            total_bytes: 0,
            total_tasks: 0,
        }
    }

    /// Total workers (dead or alive).
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// Ids of workers that have not failed.
    pub fn alive_workers(&self) -> Vec<WorkerId> {
        (0..self.engine.workers())
            .filter(|&w| self.engine.alive(w))
            .collect()
    }

    /// True when `w` is alive and idle.
    pub fn available(&self, w: WorkerId) -> bool {
        self.engine.available(w)
    }

    /// Current engine time.
    pub fn now(&self) -> VTime {
        self.engine.now()
    }

    /// Tasks currently in flight.
    pub fn pending(&self) -> usize {
        self.engine.pending()
    }

    /// The stable owner of partition `part` given the current set of alive
    /// workers (round-robin; reassigns automatically after failures).
    pub fn owner_of(&self, part: usize) -> WorkerId {
        let alive = self.alive_workers();
        assert!(!alive.is_empty(), "owner_of: no alive workers");
        alive[part % alive.len()]
    }

    /// Partitions (out of `nparts`) owned by `w` under the current
    /// alive-worker assignment.
    pub fn partitions_of(&self, w: WorkerId, nparts: usize) -> Vec<usize> {
        (0..nparts).filter(|&p| self.owner_of(p) == w).collect()
    }

    /// Creates a classic broadcast variable.
    pub fn broadcast<T: Payload>(&mut self, value: T) -> Broadcast<T> {
        self.registry.create(value)
    }

    /// Cumulative bytes shipped to workers.
    pub fn total_bytes_shipped(&self) -> u64 {
        self.total_bytes
    }

    /// Cumulative tasks submitted.
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    /// The cluster-wide wait-time recorder.
    pub fn wait_recorder(&self) -> &WaitTimeRecorder {
        &self.wait
    }

    /// Replaces the wait recorder, returning the old one (experiments reset
    /// between warm-up and measurement).
    pub fn reset_wait_recorder(&mut self) -> WaitTimeRecorder {
        std::mem::replace(&mut self.wait, WaitTimeRecorder::new(self.engine.workers()))
    }

    /// Immediately fails a worker.
    pub fn kill_worker(&mut self, w: WorkerId) {
        self.engine.kill_worker(w);
    }

    /// Schedules a failure at a virtual instant (simulated engine only).
    pub fn schedule_failure(&mut self, w: WorkerId, at: VTime) {
        self.engine.schedule_failure(w, at);
    }

    // ------------------------------------------------------------------
    // Low-level API (used by async-core).
    // ------------------------------------------------------------------

    /// Submits a raw task to worker `w`, charging first-use broadcast
    /// transfers plus `extra_bytes` of task payload (e.g. history-broadcast
    /// version IDs) and recording the worker's wait end.
    pub fn submit_raw(
        &mut self,
        w: WorkerId,
        tag: u64,
        cost: f64,
        extra_bytes: u64,
        uses: &[BcastCharge],
        run: TaskFn,
    ) -> Result<(), EngineError> {
        let bytes = self.registry.charge_for(w, uses) + extra_bytes;
        self.wait.task_received(w, self.engine.now());
        self.total_tasks += 1;
        self.engine.submit(
            w,
            Task {
                tag,
                cost,
                bytes_in: bytes,
                run,
            },
        )
    }

    /// Blocks for the next completion (advancing virtual time), recording
    /// wait starts for finished workers.
    pub fn next_completion(&mut self) -> Option<Completion> {
        let c = self.engine.next();
        if let Some(Completion::Done(ref d)) = c {
            self.wait.result_submitted(d.worker, d.finished_at);
            self.total_bytes += d.bytes_in;
        }
        c
    }

    /// Non-blocking completion poll ("has the server received results as of
    /// now" — the simulator does not advance its clock).
    pub fn try_next_completion(&mut self) -> Option<Completion> {
        let c = self.engine.try_next();
        if let Some(Completion::Done(ref d)) = c {
            self.wait.result_submitted(d.worker, d.finished_at);
            self.total_bytes += d.bytes_in;
        }
        c
    }

    // ------------------------------------------------------------------
    // BSP stages and actions.
    // ------------------------------------------------------------------

    /// Runs one BSP stage: applies `f` to every partition of `rdd` (the
    /// task materializes the partition via lineage, then folds it with
    /// `f`), waits for all partitions — the synchronous barrier — and
    /// returns the per-partition results in partition order.
    ///
    /// `uses` lists broadcast variables the closure captures so their
    /// first-use transfer can be billed per worker. `cost_scale` multiplies
    /// the RDD cost hints (e.g. a gradient pass costs ~2 work units per
    /// nonzero).
    ///
    /// Tasks lost to worker failures are resubmitted to surviving workers
    /// (lineage makes this safe).
    ///
    /// # Panics
    /// Panics if every worker dies before the stage completes.
    pub fn run_stage<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        f: F,
    ) -> (Vec<R>, StageStats)
    where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + 'static,
    {
        let nparts = rdd.num_partitions();
        let n_workers = self.engine.workers();
        let start = self.engine.now();
        let mut stats = StageStats {
            start,
            end: start,
            bytes_shipped: 0,
            resubmissions: 0,
            last_finish: vec![None; n_workers],
        };
        let mut results: Vec<Option<R>> = (0..nparts).map(|_| None).collect();
        if nparts == 0 {
            return (Vec::new(), stats);
        }

        let f = Arc::new(f);
        let alive = self.alive_workers();
        assert!(!alive.is_empty(), "run_stage: no alive workers");
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_workers];
        for p in 0..nparts {
            queues[alive[p % alive.len()]].push_back(p);
        }
        let mut first_submitted = vec![false; n_workers];

        for w in 0..n_workers {
            self.dispatch_next(
                rdd,
                uses,
                cost_scale,
                &f,
                &mut queues,
                &mut first_submitted,
                w,
            );
        }

        let mut completed = 0;
        while completed < nparts {
            let c = self
                .engine
                .next()
                .expect("run_stage: engine starved before stage completion (all workers dead?)");
            match c {
                Completion::Done(d) => {
                    let part = d.tag as usize;
                    let out = d
                        .output
                        .downcast::<R>()
                        .expect("stage task returned unexpected result type");
                    debug_assert!(results[part].is_none(), "partition {part} completed twice");
                    results[part] = Some(*out);
                    completed += 1;
                    stats.bytes_shipped += d.bytes_in;
                    self.total_bytes += d.bytes_in;
                    stats.last_finish[d.worker] = Some(d.finished_at);
                    if queues[d.worker].is_empty() {
                        // Worker is done for this stage: it now waits for
                        // the barrier + next stage.
                        self.wait.result_submitted(d.worker, d.finished_at);
                    } else {
                        self.dispatch_next(
                            rdd,
                            uses,
                            cost_scale,
                            &f,
                            &mut queues,
                            &mut first_submitted,
                            d.worker,
                        );
                    }
                }
                Completion::Lost { worker, tag } => {
                    stats.resubmissions += 1;
                    let mut orphans: Vec<usize> = queues[worker].drain(..).collect();
                    orphans.push(tag as usize);
                    self.redistribute(
                        rdd,
                        uses,
                        cost_scale,
                        &f,
                        &mut queues,
                        &mut first_submitted,
                        orphans,
                    );
                }
                Completion::WorkerDown { worker } => {
                    let orphans: Vec<usize> = queues[worker].drain(..).collect();
                    self.redistribute(
                        rdd,
                        uses,
                        cost_scale,
                        &f,
                        &mut queues,
                        &mut first_submitted,
                        orphans,
                    );
                }
            }
        }
        stats.end = self.engine.now();
        (
            results
                .into_iter()
                .map(|r| r.expect("all partitions completed"))
                .collect(),
            stats,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_next<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        f: &Arc<F>,
        queues: &mut [VecDeque<usize>],
        first_submitted: &mut [bool],
        w: WorkerId,
    ) where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + 'static,
    {
        if !self.engine.available(w) {
            return;
        }
        let Some(part) = queues[w].pop_front() else {
            return;
        };
        let bytes = self.registry.charge_for(w, uses);
        self.total_tasks += 1;
        if !first_submitted[w] {
            // Receiving the first task of the stage closes the worker's
            // inter-stage wait.
            self.wait.task_received(w, self.engine.now());
            first_submitted[w] = true;
        }
        let ops = rdd.ops();
        let f = Arc::clone(f);
        let cost = rdd.cost_hint(part) * cost_scale;
        let run: TaskFn = Box::new(move |ctx| {
            let data = ops.compute(part);
            Box::new(f(ctx, data, part))
        });
        self.engine
            .submit(
                w,
                Task {
                    tag: part as u64,
                    cost,
                    bytes_in: bytes,
                    run,
                },
            )
            .expect("dispatch_next checked availability");
    }

    #[allow(clippy::too_many_arguments)]
    fn redistribute<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        f: &Arc<F>,
        queues: &mut [VecDeque<usize>],
        first_submitted: &mut [bool],
        orphans: Vec<usize>,
    ) where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + 'static,
    {
        let alive = self.alive_workers();
        assert!(!alive.is_empty(), "run_stage: all workers failed");
        for part in orphans {
            // Shortest queue among survivors.
            let w = *alive
                .iter()
                .min_by_key(|&&w| queues[w].len())
                .expect("alive workers nonempty");
            queues[w].push_back(part);
        }
        for &w in &alive {
            self.dispatch_next(rdd, uses, cost_scale, f, queues, first_submitted, w);
        }
    }

    /// Action: per-partition fold with `rf`, then a driver-side combine of
    /// the partial results (Spark's `reduce`). Returns `None` for an RDD
    /// with no elements.
    pub fn reduce<T: Data>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        rf: impl Fn(T, T) -> T + Send + Sync + 'static,
    ) -> (Option<T>, StageStats) {
        let rf = Arc::new(rf);
        let rf2 = Arc::clone(&rf);
        let (partials, stats) = self.run_stage(rdd, uses, cost_scale, move |_ctx, data, _part| {
            let mut it = data.into_iter();
            let first = it.next();
            first.map(|f0| it.fold(f0, |a, b| rf2(a, b)))
        });
        let combined = partials.into_iter().flatten().reduce(|a, b| rf(a, b));
        (combined, stats)
    }

    /// Action: Spark's `aggregate` — per-partition fold from `zero` with
    /// `seq_op`, then driver-side `comb_op`.
    pub fn aggregate<T: Data, U: Data>(
        &mut self,
        rdd: &Rdd<T>,
        uses: &[BcastCharge],
        cost_scale: f64,
        zero: U,
        seq_op: impl Fn(U, &T) -> U + Send + Sync + 'static,
        comb_op: impl Fn(U, U) -> U,
    ) -> (U, StageStats) {
        let z = zero.clone();
        let (partials, stats) = self.run_stage(rdd, uses, cost_scale, move |_ctx, data, _part| {
            data.iter().fold(z.clone(), &seq_op)
        });
        (partials.into_iter().fold(zero, comb_op), stats)
    }

    /// Action: materializes the whole RDD on the driver in partition order.
    pub fn collect<T: Data>(&mut self, rdd: &Rdd<T>) -> (Vec<T>, StageStats) {
        let (parts, stats) = self.run_stage(rdd, &[], 1.0, |_ctx, data, _part| data);
        (parts.into_iter().flatten().collect(), stats)
    }

    /// Action: element count.
    pub fn count<T: Data>(&mut self, rdd: &Rdd<T>) -> (usize, StageStats) {
        let (parts, stats) = self.run_stage(rdd, &[], 1.0, |_ctx, data, _part| data.len());
        (parts.into_iter().sum(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel, VDur};

    fn sim_driver(workers: usize, delay: DelayModel) -> Driver {
        Driver::sim(
            ClusterSpec::homogeneous(workers, delay)
                .with_comm(CommModel::free())
                .with_sched_overhead(VDur::ZERO),
        )
    }

    #[test]
    fn map_reduce_computes_sum() {
        let mut d = sim_driver(4, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2], vec![3, 4], vec![5], vec![]]);
        let (sum, stats) = d.reduce(&rdd.map(|x| x * 2), &[], 1.0, |a, b| a + b);
        assert_eq!(sum, Some(30));
        assert!(stats.end >= stats.start);
        assert_eq!(stats.resubmissions, 0);
    }

    #[test]
    fn aggregate_counts_elements() {
        let mut d = sim_driver(2, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2, 3], vec![4, 5]]);
        let (n, _) = d.aggregate(&rdd, &[], 1.0, 0usize, |acc, _| acc + 1, |a, b| a + b);
        assert_eq!(n, 5);
    }

    #[test]
    fn collect_preserves_partition_order() {
        let mut d = sim_driver(3, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2, 3], vec![4]]);
        let (all, _) = d.collect(&rdd);
        assert_eq!(all, vec![1, 2, 3, 4]);
        let (n, _) = d.count(&rdd);
        assert_eq!(n, 4);
    }

    #[test]
    fn more_partitions_than_workers_pipelines() {
        let mut d = sim_driver(2, DelayModel::None);
        let parts: Vec<Vec<i64>> = (0..8).map(|p| vec![p as i64]).collect();
        let rdd = Rdd::parallelize(parts);
        let (vals, _) = d.run_stage(&rdd, &[], 1.0, |_ctx, data, part| {
            assert_eq!(data[0], part as i64);
            data[0] * 10
        });
        assert_eq!(vals, (0..8).map(|p| p * 10).collect::<Vec<i64>>());
    }

    #[test]
    fn stage_barrier_waits_for_straggler() {
        // Worker 1 runs 2x slower: the stage end must match its finish.
        let mut d = sim_driver(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 1.0,
            },
        );
        let rdd = Rdd::parallelize_with_cost(vec![vec![0i64], vec![0i64]], vec![2e8, 2e8]);
        let (_, stats) = d.run_stage(&rdd, &[], 1.0, |_ctx, _data, _part| 0i64);
        let f0 = stats.last_finish[0].unwrap();
        let f1 = stats.last_finish[1].unwrap();
        assert_eq!(f0.as_micros(), 1_000_000);
        assert_eq!(f1.as_micros(), 2_000_000);
        assert_eq!(stats.end, f1);
    }

    #[test]
    fn wait_times_grow_with_straggler_intensity() {
        // Two stages: worker 0's wait between stages = straggler finish −
        // its own finish. With a 100% straggler the wait equals one full
        // task time.
        let mut d = sim_driver(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 1.0,
            },
        );
        let rdd = Rdd::parallelize_with_cost(vec![vec![0i64], vec![0i64]], vec![2e8, 2e8]);
        for _ in 0..2 {
            let _ = d.run_stage(&rdd, &[], 1.0, |_ctx, _data, _part| 0i64);
        }
        let w0 = d.wait_recorder().mean_for(0);
        let w1 = d.wait_recorder().mean_for(1);
        assert_eq!(w0.as_micros(), 1_000_000, "fast worker waits one task time");
        assert_eq!(w1.as_micros(), 0, "straggler never waits");
    }

    #[test]
    fn broadcast_charged_once_per_worker() {
        let spec = ClusterSpec::homogeneous(2, DelayModel::None)
            .with_comm(CommModel {
                per_msg: VDur::ZERO,
                ns_per_byte: 0.0,
            })
            .with_sched_overhead(VDur::ZERO);
        let mut d = Driver::sim(spec);
        let b = d.broadcast(vec![0.0f64; 100]);
        let rdd = Rdd::parallelize(vec![vec![1i64], vec![2]]);
        let uses = [b.charge()];
        let (_, s1) = d.run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0]);
        assert_eq!(s1.bytes_shipped, 2 * b.bytes());
        let (_, s2) = d.run_stage(&rdd, &uses, 1.0, |_ctx, data, _| data[0]);
        assert_eq!(s2.bytes_shipped, 0, "already shipped to both workers");
        assert_eq!(d.total_bytes_shipped(), 2 * b.bytes());
    }

    #[test]
    fn worker_failure_mid_stage_resubmits() {
        let mut d = sim_driver(2, DelayModel::None);
        // Two long tasks; worker 0 dies halfway through its task.
        let rdd = Rdd::parallelize_with_cost(vec![vec![10i64], vec![20i64]], vec![2e8, 2e8]);
        d.schedule_failure(0, VTime::from_micros(500_000));
        let (vals, stats) = d.run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0]);
        assert_eq!(vals, vec![10, 20], "lost partition recomputed via lineage");
        assert_eq!(stats.resubmissions, 1);
        assert_eq!(d.alive_workers(), vec![1]);
    }

    #[test]
    fn failure_of_idle_worker_redistributes_queue() {
        let mut d = sim_driver(2, DelayModel::None);
        let parts: Vec<Vec<i64>> = (0..6).map(|p| vec![p as i64]).collect();
        let rdd = Rdd::parallelize_with_cost(parts, vec![2e8; 6]);
        // Dies after its first task completes (at 1s the worker is between
        // tasks only momentarily; schedule just before second finishes).
        d.schedule_failure(0, VTime::from_micros(1_500_000));
        let (vals, stats) = d.run_stage(&rdd, &[], 1.0, |_ctx, data, _| data[0]);
        assert_eq!(vals, (0..6).collect::<Vec<i64>>());
        assert!(stats.resubmissions >= 1);
    }

    #[test]
    fn owner_assignment_is_stable_and_rebalances() {
        let d = sim_driver(4, DelayModel::None);
        assert_eq!(d.owner_of(0), 0);
        assert_eq!(d.owner_of(5), 1);
        assert_eq!(d.partitions_of(1, 8), vec![1, 5]);
        let mut d = d;
        d.kill_worker(1);
        // Drain the WorkerDown completion.
        while d.next_completion().is_some() {}
        let alive = d.alive_workers();
        assert_eq!(alive, vec![0, 2, 3]);
        assert_eq!(d.owner_of(1), 2);
    }

    #[test]
    fn threaded_stage_matches_sim_results() {
        let spec = ClusterSpec::homogeneous(3, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2], vec![3], vec![4, 5, 6]]);
        let mut sim = Driver::sim(spec.clone());
        let mut thr = Driver::threaded(spec, 0.0);
        let (a, _) = sim.reduce(&rdd.map(|x| x * x), &[], 1.0, |x, y| x + y);
        let (b, _) = thr.reduce(&rdd.map(|x| x * x), &[], 1.0, |x, y| x + y);
        assert_eq!(a, b);
        assert_eq!(a, Some(1 + 4 + 9 + 16 + 25 + 36));
    }

    #[test]
    fn empty_rdd_stage_is_noop() {
        let mut d = sim_driver(2, DelayModel::None);
        let rdd: Rdd<i64> = Rdd::parallelize(vec![]);
        let (vals, stats) = d.run_stage(&rdd, &[], 1.0, |_ctx, data, _| data.len());
        assert!(vals.is_empty());
        assert_eq!(stats.bytes_shipped, 0);
        let (sum, _) = d.reduce(&rdd, &[], 1.0, |a, b| a + b);
        assert_eq!(sum, None);
    }
}
