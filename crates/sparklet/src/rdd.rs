//! Resilient distributed datasets: lazy, partitioned, lineage-backed.
//!
//! An [`Rdd<T>`] is an immutable description of a partitioned collection.
//! Transformations (`map`, `filter`, `sample`) build new RDDs that remember
//! their parent — the *lineage*. Nothing executes until the driver runs a
//! stage; a task materializes its partition by recursively evaluating the
//! lineage, which is why a lost partition can be recomputed on any surviving
//! worker (Spark's fault-tolerance story, preserved by ASYNC and therefore
//! by this reproduction).

use std::sync::{Arc, OnceLock};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Marker for element types storable in an RDD.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Internal evaluation interface of one lineage node.
pub trait RddOps<T: Data>: Send + Sync {
    /// Number of partitions (constant along a lineage chain).
    fn num_partitions(&self) -> usize;

    /// Materializes partition `part`.
    fn compute(&self, part: usize) -> Vec<T>;

    /// Abstract compute cost of one full pass over partition `part`
    /// (defaults to element count; data sources override with nonzeros).
    fn cost_hint(&self, part: usize) -> f64;
}

/// A handle to a lineage node. Cheap to clone.
pub struct Rdd<T: Data> {
    ops: Arc<dyn RddOps<T>>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Self {
            ops: Arc::clone(&self.ops),
        }
    }
}

impl<T: Data> Rdd<T> {
    /// Wraps a custom lineage node.
    pub fn from_ops(ops: Arc<dyn RddOps<T>>) -> Self {
        Self { ops }
    }

    /// Source RDD from explicit partitions; cost hints default to element
    /// counts.
    pub fn parallelize(parts: Vec<Vec<T>>) -> Self {
        let costs = parts.iter().map(|p| p.len() as f64).collect();
        Self::parallelize_with_cost(parts, costs)
    }

    /// Source RDD with explicit per-partition cost hints (e.g. nonzeros for
    /// data blocks).
    ///
    /// # Panics
    /// Panics if `parts.len() != costs.len()`.
    pub fn parallelize_with_cost(parts: Vec<Vec<T>>, costs: Vec<f64>) -> Self {
        assert_eq!(
            parts.len(),
            costs.len(),
            "parallelize: parts/costs mismatch"
        );
        Self {
            ops: Arc::new(SourceRdd {
                parts: parts.into_iter().map(Arc::new).collect(),
                costs,
            }),
        }
    }

    /// Element-wise transformation.
    pub fn map<U: Data>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Rdd<U> {
        Rdd {
            ops: Arc::new(MapRdd {
                parent: Arc::clone(&self.ops),
                f: Arc::new(f),
            }),
        }
    }

    /// Keeps elements satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        Rdd {
            ops: Arc::new(FilterRdd {
                parent: Arc::clone(&self.ops),
                pred: Arc::new(pred),
            }),
        }
    }

    /// Bernoulli sampling: keeps each element with probability `fraction`
    /// (Spark's `RDD.sample(withReplacement = false)`). Deterministic in
    /// `(seed, partition)`.
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        Rdd {
            ops: Arc::new(SampleRdd {
                parent: Arc::clone(&self.ops),
                fraction: fraction.clamp(0.0, 1.0),
                seed,
            }),
        }
    }

    /// Caches materialized partitions in memory (Spark `persist`): the
    /// first evaluation computes the lineage, later evaluations reuse it.
    pub fn cached(&self) -> Rdd<T> {
        let n = self.num_partitions();
        Rdd {
            ops: Arc::new(CachedRdd {
                parent: Arc::clone(&self.ops),
                slots: (0..n).map(|_| OnceLock::new()).collect(),
            }),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.ops.num_partitions()
    }

    /// Materializes partition `part` (driver-side evaluation; workers do
    /// the same inside tasks).
    pub fn compute(&self, part: usize) -> Vec<T> {
        self.ops.compute(part)
    }

    /// Cost hint for partition `part`.
    pub fn cost_hint(&self, part: usize) -> f64 {
        self.ops.cost_hint(part)
    }

    /// Shares the underlying lineage node for task closures — used by the
    /// driver's stage machinery and by engine layers that build their own
    /// tasks (the async layer's `ASYNCreduce` submits partition
    /// computations directly through `Driver::submit_raw`).
    pub fn ops(&self) -> Arc<dyn RddOps<T>> {
        Arc::clone(&self.ops)
    }
}

struct SourceRdd<T: Data> {
    parts: Vec<Arc<Vec<T>>>,
    costs: Vec<f64>,
}

impl<T: Data> RddOps<T> for SourceRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }
    fn compute(&self, part: usize) -> Vec<T> {
        self.parts[part].as_ref().clone()
    }
    fn cost_hint(&self, part: usize) -> f64 {
        self.costs[part]
    }
}

struct MapRdd<T: Data, U: Data> {
    parent: Arc<dyn RddOps<T>>,
    f: Arc<dyn Fn(&T) -> U + Send + Sync>,
}

impl<T: Data, U: Data> RddOps<U> for MapRdd<T, U> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, part: usize) -> Vec<U> {
        self.parent
            .compute(part)
            .iter()
            .map(|t| (self.f)(t))
            .collect()
    }
    fn cost_hint(&self, part: usize) -> f64 {
        self.parent.cost_hint(part)
    }
}

struct FilterRdd<T: Data> {
    parent: Arc<dyn RddOps<T>>,
    pred: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> RddOps<T> for FilterRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, part: usize) -> Vec<T> {
        self.parent
            .compute(part)
            .into_iter()
            .filter(|t| (self.pred)(t))
            .collect()
    }
    fn cost_hint(&self, part: usize) -> f64 {
        self.parent.cost_hint(part)
    }
}

struct SampleRdd<T: Data> {
    parent: Arc<dyn RddOps<T>>,
    fraction: f64,
    seed: u64,
}

impl<T: Data> RddOps<T> for SampleRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, part: usize) -> Vec<T> {
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (part as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.parent
            .compute(part)
            .into_iter()
            .filter(|_| rng.gen::<f64>() < self.fraction)
            .collect()
    }
    fn cost_hint(&self, part: usize) -> f64 {
        self.parent.cost_hint(part) * self.fraction
    }
}

struct CachedRdd<T: Data> {
    parent: Arc<dyn RddOps<T>>,
    slots: Vec<OnceLock<Vec<T>>>,
}

impl<T: Data> RddOps<T> for CachedRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, part: usize) -> Vec<T> {
        self.slots[part]
            .get_or_init(|| self.parent.compute(part))
            .clone()
    }
    fn cost_hint(&self, part: usize) -> f64 {
        self.parent.cost_hint(part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn src() -> Rdd<i64> {
        Rdd::parallelize(vec![vec![1, 2, 3], vec![4, 5], vec![], vec![6]])
    }

    #[test]
    fn parallelize_partitions_and_costs() {
        let r = src();
        assert_eq!(r.num_partitions(), 4);
        assert_eq!(r.compute(0), vec![1, 2, 3]);
        assert_eq!(r.compute(2), Vec::<i64>::new());
        assert_eq!(r.cost_hint(0), 3.0);
        assert_eq!(r.cost_hint(3), 1.0);
    }

    #[test]
    fn map_and_filter_compose_lazily() {
        let r = src().map(|x| x * 10).filter(|x| *x >= 30);
        assert_eq!(r.compute(0), vec![30]);
        assert_eq!(r.compute(1), vec![40, 50]);
        assert_eq!(r.num_partitions(), 4);
    }

    #[test]
    fn sample_is_deterministic_and_fraction_scales_cost() {
        let base = Rdd::parallelize(vec![(0..1000).collect::<Vec<i64>>()]);
        let s1 = base.sample(0.3, 99);
        let s2 = base.sample(0.3, 99);
        assert_eq!(s1.compute(0), s2.compute(0));
        let n = s1.compute(0).len();
        assert!(n > 200 && n < 400, "sampled {n} of 1000 at 30%");
        assert!((s1.cost_hint(0) - 300.0).abs() < 1e-9);
        let s3 = base.sample(0.3, 100);
        assert_ne!(s1.compute(0), s3.compute(0));
    }

    #[test]
    fn cached_computes_parent_once() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&calls);
        let r = Rdd::parallelize(vec![vec![1, 2], vec![3]])
            .map(move |x| {
                c2.fetch_add(1, Ordering::SeqCst);
                x + 1
            })
            .cached();
        assert_eq!(r.compute(0), vec![2, 3]);
        assert_eq!(r.compute(0), vec![2, 3]);
        assert_eq!(r.compute(1), vec![4]);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            3,
            "each element mapped exactly once"
        );
    }

    #[test]
    fn lineage_recompute_is_pure() {
        // Recomputing any partition twice yields identical results — the
        // property fault-tolerant resubmission relies on.
        let r = src().map(|x| x * x).sample(0.8, 7);
        for p in 0..r.num_partitions() {
            assert_eq!(r.compute(p), r.compute(p));
        }
    }
}
