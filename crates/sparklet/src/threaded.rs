//! Real-thread engine: one OS thread per worker.
//!
//! Gives the same [`Engine`] semantics as the simulator but with genuine
//! concurrency: tasks run on their worker's thread, straggler delays are
//! injected as real sleeps, and completion order is whatever the operating
//! system produces. Useful for validating that algorithm implementations
//! do not depend on the simulator's determinism, and as the "it actually
//! runs in parallel" backend for examples.
//!
//! Time reporting: [`Engine::now`] returns real elapsed time since engine
//! construction, as a [`VTime`]. The modelled cost of a task is converted
//! to a real sleep via `time_scale` (`1.0` = model microseconds sleep as
//! real microseconds; tests use small scales to stay fast). The straggler
//! factor additionally stretches the *measured* compute time, so "a 100 %
//! delay means the worker executes jobs at half speed" holds for real work
//! too.

use std::collections::VecDeque;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use async_cluster::straggler::DelayAssignment;
use async_cluster::{ClusterSpec, CommModel, VTime, WorkerId, WorkerProfile};

use crate::engine::{Completion, Engine, EngineError, Task, TaskDone, TaskFn, TaskOutput};
use crate::worker::WorkerCtx;

enum Msg {
    Run {
        tag: u64,
        cost: f64,
        bytes_in: u64,
        run: TaskFn,
        seq: u64,
    },
    Stop,
}

struct WireDone {
    worker: WorkerId,
    /// The worker incarnation that produced this result; results from a
    /// pre-failure life are dropped (the epoch guard that makes revival
    /// safe — a revived executor can never surface a stale-epoch result).
    epoch: u64,
    tag: u64,
    output: TaskOutput,
    bytes_in: u64,
}

/// A membership change scheduled against elapsed engine time.
enum PendingChaos {
    Fail(WorkerId),
    Revive(WorkerId),
    Join,
}

/// The threaded engine. See the module docs.
pub struct ThreadedEngine {
    spec: ClusterSpec,
    /// Shared straggler assignment: one allocation for the whole engine
    /// lifetime; worker (re)spawns clone the `Arc`, not the tables.
    assignment: Arc<DelayAssignment>,
    /// Shared communication model, likewise cloned by pointer per spawn.
    comm: Arc<CommModel>,
    time_scale: f64,
    start: Instant,
    txs: Vec<Sender<Msg>>,
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
    results_tx: Sender<WireDone>,
    results_rx: Receiver<WireDone>,
    busy: Vec<bool>,
    dead: Vec<bool>,
    /// Worker incarnation counters; bumped on kill so orphaned results and
    /// a revived executor can never be confused.
    epoch: Vec<u64>,
    inflight_tag: Vec<Option<u64>>,
    issued_at: Vec<VTime>,
    task_seq: Vec<u64>,
    pending: usize,
    /// Failure/revival notifications waiting to be handed out by `next`.
    queued: VecDeque<Completion>,
    /// Scheduled membership events, sorted by time; applied when elapsed
    /// real time passes them (checked at submit/next/try_next boundaries).
    chaos: VecDeque<(VTime, PendingChaos)>,
}

impl ThreadedEngine {
    /// Spawns one worker thread per cluster worker. `time_scale` converts
    /// modelled task time into real sleep time (e.g. `0.01` sleeps 10 ms
    /// for every modelled second).
    ///
    /// # Panics
    /// Panics if the spec fails validation or `time_scale` is negative.
    pub fn new(spec: ClusterSpec, time_scale: f64) -> Self {
        spec.validate().expect("invalid cluster spec");
        assert!(time_scale >= 0.0, "time_scale must be nonnegative");
        let n = spec.workers;
        let assignment = Arc::new(spec.delay.assign(n));
        let comm = Arc::new(spec.comm.clone());
        let (res_tx, res_rx) = unbounded::<WireDone>();
        let mut engine = Self {
            spec,
            assignment,
            comm,
            time_scale,
            start: Instant::now(),
            txs: Vec::with_capacity(n),
            handles: Vec::with_capacity(n),
            results_tx: res_tx,
            results_rx: res_rx,
            busy: vec![false; n],
            dead: vec![false; n],
            epoch: vec![0; n],
            inflight_tag: vec![None; n],
            issued_at: vec![VTime::ZERO; n],
            task_seq: vec![0; n],
            pending: 0,
            queued: VecDeque::new(),
            chaos: VecDeque::new(),
        };
        for w in 0..n {
            let tx = engine.spawn_worker(w);
            engine.txs.push(tx);
        }
        engine
    }

    /// Spawns (or respawns) the thread for worker `w` at its current epoch
    /// and returns its task channel. Callers store the sender in `txs`.
    fn spawn_worker(&mut self, w: WorkerId) -> Sender<Msg> {
        let (tx, rx) = unbounded::<Msg>();
        let res_tx = self.results_tx.clone();
        // The comm/assignment tables were allocated once at engine
        // construction and are pointer-cloned here; the (tiny) profile is
        // wrapped in an `Arc` once per worker incarnation, reading
        // straight from the spec so there is no second profile list to
        // keep in sync.
        let profile = Arc::new(self.spec.profiles[w].clone());
        let comm = Arc::clone(&self.comm);
        let assignment = Arc::clone(&self.assignment);
        let time_scale = self.time_scale;
        let epoch = self.epoch[w];
        let handle = std::thread::Builder::new()
            .name(format!("sparklet-worker-{w}-e{epoch}"))
            .spawn(move || worker_loop(w, epoch, rx, res_tx, profile, comm, assignment, time_scale))
            .expect("failed to spawn worker thread");
        if w < self.handles.len() {
            // Replacing a stopped incarnation: join the old thread first so
            // handles never leak.
            if let Some(old) = self.handles[w].replace(handle) {
                let _ = old.join();
            }
        } else {
            self.handles.push(Some(handle));
        }
        tx
    }

    /// Applies scheduled membership events whose instant has passed,
    /// pushing their notifications onto the queued completions.
    fn apply_due_chaos(&mut self) {
        while let Some(&(at, _)) = self.chaos.front() {
            if at > self.elapsed() {
                break;
            }
            let (_, ev) = self.chaos.pop_front().expect("checked front");
            match ev {
                PendingChaos::Fail(w) => self.kill_worker(w),
                PendingChaos::Revive(w) => {
                    let _ = self.revive_worker(w); // no-op if already alive
                }
                PendingChaos::Join => {
                    self.add_worker();
                }
            }
        }
    }

    /// Inserts a scheduled event keeping the list time-sorted (stable).
    fn push_chaos(&mut self, at: VTime, ev: PendingChaos) {
        let pos = self.chaos.iter().position(|&(t, _)| t > at);
        match pos {
            Some(i) => self.chaos.insert(i, (at, ev)),
            None => self.chaos.push_back((at, ev)),
        }
    }

    fn elapsed(&self) -> VTime {
        VTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn accept(&mut self, d: WireDone) -> Option<Completion> {
        if self.dead[d.worker] || d.epoch != self.epoch[d.worker] {
            // Orphaned result from a killed (possibly since-revived)
            // incarnation: its loss was already reported.
            return None;
        }
        let finished_at = self.elapsed();
        self.busy[d.worker] = false;
        self.inflight_tag[d.worker] = None;
        self.pending -= 1;
        let issued_at = self.issued_at[d.worker];
        Some(Completion::Done(TaskDone {
            worker: d.worker,
            tag: d.tag,
            output: d.output,
            issued_at,
            finished_at,
            service_time: finished_at.saturating_since(issued_at),
            bytes_in: d.bytes_in,
        }))
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: WorkerId,
    epoch: u64,
    rx: Receiver<Msg>,
    res_tx: Sender<WireDone>,
    profile: Arc<WorkerProfile>,
    comm: Arc<CommModel>,
    assignment: Arc<DelayAssignment>,
    time_scale: f64,
) {
    let mut ctx = WorkerCtx::new(w);
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Stop => break,
            Msg::Run {
                tag,
                cost,
                bytes_in,
                run,
                seq,
            } => {
                let t0 = Instant::now();
                let output = run(&mut ctx);
                let measured = t0.elapsed();
                let (extra_bytes, extra_time) = ctx.take_charges();
                let total_bytes = bytes_in + extra_bytes;
                let factor = assignment.factor(w, seq);
                // Modelled time (cost + communication + explicit charges),
                // scaled into real time, all stretched by the straggler
                // factor; plus the stretch of the real compute time.
                let modelled =
                    profile.exec_time(cost) + comm.transfer_time(total_bytes) + extra_time;
                let sleep_us = modelled.as_micros() as f64 * time_scale * factor
                    + measured.as_secs_f64() * 1e6 * (factor - 1.0).max(0.0);
                if sleep_us >= 1.0 {
                    std::thread::sleep(Duration::from_micros(sleep_us as u64));
                }
                if res_tx
                    .send(WireDone {
                        worker: w,
                        epoch,
                        tag,
                        output,
                        bytes_in: total_bytes,
                    })
                    .is_err()
                {
                    break; // engine dropped
                }
            }
        }
    }
}

impl Engine for ThreadedEngine {
    fn workers(&self) -> usize {
        self.spec.workers
    }

    fn now(&self) -> VTime {
        self.elapsed()
    }

    fn available(&self, w: WorkerId) -> bool {
        !self.dead[w] && !self.busy[w]
    }

    fn alive(&self, w: WorkerId) -> bool {
        !self.dead[w]
    }

    fn submit(&mut self, w: WorkerId, task: Task) -> Result<(), EngineError> {
        if self.dead[w] {
            return Err(EngineError::WorkerDead(w));
        }
        if self.busy[w] {
            return Err(EngineError::WorkerBusy(w));
        }
        let seq = self.task_seq[w];
        self.task_seq[w] += 1;
        self.busy[w] = true;
        self.inflight_tag[w] = Some(task.tag);
        self.issued_at[w] = self.elapsed();
        self.pending += 1;
        self.txs[w]
            .send(Msg::Run {
                tag: task.tag,
                cost: task.cost,
                bytes_in: task.bytes_in,
                run: task.run,
                seq,
            })
            .expect("worker thread is alive while not marked dead");
        Ok(())
    }

    fn next(&mut self) -> Option<Completion> {
        loop {
            self.apply_due_chaos();
            if let Some(c) = self.queued.pop_front() {
                return Some(c);
            }
            if self.pending == 0 {
                // Nothing in flight: return rather than block real time
                // until a *future* scheduled membership event (a drain at
                // run end must not stall through the chaos horizon). Due
                // events were already applied above; remaining ones apply
                // at later submit/next/try_next calls once their instant
                // passes. This is the one place the threaded backend
                // diverges from the simulator, which jumps its virtual
                // clock to such events for free.
                return None;
            }
            // Bounded wait so due membership events apply even while a
            // straggler's result is pending.
            match self.results_rx.recv_timeout(Duration::from_micros(500)) {
                Ok(d) => {
                    if let Some(c) = self.accept(d) {
                        return Some(c);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn try_next(&mut self) -> Option<Completion> {
        loop {
            self.apply_due_chaos();
            if let Some(c) = self.queued.pop_front() {
                return Some(c);
            }
            match self.results_rx.try_recv() {
                Ok(d) => {
                    if let Some(c) = self.accept(d) {
                        return Some(c);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn kill_worker(&mut self, w: WorkerId) {
        if self.dead[w] {
            return;
        }
        self.dead[w] = true;
        // Bump the incarnation: any result the dying thread still delivers
        // fails the epoch check in `accept`, even after a later revival.
        self.epoch[w] += 1;
        let _ = self.txs[w].send(Msg::Stop);
        if self.busy[w] {
            self.busy[w] = false;
            self.pending -= 1;
            let tag = self.inflight_tag[w].take().expect("busy worker has a tag");
            self.queued.push_back(Completion::Lost { worker: w, tag });
        } else {
            self.queued.push_back(Completion::WorkerDown { worker: w });
        }
    }

    fn revive_worker(&mut self, w: WorkerId) -> Result<(), EngineError> {
        if !self.dead[w] {
            return Err(EngineError::WorkerAlive(w));
        }
        self.dead[w] = false;
        self.busy[w] = false;
        self.inflight_tag[w] = None;
        // A fresh incarnation: new thread, empty worker cache.
        let tx = self.spawn_worker(w);
        self.txs[w] = tx;
        self.queued.push_back(Completion::WorkerUp { worker: w });
        Ok(())
    }

    fn add_worker(&mut self) -> WorkerId {
        let w = self.spec.workers;
        self.spec.workers += 1;
        self.spec.profiles.push(WorkerProfile::default_speed());
        self.busy.push(false);
        self.dead.push(false);
        self.epoch.push(0);
        self.inflight_tag.push(None);
        self.issued_at.push(VTime::ZERO);
        self.task_seq.push(0);
        let tx = self.spawn_worker(w);
        self.txs.push(tx);
        self.queued.push_back(Completion::WorkerUp { worker: w });
        w
    }

    fn schedule_failure(&mut self, w: WorkerId, at: VTime) {
        self.push_chaos(at, PendingChaos::Fail(w));
    }

    fn schedule_revival(&mut self, w: WorkerId, at: VTime) {
        self.push_chaos(at, PendingChaos::Revive(w));
    }

    fn schedule_join(&mut self, at: VTime) {
        self.push_chaos(at, PendingChaos::Join);
    }

    fn next_event_at(&self) -> Option<VTime> {
        self.chaos.front().map(|&(at, _)| at)
    }
}

impl Drop for ThreadedEngine {
    fn drop(&mut self) {
        for (w, tx) in self.txs.iter().enumerate() {
            if !self.dead[w] {
                let _ = tx.send(Msg::Stop);
            }
        }
        for h in self.handles.iter_mut() {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel, VDur};

    fn spec(workers: usize, delay: DelayModel) -> ClusterSpec {
        ClusterSpec::homogeneous(workers, delay)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO)
    }

    fn task(tag: u64, value: i64) -> Task {
        Task {
            tag,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(move |_| Box::new(value)),
        }
    }

    #[test]
    fn runs_tasks_and_returns_results() {
        let mut e = ThreadedEngine::new(spec(4, DelayModel::None), 0.0);
        for w in 0..4 {
            e.submit(w, task(w as u64, w as i64 * 10)).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        while let Some(Completion::Done(d)) = e.next() {
            seen.insert(d.tag, *d.output.downcast::<i64>().unwrap());
        }
        assert_eq!(seen.len(), 4);
        for w in 0..4u64 {
            assert_eq!(seen[&w], w as i64 * 10);
        }
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn tasks_actually_run_concurrently() {
        // Two tasks that each sleep ~30 ms must finish in well under 60 ms
        // of wall time if they truly overlap.
        let mut e = ThreadedEngine::new(spec(2, DelayModel::None), 0.0);
        let t0 = Instant::now();
        for w in 0..2 {
            e.submit(
                w,
                Task {
                    tag: w as u64,
                    cost: 0.0,
                    bytes_in: 0,
                    run: Box::new(|_| {
                        std::thread::sleep(Duration::from_millis(30));
                        Box::new(())
                    }),
                },
            )
            .unwrap();
        }
        let mut n = 0;
        while let Some(Completion::Done(_)) = e.next() {
            n += 1;
        }
        assert_eq!(n, 2);
        assert!(
            t0.elapsed() < Duration::from_millis(55),
            "took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn straggler_sleep_injection_slows_target() {
        // Worker 1 at 100% delay on a modelled 20 ms task; worker 0 fast.
        let delay = DelayModel::ControlledDelay {
            worker: 1,
            intensity: 1.0,
        };
        let mut sp = spec(2, delay);
        sp.profiles = vec![async_cluster::WorkerProfile { speed: 1e6 }; 2];
        let mut e = ThreadedEngine::new(sp, 1.0);
        // cost 20_000 units at 1e6 units/s = 20 ms modelled.
        for w in 0..2 {
            e.submit(
                w,
                Task {
                    tag: w as u64,
                    cost: 20_000.0,
                    bytes_in: 0,
                    run: Box::new(|_| Box::new(())),
                },
            )
            .unwrap();
        }
        let first = match e.next() {
            Some(Completion::Done(d)) => d.tag,
            _ => panic!(),
        };
        assert_eq!(first, 0, "non-straggler should finish first");
        let second = match e.next() {
            Some(Completion::Done(d)) => d,
            _ => panic!(),
        };
        assert_eq!(second.tag, 1);
        assert!(
            second.service_time >= VDur::from_micros(35_000),
            "straggler too fast: {}",
            second.service_time
        );
    }

    #[test]
    fn kill_worker_reports_lost_task() {
        let mut e = ThreadedEngine::new(spec(2, DelayModel::None), 0.0);
        e.submit(
            0,
            Task {
                tag: 9,
                cost: 0.0,
                bytes_in: 0,
                run: Box::new(|_| {
                    std::thread::sleep(Duration::from_millis(20));
                    Box::new(())
                }),
            },
        )
        .unwrap();
        e.kill_worker(0);
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 9 }) => {}
            _ => panic!("expected Lost"),
        }
        assert!(!e.alive(0));
        assert!(e.submit(0, task(0, 0)).is_err());
        // The orphaned real result must not surface.
        std::thread::sleep(Duration::from_millis(40));
        assert!(e.try_next().is_none());
        assert!(e.next().is_none());
    }

    #[test]
    fn revival_runs_fresh_tasks_and_drops_orphans() {
        let mut e = ThreadedEngine::new(spec(2, DelayModel::None), 0.0);
        // A slow task whose real result arrives after the kill+revival.
        e.submit(
            0,
            Task {
                tag: 1,
                cost: 0.0,
                bytes_in: 0,
                run: Box::new(|_| {
                    std::thread::sleep(Duration::from_millis(25));
                    Box::new(0i64)
                }),
            },
        )
        .unwrap();
        e.kill_worker(0);
        assert!(matches!(
            e.next(),
            Some(Completion::Lost { worker: 0, tag: 1 })
        ));
        assert_eq!(e.revive_worker(1).unwrap_err(), EngineError::WorkerAlive(1));
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        assert!(e.alive(0) && e.available(0));
        // Give the orphaned pre-kill result time to land, then submit a
        // fresh task: only the fresh (current-epoch) result may surface.
        std::thread::sleep(Duration::from_millis(40));
        e.submit(0, task(2, 42)).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => {
                assert_eq!(d.tag, 2, "stale-epoch result surfaced after revival");
                assert_eq!(*d.output.downcast::<i64>().unwrap(), 42);
            }
            _ => panic!("expected the post-revival task"),
        }
        assert!(e.next().is_none());
    }

    #[test]
    fn add_worker_joins_and_runs_tasks() {
        let mut e = ThreadedEngine::new(spec(1, DelayModel::None), 0.0);
        let w = e.add_worker();
        assert_eq!(w, 1);
        assert_eq!(e.workers(), 2);
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        e.submit(1, task(7, 70)).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!((d.worker, d.tag), (1, 7)),
            _ => panic!("expected a result from the joined worker"),
        }
    }

    #[test]
    fn scheduled_chaos_applies_on_elapsed_time() {
        let mut e = ThreadedEngine::new(spec(2, DelayModel::None), 0.0);
        e.schedule_failure(1, VTime::from_micros(1_000));
        e.schedule_revival(1, VTime::from_micros(5_000));
        e.schedule_join(VTime::from_micros(8_000));
        // next() never blocks on *future* chaos with nothing in flight;
        // once the instants pass, due events apply in order at the next
        // poll.
        std::thread::sleep(Duration::from_millis(10));
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 1 })
        ));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 2 })));
        assert!(e.next().is_none());
        assert_eq!(e.workers(), 3);
        assert!((0..3).all(|w| e.alive(w)));
    }

    #[test]
    fn drain_does_not_block_on_future_chaos() {
        let mut e = ThreadedEngine::new(spec(1, DelayModel::None), 0.0);
        // An event far in the future must not stall an idle drain.
        e.schedule_join(VTime::from_micros(60_000_000));
        let t0 = Instant::now();
        assert!(e.next().is_none());
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "next() blocked toward the chaos horizon: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn busy_rejection() {
        let mut e = ThreadedEngine::new(spec(1, DelayModel::None), 0.0);
        e.submit(
            0,
            Task {
                tag: 0,
                cost: 0.0,
                bytes_in: 0,
                run: Box::new(|_| {
                    std::thread::sleep(Duration::from_millis(10));
                    Box::new(())
                }),
            },
        )
        .unwrap();
        assert_eq!(
            e.submit(0, task(1, 1)).unwrap_err(),
            EngineError::WorkerBusy(0)
        );
        while e.next().is_some() {}
    }
}
