//! # sparklet
//!
//! A from-scratch, in-process reimplementation of the slice of Apache Spark
//! that the ASYNC paper builds on. Spark itself is JVM-scale machinery; the
//! paper's contribution only relies on a small, well-defined core, all of
//! which is implemented (not mocked) here:
//!
//! * **Partitioned RDDs with lineage** ([`rdd`]): lazy `map` / `filter` /
//!   `sample` transformations over immutable partitioned collections; any
//!   partition can be recomputed from its lineage on any worker, which is
//!   what makes fault tolerance work.
//! * **Execution engines** ([`engine`], [`sim`], [`threaded`], [`remote`]):
//!   a cluster of workers that run opaque tasks. The *simulated* engine
//!   executes task closures eagerly and schedules their completions on a
//!   deterministic virtual clock (discrete-event style) so experiments are
//!   exactly reproducible; the *threaded* engine runs one OS thread per
//!   worker with real queues and real sleeps for injected straggler
//!   delays; the *remote* engine runs one OS *process* per worker over
//!   TCP with length-prefixed [`frame`]s. [`builder::EngineBuilder`]
//!   constructs any of them behind one API.
//! * **Broadcast variables** ([`broadcast`]): Spark-style immutable
//!   broadcasts, shipped to each worker at most once, with byte accounting —
//!   the measurement that motivates the paper's `ASYNCbroadcaster`.
//! * **A BSP driver** ([`driver`]): stages of one task per partition with a
//!   full barrier, per-worker wait-time bookkeeping, straggler-aware
//!   scheduling of queued partitions, and resubmission of tasks lost to
//!   worker failures.
//!
//! The asynchronous layer of the paper (`ASYNCcontext` and friends) lives in
//! the `async-core` crate and drives this engine through
//! [`driver::Driver`]'s low-level submission API.

pub mod broadcast;
pub mod builder;
pub mod driver;
pub mod engine;
pub mod fault;
pub mod frame;
pub mod payload;
pub mod rdd;
pub mod remote;
pub mod sim;
pub mod threaded;
pub mod worker;

pub use broadcast::{BcastCharge, Broadcast};
pub use builder::{EngineBuilder, EngineKind};
pub use driver::{Driver, StageStats, SuperviseCfg};
pub use engine::{Completion, Engine, EngineError, Task, TaskDone, TaskFn, WireTask};
pub use fault::{FaultAction, FaultDir, FaultInjector, FaultPlan};
pub use payload::{DecodeError, Payload};
pub use rdd::Rdd;
pub use remote::{RemoteConfig, RemoteEngine, RoutineRegistry, WorkerOpts};
pub use worker::WorkerCtx;

/// Identifies one worker, dense from 0 (re-exported from async-cluster).
pub type WorkerId = async_cluster::WorkerId;
