//! Per-worker executor state.
//!
//! Each worker owns a [`WorkerCtx`]: a versioned value cache (the local
//! store behind the paper's `ASYNCbroadcast` — workers keep previously
//! received model parameters so the server can ship only IDs) and transfer
//! accounting that task closures use to charge on-demand fetches to the
//! task's duration.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use async_cluster::{VDur, WorkerId};

/// A cached, type-erased, shareable value.
pub type CachedValue = Arc<dyn Any + Send + Sync>;

/// Counters describing a worker's cache behaviour — exposed so experiments
/// can report history-broadcast hit rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits (value already local — only an ID was shipped).
    pub hits: u64,
    /// Cache misses (value fetched from the server on demand).
    pub misses: u64,
    /// Total bytes fetched on misses.
    pub bytes_fetched: u64,
}

/// Mutable per-worker state handed to every task closure.
pub struct WorkerCtx {
    worker: WorkerId,
    cache: HashMap<(u64, u64), CachedValue>,
    stats: CacheStats,
    pending_bytes: u64,
    pending_time: VDur,
}

impl WorkerCtx {
    /// A fresh context for `worker`.
    pub fn new(worker: WorkerId) -> Self {
        Self {
            worker,
            cache: HashMap::new(),
            stats: CacheStats::default(),
            pending_bytes: 0,
            pending_time: VDur::ZERO,
        }
    }

    /// This worker's id.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Looks up a cached value by `(broadcast id, version)`; counts a hit.
    pub fn cache_get(&mut self, key: (u64, u64)) -> Option<CachedValue> {
        let v = self.cache.get(&key).cloned();
        if v.is_some() {
            self.stats.hits += 1;
        }
        v
    }

    /// Inserts a value fetched from the server, charging `bytes` of
    /// transfer to the currently running task; counts a miss.
    pub fn cache_put_fetched(&mut self, key: (u64, u64), value: CachedValue, bytes: u64) {
        self.stats.misses += 1;
        self.stats.bytes_fetched += bytes;
        self.pending_bytes += bytes;
        self.cache.insert(key, value);
    }

    /// Inserts without charging (e.g. a value the worker itself produced).
    pub fn cache_put_local(&mut self, key: (u64, u64), value: CachedValue) {
        self.cache.insert(key, value);
    }

    /// Removes and returns a cached entry. Incremental broadcast resolution
    /// takes the worker's newest cached model out of the cache, patches it
    /// forward (in place when uniquely owned), and reinserts it at the new
    /// version's key.
    pub fn cache_remove(&mut self, key: (u64, u64)) -> Option<CachedValue> {
        self.cache.remove(&key)
    }

    /// The newest cached version of `bcast_id`, if any — the base an
    /// incremental fetch patches forward from.
    pub fn cache_newest_version(&self, bcast_id: u64) -> Option<u64> {
        self.cache
            .keys()
            .filter(|&&(b, _)| b == bcast_id)
            .map(|&(_, v)| v)
            .max()
    }

    /// Evicts all versions of `bcast_id` strictly below `min_version` —
    /// called when the server's reference counts show old history can no
    /// longer be requested.
    pub fn cache_evict_below(&mut self, bcast_id: u64, min_version: u64) {
        self.cache
            .retain(|&(b, v), _| b != bcast_id || v >= min_version);
    }

    /// Number of cached entries (all broadcasts).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Charges additional transfer `bytes` to the running task without
    /// touching the cache (e.g. side data pulled from the server).
    pub fn charge_bytes(&mut self, bytes: u64) {
        self.pending_bytes += bytes;
    }

    /// Charges additional virtual `time` to the running task (e.g. modelled
    /// disk reads).
    pub fn charge_time(&mut self, time: VDur) {
        self.pending_time += time;
    }

    /// Cache behaviour counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Drains the pending per-task charges; called by the engine after each
    /// task to fold them into the task's duration.
    pub fn take_charges(&mut self) -> (u64, VDur) {
        let out = (self.pending_bytes, self.pending_time);
        self.pending_bytes = 0;
        self.pending_time = VDur::ZERO;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_and_miss_counting() {
        let mut ctx = WorkerCtx::new(3);
        assert_eq!(ctx.worker(), 3);
        assert!(ctx.cache_get((1, 0)).is_none());
        ctx.cache_put_fetched((1, 0), Arc::new(42u32), 100);
        let v = ctx.cache_get((1, 0)).expect("cached");
        assert_eq!(*v.downcast::<u32>().unwrap(), 42);
        let s = ctx.cache_stats();
        assert_eq!((s.hits, s.misses, s.bytes_fetched), (1, 1, 100));
    }

    #[test]
    fn fetch_charges_accumulate_and_drain() {
        let mut ctx = WorkerCtx::new(0);
        ctx.cache_put_fetched((1, 0), Arc::new(()), 64);
        ctx.charge_bytes(36);
        ctx.charge_time(VDur::from_micros(500));
        let (b, t) = ctx.take_charges();
        assert_eq!(b, 100);
        assert_eq!(t, VDur::from_micros(500));
        assert_eq!(ctx.take_charges(), (0, VDur::ZERO));
    }

    #[test]
    fn local_puts_do_not_charge() {
        let mut ctx = WorkerCtx::new(0);
        ctx.cache_put_local((2, 5), Arc::new(1.0f64));
        assert_eq!(ctx.take_charges(), (0, VDur::ZERO));
        assert_eq!(ctx.cache_stats().misses, 0);
    }

    #[test]
    fn newest_version_and_remove_track_cache_contents() {
        let mut ctx = WorkerCtx::new(0);
        assert_eq!(ctx.cache_newest_version(1), None);
        ctx.cache_put_local((1, 3), Arc::new(3u64));
        ctx.cache_put_local((1, 7), Arc::new(7u64));
        ctx.cache_put_local((2, 9), Arc::new(9u64));
        assert_eq!(ctx.cache_newest_version(1), Some(7));
        assert_eq!(ctx.cache_newest_version(2), Some(9));
        let v = ctx.cache_remove((1, 7)).expect("present");
        assert_eq!(*v.downcast::<u64>().unwrap(), 7);
        assert_eq!(ctx.cache_newest_version(1), Some(3));
        assert!(ctx.cache_remove((1, 7)).is_none());
    }

    #[test]
    fn eviction_respects_watermark_per_broadcast() {
        let mut ctx = WorkerCtx::new(0);
        for v in 0..5 {
            ctx.cache_put_local((1, v), Arc::new(v));
            ctx.cache_put_local((2, v), Arc::new(v));
        }
        ctx.cache_evict_below(1, 3);
        assert_eq!(ctx.cache_len(), 2 + 5);
        assert!(ctx.cache_get((1, 2)).is_none());
        assert!(ctx.cache_get((1, 3)).is_some());
        assert!(ctx.cache_get((2, 0)).is_some());
    }
}
