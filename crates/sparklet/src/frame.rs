//! Length-prefixed message frames for the remote engine.
//!
//! Every message on a driver↔worker connection is one frame:
//!
//! ```text
//! ┌────────────┬───────┬──────────────────────────┐
//! │ u32 LE len │ u8 tag│ payload (len − 1 bytes)  │
//! └────────────┴───────┴──────────────────────────┘
//! ```
//!
//! The length covers the tag byte plus the payload, so a reader needs
//! exactly two reads per frame: 4 bytes of length, then `len` bytes of
//! body. Payload fields are little-endian, matching [`crate::payload`] —
//! a `GradDelta` or model patch encoded by the [`Payload`] trait travels
//! inside a frame byte-for-byte as the in-process engines account it.
//!
//! Decoding is fully fallible: torn frames report *where* they tore
//! ([`DecodeError::Truncated`]), unknown tags report the offending byte
//! ([`DecodeError::BadTag`]), and a hostile length prefix is rejected
//! before any allocation it would size ([`DecodeError::LengthOverflow`]).
//!
//! [`Payload`]: crate::payload::Payload

use std::io::{Read, Write};

use bytes::{BufMut, BytesMut};

use crate::payload::DecodeError;

/// Upper bound on one frame's body (tag + payload). Generous for model
/// snapshots, small enough that a corrupt length prefix cannot drive a
/// multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// One driver↔worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → driver, once per connection: "incarnation `epoch` of
    /// worker `worker` is up and ready for submissions".
    WorkerUp {
        /// The worker announcing itself.
        worker: u32,
        /// The incarnation the driver assigned when spawning the process;
        /// echoed back so the driver can drop greetings from stale
        /// processes that outlived their kill.
        epoch: u64,
    },
    /// Driver → worker: run routine `routine` on `request`, then sleep the
    /// modelled straggler delay before responding.
    Submit {
        /// Caller-chosen task tag, echoed in the completion.
        tag: u64,
        /// Worker incarnation this submission targets.
        epoch: u64,
        /// Routine id the worker dispatches on.
        routine: u32,
        /// Modelled execution + communication time in microseconds
        /// (already scaled by the engine's time scale and the worker's
        /// straggler factor); the worker sleeps this after computing.
        sleep_us: u64,
        /// Extra sleep as a multiple of *measured* compute time —
        /// `(straggler factor − 1)`, zero for non-delayed workers — so
        /// injected slowdowns also scale real work, exactly like the
        /// threaded backend.
        slow_factor: f64,
        /// Routine-specific request bytes.
        request: Vec<u8>,
    },
    /// Worker → driver: the result of `Submit` with the same `tag`.
    Completion {
        /// Tag of the completed task.
        tag: u64,
        /// Incarnation that executed it (stale epochs are dropped).
        epoch: u64,
        /// Routine-specific response bytes.
        response: Vec<u8>,
    },
    /// Driver → worker: exit cleanly.
    Shutdown,
    /// Worker → driver, periodic: "incarnation `epoch` of worker `worker`
    /// is still alive". Sent from a dedicated thread so a long-running
    /// routine does not silence the worker; the driver's liveness deadline
    /// declares a worker dead when beats stop arriving.
    Heartbeat {
        /// The worker beating.
        worker: u32,
        /// The incarnation beating (stale epochs are dropped).
        epoch: u64,
    },
}

const TAG_WORKER_UP: u8 = 0;
const TAG_SUBMIT: u8 = 1;
const TAG_COMPLETION: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;

fn need(bytes: &[u8], at: usize, n: usize) -> Result<(), DecodeError> {
    let have = bytes.len().saturating_sub(at);
    if have < n {
        Err(DecodeError::Truncated {
            at: bytes.len(),
            needed: n - have,
        })
    } else {
        Ok(())
    }
}

fn u32_at(bytes: &[u8], at: usize) -> Result<u32, DecodeError> {
    need(bytes, at, 4)?;
    Ok(u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4")))
}

fn u64_at(bytes: &[u8], at: usize) -> Result<u64, DecodeError> {
    need(bytes, at, 8)?;
    Ok(u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8")))
}

/// Appends the frame encoding of `msg` to `buf`.
pub fn encode_frame(msg: &Msg, buf: &mut BytesMut) {
    let start = buf.len();
    buf.put_u32_le(0); // length back-patched below
    match msg {
        Msg::WorkerUp { worker, epoch } => {
            buf.put_u8(TAG_WORKER_UP);
            buf.put_u32_le(*worker);
            buf.put_u64_le(*epoch);
        }
        Msg::Submit {
            tag,
            epoch,
            routine,
            sleep_us,
            slow_factor,
            request,
        } => {
            buf.put_u8(TAG_SUBMIT);
            buf.put_u64_le(*tag);
            buf.put_u64_le(*epoch);
            buf.put_u32_le(*routine);
            buf.put_u64_le(*sleep_us);
            buf.put_f64_le(*slow_factor);
            buf.put_slice(request);
        }
        Msg::Completion {
            tag,
            epoch,
            response,
        } => {
            buf.put_u8(TAG_COMPLETION);
            buf.put_u64_le(*tag);
            buf.put_u64_le(*epoch);
            buf.put_slice(response);
        }
        Msg::Shutdown => {
            buf.put_u8(TAG_SHUTDOWN);
        }
        Msg::Heartbeat { worker, epoch } => {
            buf.put_u8(TAG_HEARTBEAT);
            buf.put_u32_le(*worker);
            buf.put_u64_le(*epoch);
        }
    }
    let body = (buf.len() - start - 4) as u32;
    buf[start..start + 4].copy_from_slice(&body.to_le_bytes());
}

/// Decodes one frame from the front of `bytes`, returning the message and
/// the total bytes consumed (length prefix included).
pub fn decode_frame(bytes: &[u8]) -> Result<(Msg, usize), DecodeError> {
    let len = u32_at(bytes, 0)?;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(DecodeError::LengthOverflow {
            at: 0,
            len: len as u64,
        });
    }
    let total = 4 + len as usize;
    need(bytes, 4, len as usize)?;
    let body = &bytes[4..total];
    let msg = decode_body(body).map_err(|e| e.shifted(4))?;
    Ok((msg, total))
}

/// Decodes a frame body (tag + payload, length prefix already stripped).
fn decode_body(body: &[u8]) -> Result<Msg, DecodeError> {
    let tag = body[0];
    match tag {
        TAG_WORKER_UP => {
            let worker = u32_at(body, 1)?;
            let epoch = u64_at(body, 5)?;
            Ok(Msg::WorkerUp { worker, epoch })
        }
        TAG_SUBMIT => {
            let tag = u64_at(body, 1)?;
            let epoch = u64_at(body, 9)?;
            let routine = u32_at(body, 17)?;
            let sleep_us = u64_at(body, 21)?;
            let slow_factor = f64::from_bits(u64_at(body, 29)?);
            let request = body[37..].to_vec();
            Ok(Msg::Submit {
                tag,
                epoch,
                routine,
                sleep_us,
                slow_factor,
                request,
            })
        }
        TAG_COMPLETION => {
            let tag = u64_at(body, 1)?;
            let epoch = u64_at(body, 9)?;
            let response = body[17..].to_vec();
            Ok(Msg::Completion {
                tag,
                epoch,
                response,
            })
        }
        TAG_SHUTDOWN => Ok(Msg::Shutdown),
        TAG_HEARTBEAT => {
            let worker = u32_at(body, 1)?;
            let epoch = u64_at(body, 5)?;
            Ok(Msg::Heartbeat { worker, epoch })
        }
        tag => Err(DecodeError::BadTag { at: 0, tag }),
    }
}

/// Writes one frame to `w` (two syscall-level writes at most; the frame is
/// assembled in one buffer first).
pub fn write_frame(w: &mut impl Write, msg: &Msg) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    encode_frame(msg, &mut buf);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one complete frame from `r`. A malformed frame surfaces as
/// [`std::io::ErrorKind::InvalidData`] wrapping the positioned
/// [`DecodeError`]; a cleanly closed connection as `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Msg> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            DecodeError::LengthOverflow {
                at: 0,
                len: len as u64,
            },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_body(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.shifted(4)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Msg) {
        let mut buf = BytesMut::new();
        encode_frame(msg, &mut buf);
        let (back, used) = decode_frame(buf.as_slice()).expect("decodes");
        assert_eq!(&back, msg);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        roundtrip(&Msg::WorkerUp {
            worker: 3,
            epoch: 17,
        });
        roundtrip(&Msg::Submit {
            tag: 9,
            epoch: 2,
            routine: 1,
            sleep_us: 1500,
            slow_factor: 2.5,
            request: vec![1, 2, 3, 4, 5],
        });
        roundtrip(&Msg::Completion {
            tag: 9,
            epoch: 2,
            response: vec![],
        });
        roundtrip(&Msg::Shutdown);
        roundtrip(&Msg::Heartbeat {
            worker: 7,
            epoch: 23,
        });
    }

    #[test]
    fn heartbeat_torn_at_every_cut_reports_position() {
        let mut buf = BytesMut::new();
        encode_frame(
            &Msg::Heartbeat {
                worker: 2,
                epoch: 5,
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let err = decode_frame(&buf.as_slice()[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { at, .. } if at <= cut),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn frames_are_self_delimiting_back_to_back() {
        let msgs = [
            Msg::Shutdown,
            Msg::WorkerUp {
                worker: 0,
                epoch: 0,
            },
            Msg::Completion {
                tag: 1,
                epoch: 1,
                response: vec![0xFF; 32],
            },
        ];
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode_frame(m, &mut buf);
        }
        let mut at = 0;
        for m in &msgs {
            let (back, used) = decode_frame(&buf.as_slice()[at..]).expect("decodes");
            assert_eq!(&back, m);
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn torn_and_malformed_frames_report_positions() {
        let mut buf = BytesMut::new();
        encode_frame(
            &Msg::Submit {
                tag: 1,
                epoch: 1,
                routine: 0,
                sleep_us: 0,
                slow_factor: 0.0,
                request: vec![7; 16],
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let err = decode_frame(&buf.as_slice()[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { at, .. } if at <= cut),
                "cut {cut}: {err}"
            );
        }
        // Unknown tag: positioned at the tag byte (offset 4, past the
        // length prefix).
        let mut bad = BytesMut::new();
        bad.put_u32_le(1);
        bad.put_u8(0xEE);
        assert_eq!(
            decode_frame(bad.as_slice()),
            Err(DecodeError::BadTag { at: 4, tag: 0xEE })
        );
        // Hostile length prefix: rejected before allocation.
        let mut huge = BytesMut::new();
        huge.put_u32_le(u32::MAX);
        huge.put_u8(TAG_SHUTDOWN);
        assert!(matches!(
            decode_frame(huge.as_slice()),
            Err(DecodeError::LengthOverflow { at: 0, .. })
        ));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let msgs = vec![
            Msg::WorkerUp {
                worker: 1,
                epoch: 4,
            },
            Msg::Submit {
                tag: 42,
                epoch: 4,
                routine: 7,
                sleep_us: 10,
                slow_factor: 1.0,
                request: vec![9; 100],
            },
            Msg::Shutdown,
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).expect("write");
        }
        let mut r = wire.as_slice();
        for m in &msgs {
            assert_eq!(&read_frame(&mut r).expect("read"), m);
        }
        // Stream exhausted: clean EOF.
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn torn_frame_mid_stream_after_valid_traffic() {
        // A peer that dies mid-write leaves a prefix of its last frame on
        // the wire. Every earlier frame must still decode, and the torn
        // tail must surface as UnexpectedEof no matter where the tear is —
        // inside the length prefix or inside the body.
        let good = Msg::Completion {
            tag: 3,
            epoch: 1,
            response: vec![0xAB; 24],
        };
        let torn = Msg::Submit {
            tag: 4,
            epoch: 1,
            routine: 2,
            sleep_us: 5,
            slow_factor: 1.5,
            request: vec![0xCD; 40],
        };
        let mut prefix = Vec::new();
        write_frame(&mut prefix, &good).expect("write");
        let mut tail = Vec::new();
        write_frame(&mut tail, &torn).expect("write");
        for cut in 0..tail.len() {
            let mut wire = prefix.clone();
            wire.extend_from_slice(&tail[..cut]);
            let mut r = wire.as_slice();
            assert_eq!(&read_frame(&mut r).expect("valid prefix"), &good);
            assert_eq!(
                read_frame(&mut r).unwrap_err().kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut {cut}"
            );
        }
    }
}
