//! The execution-engine abstraction.
//!
//! An [`Engine`] is a cluster of workers that execute opaque [`Task`]s.
//! The driver submits a task to a specific (available) worker and later
//! receives a [`Completion`]. Two implementations exist:
//!
//! * [`crate::sim::SimEngine`] — deterministic virtual-time simulation;
//! * [`crate::threaded::ThreadedEngine`] — real OS threads and real delays.
//!
//! Both give the *same semantics*: a task conceptually begins executing
//! against the state captured at submission (exactly like a Spark task
//! shipping with its broadcast snapshot) and its result arrives after the
//! modelled/real duration. Asynchronous algorithms built on top observe
//! stale results precisely as they would on a real cluster.

use std::any::Any;

use async_cluster::{VDur, VTime, WorkerId};

use crate::payload::DecodeError;
use crate::worker::WorkerCtx;

/// Type-erased task result.
pub type TaskOutput = Box<dyn Any + Send>;

/// The closure a task runs on its worker.
pub type TaskFn = Box<dyn FnOnce(&mut WorkerCtx) -> TaskOutput + Send>;

/// A unit of work bound for one worker.
pub struct Task {
    /// Caller-chosen tag (e.g. partition index) echoed back in the
    /// completion; used to resubmit lost work.
    pub tag: u64,
    /// Abstract compute cost in work units (≈ matrix nonzeros touched).
    pub cost: f64,
    /// Bytes shipped *with* the task (resolved classic-broadcast payloads).
    pub bytes_in: u64,
    /// The work itself.
    pub run: TaskFn,
}

/// A successfully finished task.
pub struct TaskDone {
    /// Worker that executed the task.
    pub worker: WorkerId,
    /// Tag from the submitted [`Task`].
    pub tag: u64,
    /// The closure's output.
    pub output: TaskOutput,
    /// When the task was submitted.
    pub issued_at: VTime,
    /// When the result reached the server.
    pub finished_at: VTime,
    /// Modelled (or measured) execution duration, including injected
    /// straggler delay and communication.
    pub service_time: VDur,
    /// Total bytes shipped to the worker for this task (task payload plus
    /// on-demand fetches charged during execution).
    pub bytes_in: u64,
}

/// What the engine reports back to the driver.
pub enum Completion {
    /// Task finished normally.
    Done(TaskDone),
    /// The worker died while this task was in flight; the task is lost and
    /// should be resubmitted elsewhere (Spark semantics: lineage makes the
    /// recomputation safe).
    Lost {
        /// The failed worker.
        worker: WorkerId,
        /// Tag of the lost task.
        tag: u64,
    },
    /// A worker died while idle.
    WorkerDown {
        /// The failed worker.
        worker: WorkerId,
    },
    /// A worker came (back) up: a dead worker was revived, or a brand-new
    /// worker joined (its id is then one past the previous worker count).
    /// Either way the worker is a *fresh* executor: empty caches, no
    /// broadcast state — the driver rebuilds its bookkeeping on receipt.
    WorkerUp {
        /// The revived or newly joined worker.
        worker: WorkerId,
    },
}

/// Submission errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The target worker is already executing a task.
    WorkerBusy(WorkerId),
    /// The target worker has failed.
    WorkerDead(WorkerId),
    /// The target worker is already alive (bad revival request).
    WorkerAlive(WorkerId),
    /// Every worker in the cluster has failed; no task can be placed and
    /// no partition has an owner until a revival or join.
    NoAliveWorkers,
    /// A transport-level I/O failure (remote backend): the operation could
    /// not reach the worker process. Carries the OS error kind so faults
    /// are diagnosable, not panics.
    Io(std::io::ErrorKind),
    /// The worker's connection dropped mid-operation. The worker is marked
    /// dead and its in-flight task (if any) surfaces as
    /// [`Completion::Lost`] through the completion stream.
    Disconnected(WorkerId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WorkerBusy(w) => write!(f, "worker {w} is busy"),
            EngineError::WorkerDead(w) => write!(f, "worker {w} is dead"),
            EngineError::WorkerAlive(w) => write!(f, "worker {w} is already alive"),
            EngineError::NoAliveWorkers => write!(f, "no alive workers in the cluster"),
            EngineError::Io(kind) => write!(f, "transport i/o failure: {kind}"),
            EngineError::Disconnected(w) => write!(f, "worker {w} disconnected"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The wire form of a task, for engines whose workers live in other OS
/// processes and therefore cannot run [`Task::run`] (a closure does not
/// cross a socket).
///
/// `build` runs **driver-side** at submission against the engine's mirror
/// of the worker's cache state, exactly when the simulator would run the
/// task closure — so version resolution and byte accounting happen at the
/// same instant in both backends. `decode` turns the worker's response
/// bytes back into the typed [`TaskOutput`] the driver expects.
pub struct WireTask {
    /// Routine id the worker process dispatches on.
    pub routine: u32,
    /// Builds the request bytes against the worker's mirrored cache state,
    /// charging fetched bytes to the mirror (drained by the engine into
    /// the task's `bytes_in`).
    #[allow(clippy::type_complexity)]
    pub build: Box<dyn FnOnce(&mut WorkerCtx) -> Vec<u8> + Send>,
    /// Decodes the worker's response bytes into the task output.
    #[allow(clippy::type_complexity)]
    pub decode: Box<dyn Fn(&[u8]) -> Result<TaskOutput, DecodeError> + Send>,
}

/// A cluster of workers executing tasks. One task per worker at a time
/// (one executor slot, as in the paper's per-worker executors).
pub trait Engine: Send {
    /// Total workers, dead or alive.
    fn workers(&self) -> usize;

    /// Current engine time (virtual for the simulator, real-elapsed for
    /// the threaded backend).
    fn now(&self) -> VTime;

    /// True when `w` is alive and idle.
    fn available(&self, w: WorkerId) -> bool;

    /// True when `w` has not failed.
    fn alive(&self, w: WorkerId) -> bool;

    /// Submits a task to worker `w`.
    fn submit(&mut self, w: WorkerId, task: Task) -> Result<(), EngineError>;

    /// Submits a task together with its wire form. In-process engines run
    /// the closure and ignore the wire form (the default); engines with
    /// out-of-process workers override this to ship `wire` instead of
    /// executing `task.run`.
    fn submit_wired(&mut self, w: WorkerId, task: Task, wire: WireTask) -> Result<(), EngineError> {
        drop(wire);
        self.submit(w, task)
    }

    /// Waits for the next completion, advancing the clock. Returns `None`
    /// when nothing is in flight.
    fn next(&mut self) -> Option<Completion>;

    /// Returns a completion only if one is ready *without advancing time*:
    /// in the simulator "ready" means scheduled at or before the current
    /// clock; in the threaded backend, already sitting in the result queue.
    fn try_next(&mut self) -> Option<Completion>;

    /// Number of tasks in flight.
    fn pending(&self) -> usize;

    /// Immediately fails a worker (its in-flight task, if any, is lost and
    /// will surface as [`Completion::Lost`]).
    fn kill_worker(&mut self, w: WorkerId);

    /// Brings a dead worker back as a *fresh* executor (empty caches; any
    /// still-undelivered result of its pre-failure life is epoch-guarded
    /// and dropped). The change surfaces as [`Completion::WorkerUp`]
    /// through the normal completion stream so driver-side bookkeeping
    /// stays ordered with task results.
    ///
    /// Returns [`EngineError::WorkerAlive`] if `w` has not failed.
    fn revive_worker(&mut self, w: WorkerId) -> Result<(), EngineError>;

    /// Adds a brand-new worker with the next dense id and returns that id.
    /// Also surfaces as [`Completion::WorkerUp`]. The join is effective for
    /// submissions immediately; completion-stream consumers learn about it
    /// when the notification pops.
    fn add_worker(&mut self) -> WorkerId;

    /// Schedules a failure at a future instant (deterministic engines only;
    /// the default is a no-op so threaded tests call
    /// [`Engine::kill_worker`] — the threaded backend overrides it with
    /// elapsed-time checks).
    fn schedule_failure(&mut self, _w: WorkerId, _at: VTime) {}

    /// Schedules a revival of `w` at a future instant (see
    /// [`Engine::schedule_failure`] for backend semantics). Reviving an
    /// alive worker is a no-op at fire time.
    fn schedule_revival(&mut self, _w: WorkerId, _at: VTime) {}

    /// Schedules a brand-new worker to join at a future instant; the new
    /// id surfaces via [`Completion::WorkerUp`]. Backends may allocate the
    /// id eagerly (the simulator grows `workers()` at scheduling time,
    /// keeping the worker dead until its instant) or lazily at fire time
    /// (the threaded backend).
    fn schedule_join(&mut self, _at: VTime) {}

    /// The instant of the earliest still-scheduled membership event
    /// (failure/revival/join), or `None` when nothing is scheduled.
    ///
    /// Recovery-aware callers use this to decide whether waiting is
    /// worthwhile: `next()` on the wall-clock backends returns `None` as
    /// soon as nothing is *in flight*, even when a revival is scheduled in
    /// the future — a supervisor that knows a worker is coming back can
    /// sleep toward this horizon instead of giving up.
    fn next_event_at(&self) -> Option<VTime> {
        None
    }
}
