//! The execution-engine abstraction.
//!
//! An [`Engine`] is a cluster of workers that execute opaque [`Task`]s.
//! The driver submits a task to a specific (available) worker and later
//! receives a [`Completion`]. Two implementations exist:
//!
//! * [`crate::sim::SimEngine`] — deterministic virtual-time simulation;
//! * [`crate::threaded::ThreadedEngine`] — real OS threads and real delays.
//!
//! Both give the *same semantics*: a task conceptually begins executing
//! against the state captured at submission (exactly like a Spark task
//! shipping with its broadcast snapshot) and its result arrives after the
//! modelled/real duration. Asynchronous algorithms built on top observe
//! stale results precisely as they would on a real cluster.

use std::any::Any;

use async_cluster::{VDur, VTime, WorkerId};

use crate::worker::WorkerCtx;

/// Type-erased task result.
pub type TaskOutput = Box<dyn Any + Send>;

/// The closure a task runs on its worker.
pub type TaskFn = Box<dyn FnOnce(&mut WorkerCtx) -> TaskOutput + Send>;

/// A unit of work bound for one worker.
pub struct Task {
    /// Caller-chosen tag (e.g. partition index) echoed back in the
    /// completion; used to resubmit lost work.
    pub tag: u64,
    /// Abstract compute cost in work units (≈ matrix nonzeros touched).
    pub cost: f64,
    /// Bytes shipped *with* the task (resolved classic-broadcast payloads).
    pub bytes_in: u64,
    /// The work itself.
    pub run: TaskFn,
}

/// A successfully finished task.
pub struct TaskDone {
    /// Worker that executed the task.
    pub worker: WorkerId,
    /// Tag from the submitted [`Task`].
    pub tag: u64,
    /// The closure's output.
    pub output: TaskOutput,
    /// When the task was submitted.
    pub issued_at: VTime,
    /// When the result reached the server.
    pub finished_at: VTime,
    /// Modelled (or measured) execution duration, including injected
    /// straggler delay and communication.
    pub service_time: VDur,
    /// Total bytes shipped to the worker for this task (task payload plus
    /// on-demand fetches charged during execution).
    pub bytes_in: u64,
}

/// What the engine reports back to the driver.
pub enum Completion {
    /// Task finished normally.
    Done(TaskDone),
    /// The worker died while this task was in flight; the task is lost and
    /// should be resubmitted elsewhere (Spark semantics: lineage makes the
    /// recomputation safe).
    Lost {
        /// The failed worker.
        worker: WorkerId,
        /// Tag of the lost task.
        tag: u64,
    },
    /// A worker died while idle.
    WorkerDown {
        /// The failed worker.
        worker: WorkerId,
    },
}

/// Submission errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The target worker is already executing a task.
    WorkerBusy(WorkerId),
    /// The target worker has failed.
    WorkerDead(WorkerId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WorkerBusy(w) => write!(f, "worker {w} is busy"),
            EngineError::WorkerDead(w) => write!(f, "worker {w} is dead"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A cluster of workers executing tasks. One task per worker at a time
/// (one executor slot, as in the paper's per-worker executors).
pub trait Engine: Send {
    /// Total workers, dead or alive.
    fn workers(&self) -> usize;

    /// Current engine time (virtual for the simulator, real-elapsed for
    /// the threaded backend).
    fn now(&self) -> VTime;

    /// True when `w` is alive and idle.
    fn available(&self, w: WorkerId) -> bool;

    /// True when `w` has not failed.
    fn alive(&self, w: WorkerId) -> bool;

    /// Submits a task to worker `w`.
    fn submit(&mut self, w: WorkerId, task: Task) -> Result<(), EngineError>;

    /// Waits for the next completion, advancing the clock. Returns `None`
    /// when nothing is in flight.
    fn next(&mut self) -> Option<Completion>;

    /// Returns a completion only if one is ready *without advancing time*:
    /// in the simulator "ready" means scheduled at or before the current
    /// clock; in the threaded backend, already sitting in the result queue.
    fn try_next(&mut self) -> Option<Completion>;

    /// Number of tasks in flight.
    fn pending(&self) -> usize;

    /// Immediately fails a worker (its in-flight task, if any, is lost and
    /// will surface as [`Completion::Lost`]).
    fn kill_worker(&mut self, w: WorkerId);

    /// Schedules a failure at a future instant (simulation only; the
    /// default is a no-op so threaded tests call [`Engine::kill_worker`]).
    fn schedule_failure(&mut self, _w: WorkerId, _at: VTime) {}
}
