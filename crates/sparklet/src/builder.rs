//! Unified engine construction.
//!
//! Three backends implement [`Engine`] — the deterministic simulator, the
//! in-process threaded engine, and the multi-process remote engine — and
//! before this module each call site (driver constructors, benches,
//! examples, e2e tests) wired its backend up by hand. [`EngineBuilder`]
//! centralizes that: pick an [`EngineKind`], set the cluster spec, time
//! scale, chaos schedule, and (for the remote backend) transport options,
//! and get a `Box<dyn Engine>` back. Adding backend #4 is one enum variant
//! and one `build` arm.
//!
//! ```
//! use async_cluster::{ClusterSpec, DelayModel};
//! use sparklet::{EngineBuilder, EngineKind};
//!
//! let engine = EngineBuilder::new(EngineKind::Sim)
//!     .spec(ClusterSpec::homogeneous(4, DelayModel::None))
//!     .build()
//!     .expect("sim construction is infallible");
//! assert_eq!(engine.workers(), 4);
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use async_cluster::{ChaosAction, ChaosSchedule, ClusterSpec, DelayModel};

use crate::engine::{Engine, EngineError};
use crate::fault::FaultPlan;
use crate::remote::{
    default_worker_bin, RemoteConfig, RemoteEngine, RoutineRegistry, WorkerLauncher,
};
use crate::sim::SimEngine;
use crate::threaded::ThreadedEngine;

/// Which [`Engine`] backend to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Deterministic virtual-time simulation ([`SimEngine`]) — the
    /// byte-gated oracle.
    Sim,
    /// One OS thread per worker ([`ThreadedEngine`]).
    Threaded,
    /// One OS process per worker over TCP ([`RemoteEngine`]).
    Remote,
}

/// Builds any backend behind one API. See the module docs.
pub struct EngineBuilder {
    kind: EngineKind,
    spec: ClusterSpec,
    time_scale: f64,
    chaos: Option<ChaosSchedule>,
    addr: String,
    worker_bin: Option<PathBuf>,
    worker_args: Vec<String>,
    loopback: Option<Arc<dyn Fn() -> RoutineRegistry + Send + Sync>>,
    handshake_timeout: Option<Duration>,
    poll_interval: Option<Duration>,
    heartbeat: Option<Duration>,
    liveness: Option<Duration>,
    task_deadline: Option<Duration>,
    max_inflight: Option<usize>,
    fault: Option<FaultPlan>,
}

impl EngineBuilder {
    /// A builder for `kind` with a 1-worker default spec, `time_scale`
    /// 0.01, no chaos, and loopback transport defaults.
    pub fn new(kind: EngineKind) -> Self {
        Self {
            kind,
            spec: ClusterSpec::homogeneous(1, DelayModel::None),
            time_scale: 0.01,
            chaos: None,
            addr: "127.0.0.1:0".to_string(),
            worker_bin: None,
            worker_args: Vec::new(),
            loopback: None,
            handshake_timeout: None,
            poll_interval: None,
            heartbeat: None,
            liveness: None,
            task_deadline: None,
            max_inflight: None,
            fault: None,
        }
    }

    /// Shorthand for `EngineBuilder::new(EngineKind::Sim)`.
    pub fn sim() -> Self {
        Self::new(EngineKind::Sim)
    }

    /// Shorthand for `EngineBuilder::new(EngineKind::Threaded)`.
    pub fn threaded() -> Self {
        Self::new(EngineKind::Threaded)
    }

    /// Shorthand for `EngineBuilder::new(EngineKind::Remote)`.
    pub fn remote() -> Self {
        Self::new(EngineKind::Remote)
    }

    /// Cluster spec: worker count, speed profiles, straggler model,
    /// communication model.
    pub fn spec(mut self, spec: ClusterSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Real-time scale for modelled durations (threaded and remote
    /// backends; the simulator ignores it).
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Installs `schedule`'s kill/revive/join events on the built engine.
    /// On the simulator they fire at exact virtual instants; on the
    /// threaded and remote backends at elapsed real time — for the remote
    /// backend that means actual process kills and respawns.
    pub fn chaos(mut self, schedule: ChaosSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// Listen address for the remote backend (default `127.0.0.1:0`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Worker executable for the remote backend. Defaults to
    /// [`default_worker_bin`] (the `ASYNC_WORKER_BIN` environment
    /// variable, or an `async_worker` binary near the current executable).
    pub fn worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Extra arguments passed to the worker executable before the
    /// `--connect ..` triple.
    pub fn worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }

    /// Runs remote workers as in-process loopback threads with `registry`
    /// routines instead of spawning processes (tests).
    pub fn loopback_workers(
        mut self,
        registry: Arc<dyn Fn() -> RoutineRegistry + Send + Sync>,
    ) -> Self {
        self.loopback = Some(registry);
        self
    }

    /// Handshake deadline for freshly spawned remote workers (default
    /// 10 s).
    pub fn handshake_timeout(mut self, d: Duration) -> Self {
        self.handshake_timeout = Some(d);
        self
    }

    /// Cap on each deadline-aware wait in the remote result pump (default
    /// 500 µs); only applies while a timer is armed.
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = Some(d);
        self
    }

    /// Remote worker heartbeat period (default: no heartbeats).
    pub fn heartbeat(mut self, period: Duration) -> Self {
        self.heartbeat = Some(period);
        self
    }

    /// Remote liveness deadline: a worker silent for this long is declared
    /// dead. Requires [`EngineBuilder::heartbeat`].
    pub fn liveness(mut self, deadline: Duration) -> Self {
        self.liveness = Some(deadline);
        self
    }

    /// Remote per-task deadline: an unanswered submission older than this
    /// kills the worker incarnation and surfaces the task as lost.
    pub fn task_deadline(mut self, deadline: Duration) -> Self {
        self.task_deadline = Some(deadline);
        self
    }

    /// Bound on in-flight tasks per remote worker (default 1).
    pub fn max_inflight(mut self, bound: usize) -> Self {
        self.max_inflight = Some(bound);
        self
    }

    /// Wire-level fault injection plan for the remote backend (default:
    /// zero faults).
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Constructs the engine. Sim and threaded construction cannot fail
    /// (spec validation panics, as their constructors always have);
    /// remote construction returns [`EngineError::Io`] on bind, spawn, or
    /// handshake failure — including a missing worker binary.
    pub fn build(self) -> Result<Box<dyn Engine>, EngineError> {
        let mut engine: Box<dyn Engine> = match self.kind {
            EngineKind::Sim => Box::new(SimEngine::new(self.spec)),
            EngineKind::Threaded => Box::new(ThreadedEngine::new(self.spec, self.time_scale)),
            EngineKind::Remote => {
                let launcher = match self.loopback {
                    Some(registry) => WorkerLauncher::Loopback(registry),
                    None => {
                        let program = match self.worker_bin.or_else(default_worker_bin) {
                            Some(p) => p,
                            None => return Err(EngineError::Io(std::io::ErrorKind::NotFound)),
                        };
                        WorkerLauncher::Process {
                            program,
                            args: self.worker_args,
                        }
                    }
                };
                let defaults = RemoteConfig::process(PathBuf::new());
                let cfg = RemoteConfig {
                    addr: self.addr,
                    launcher,
                    handshake_timeout: self.handshake_timeout.unwrap_or(defaults.handshake_timeout),
                    poll_interval: self.poll_interval.unwrap_or(defaults.poll_interval),
                    heartbeat: self.heartbeat,
                    liveness: self.liveness,
                    task_deadline: self.task_deadline,
                    max_inflight: self.max_inflight.unwrap_or(defaults.max_inflight),
                    fault: self.fault.unwrap_or_default(),
                };
                Box::new(RemoteEngine::new(self.spec, self.time_scale, cfg)?)
            }
        };
        if let Some(schedule) = self.chaos {
            for ev in schedule.events() {
                match ev.action {
                    ChaosAction::Kill(w) => engine.schedule_failure(w, ev.at),
                    ChaosAction::Revive(w) => engine.schedule_revival(w, ev.at),
                    ChaosAction::Join => engine.schedule_join(ev.at),
                }
            }
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::VTime;

    #[test]
    fn builds_each_in_process_backend() {
        let sim = EngineBuilder::sim()
            .spec(ClusterSpec::homogeneous(3, DelayModel::None))
            .build()
            .unwrap();
        assert_eq!(sim.workers(), 3);
        let thr = EngineBuilder::threaded()
            .spec(ClusterSpec::homogeneous(2, DelayModel::None))
            .time_scale(0.0)
            .build()
            .unwrap();
        assert_eq!(thr.workers(), 2);
    }

    #[test]
    fn remote_without_a_worker_binary_is_a_diagnosable_error() {
        // An explicit path overrides any discovery, so this cannot
        // accidentally find a real binary.
        let err = match EngineBuilder::remote()
            .worker_bin("/nonexistent/async_worker")
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("expected spawn failure"),
        };
        assert!(matches!(err, EngineError::Io(_)), "got {err}");
    }

    #[test]
    fn chaos_schedule_installs_on_the_built_engine() {
        let schedule = ChaosSchedule::new()
            .kill(VTime::from_micros(10), 1)
            .revive(VTime::from_micros(20), 1)
            .join(VTime::from_micros(30));
        let mut sim = EngineBuilder::sim()
            .spec(ClusterSpec::homogeneous(2, DelayModel::None))
            .chaos(schedule)
            .build()
            .unwrap();
        // The sim applies scheduled events when the clock reaches them;
        // with nothing in flight, next() drains the membership stream.
        let mut downs = 0;
        let mut ups = 0;
        while let Some(c) = sim.next() {
            match c {
                crate::engine::Completion::WorkerDown { .. } => downs += 1,
                crate::engine::Completion::WorkerUp { .. } => ups += 1,
                _ => {}
            }
        }
        assert_eq!((downs, ups), (1, 2));
        assert_eq!(sim.workers(), 3);
    }
}
