//! Wire-level fault injection for the remote engine.
//!
//! A [`FaultPlan`] describes, per outgoing frame, the probability of each
//! misbehaviour a real network exhibits: silently dropping the frame,
//! delaying it, duplicating it, tearing it mid-write, or resetting the
//! connection. Each endpoint derives a [`FaultInjector`] from the plan —
//! seeded by `(plan.seed, worker, epoch, direction)` — so a given
//! incarnation misbehaves identically on every run regardless of thread
//! interleaving: determinism lives in the *sequence of frames an endpoint
//! writes*, not in wall-clock time.
//!
//! The plan composes with [`crate::driver::Driver::install_chaos`]-style
//! scripted membership chaos, but its point is the opposite contract:
//! faults strike *unscripted*, and the supervision layer (heartbeats,
//! task deadlines, retries, auto-respawn) has to notice and recover
//! without being told when. `hang_worker` models the nastiest case — a
//! worker that keeps computing but whose outbound frames (completions
//! *and* heartbeats) all vanish, indistinguishable from a network
//! partition; only a liveness deadline can catch it.
//!
//! Handshake frames (`WorkerUp` greetings) are exempt by construction:
//! injectors are applied to post-handshake traffic only, so a non-zero
//! plan cannot prevent the cluster from forming. Faults are a transport
//! concern; whether the *cluster* admits the worker is chaos-schedule
//! territory.

use std::time::Duration;

/// Which way frames are flowing through an injector. Driver→worker and
/// worker→driver halves of one connection get independent deterministic
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDir {
    /// Driver-side writes: `Submit` frames.
    DriverToWorker,
    /// Worker-side writes: `Completion` and `Heartbeat` frames.
    WorkerToDriver,
}

/// A seeded description of transport misbehaviour. Probabilities are per
/// frame and independent; the first matching action in the order
/// reset → truncate → drop → duplicate → delay wins. The default plan is
/// zero everywhere — [`FaultPlan::is_zero`] — and injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injector derived from this plan.
    pub seed: u64,
    /// Probability a frame is silently dropped (the writer believes it
    /// was sent).
    pub drop: f64,
    /// Probability a frame is delayed by a uniform `0..=max_delay` before
    /// hitting the socket.
    pub delay: f64,
    /// Upper bound of an injected delay.
    pub max_delay: Duration,
    /// Probability a frame is written twice back-to-back (the receiver's
    /// epoch/tag guards must absorb the duplicate).
    pub duplicate: f64,
    /// Probability a frame is torn mid-write: a strict prefix goes out and
    /// the connection is shut down, exactly like a peer dying mid-`write`.
    pub truncate: f64,
    /// Probability the connection is reset instead of the write.
    pub reset: f64,
    /// A worker that "hangs" without a script: once its injector has let
    /// `hang_after` completion frames through, *every* outbound frame from
    /// that worker (completions and heartbeats) is silently dropped. The
    /// process keeps running — only the liveness deadline can tell.
    pub hang_worker: Option<usize>,
    /// Completion-frame count after which `hang_worker` goes silent.
    pub hang_after: u64,
    /// Restricts the plan to one direction: `Some(dir)` leaves the other
    /// direction's endpoint fault-free. `None` (default) faults both.
    pub only: Option<FaultDir>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop: 0.0,
            delay: 0.0,
            max_delay: Duration::from_micros(500),
            duplicate: 0.0,
            truncate: 0.0,
            reset: 0.0,
            hang_worker: None,
            hang_after: 0,
            only: None,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when this plan can never inject a fault — the remote engine
    /// skips the injection layer entirely in that case.
    pub fn is_zero(&self) -> bool {
        self.drop == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.truncate == 0.0
            && self.reset == 0.0
            && self.hang_worker.is_none()
    }

    /// True when an endpoint writing in `dir` should apply this plan
    /// (non-zero and not restricted to the other direction).
    pub fn applies(&self, dir: FaultDir) -> bool {
        !self.is_zero() && self.only.is_none_or(|d| d == dir)
    }

    /// Renders the plan as a compact `key=value,...` spec suitable for a
    /// worker-process command line. [`FaultPlan::from_spec`] inverts it.
    pub fn to_spec(&self) -> String {
        let mut s = format!(
            "seed={},drop={},delay={},delay_us={},dup={},trunc={},reset={}",
            self.seed,
            self.drop,
            self.delay,
            self.max_delay.as_micros(),
            self.duplicate,
            self.truncate,
            self.reset,
        );
        if let Some(w) = self.hang_worker {
            s.push_str(&format!(",hang_worker={w},hang_after={}", self.hang_after));
        }
        match self.only {
            Some(FaultDir::DriverToWorker) => s.push_str(",only=d2w"),
            Some(FaultDir::WorkerToDriver) => s.push_str(",only=w2d"),
            None => {}
        }
        s
    }

    /// Parses a spec produced by [`FaultPlan::to_spec`]. Unknown keys and
    /// malformed values are rejected so a typo on a worker command line
    /// fails loudly instead of silently running fault-free.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry without '=': {pair:?}"))?;
            macro_rules! val {
                () => {
                    v.parse()
                        .map_err(|_| format!("fault spec {k}: bad value {v:?}"))?
                };
            }
            match k {
                "seed" => plan.seed = val!(),
                "drop" => plan.drop = val!(),
                "delay" => plan.delay = val!(),
                "delay_us" => plan.max_delay = Duration::from_micros(val!()),
                "dup" => plan.duplicate = val!(),
                "trunc" => plan.truncate = val!(),
                "reset" => plan.reset = val!(),
                "hang_worker" => plan.hang_worker = Some(val!()),
                "hang_after" => plan.hang_after = val!(),
                "only" => {
                    plan.only = Some(match v {
                        "d2w" => FaultDir::DriverToWorker,
                        "w2d" => FaultDir::WorkerToDriver,
                        _ => return Err(format!("fault spec only: bad value {v:?}")),
                    })
                }
                _ => return Err(format!("fault spec: unknown key {k:?}")),
            }
        }
        Ok(plan)
    }

    /// The injector for one direction of one worker incarnation.
    pub fn injector(&self, worker: usize, epoch: u64, dir: FaultDir) -> FaultInjector {
        let salt = match dir {
            FaultDir::DriverToWorker => 0x9E37_79B9_7F4A_7C15u64,
            FaultDir::WorkerToDriver => 0xD1B5_4A32_D192_ED03u64,
        };
        let state = splitmix(
            self.seed ^ salt ^ (worker as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ epoch,
        );
        FaultInjector {
            plan: self.clone(),
            worker,
            state,
            frames: 0,
        }
    }
}

/// What to do with the next outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Write the frame normally.
    Deliver,
    /// Pretend the write succeeded; put nothing on the wire.
    Drop,
    /// Sleep this long, then write normally.
    Delay(Duration),
    /// Write the frame twice back-to-back.
    Duplicate,
    /// Write only this many bytes of the frame, then shut the connection
    /// down (a torn frame mid-stream).
    Truncate(usize),
    /// Shut the connection down without writing.
    Reset,
}

/// One endpoint's deterministic fault stream. Feed it each outgoing
/// frame's length; it answers with the action to take. The decision
/// sequence depends only on `(plan.seed, worker, epoch, direction)` and
/// the frame index, never on time.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    worker: usize,
    state: u64,
    frames: u64,
}

impl FaultInjector {
    fn unit(&mut self) -> f64 {
        self.state = splitmix(self.state);
        // 53 significand bits → uniform in [0, 1).
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True once the plan's hang point has been reached for this worker.
    /// The caller flips to dropping everything (see
    /// [`FaultPlan::hang_worker`]); heartbeat streams share the verdict
    /// through the caller's flag, keeping it a function of completion
    /// count alone.
    pub fn hang_reached(&self) -> bool {
        self.plan.hang_worker == Some(self.worker) && self.frames >= self.plan.hang_after
    }

    /// Decides the fate of the next outgoing frame of `len` bytes.
    pub fn next_action(&mut self, len: usize) -> FaultAction {
        self.frames += 1;
        if self.plan.is_zero() {
            return FaultAction::Deliver;
        }
        let u = self.unit();
        let mut edge = self.plan.reset;
        if u < edge {
            return FaultAction::Reset;
        }
        edge += self.plan.truncate;
        if u < edge {
            // A strict prefix: at least the length header minus one byte
            // is interesting, but any cut short of the full frame tears.
            let cut = (self.unit() * len as f64) as usize;
            return FaultAction::Truncate(cut.min(len.saturating_sub(1)));
        }
        edge += self.plan.drop;
        if u < edge {
            return FaultAction::Drop;
        }
        edge += self.plan.duplicate;
        if u < edge {
            return FaultAction::Duplicate;
        }
        edge += self.plan.delay;
        if u < edge {
            let us = (self.unit() * self.plan.max_delay.as_micros() as f64) as u64;
            return FaultAction::Delay(Duration::from_micros(us));
        }
        FaultAction::Deliver
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultPlan {
        FaultPlan {
            seed: 42,
            drop: 0.2,
            delay: 0.2,
            max_delay: Duration::from_micros(100),
            duplicate: 0.1,
            truncate: 0.05,
            reset: 0.05,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn zero_plan_always_delivers() {
        let mut inj = FaultPlan::none().injector(0, 0, FaultDir::DriverToWorker);
        for _ in 0..1000 {
            assert_eq!(inj.next_action(64), FaultAction::Deliver);
        }
    }

    #[test]
    fn injector_streams_are_deterministic_per_identity() {
        let plan = lossy();
        let mut a = plan.injector(1, 3, FaultDir::WorkerToDriver);
        let mut b = plan.injector(1, 3, FaultDir::WorkerToDriver);
        let mut other_epoch = plan.injector(1, 4, FaultDir::WorkerToDriver);
        let mut other_dir = plan.injector(1, 3, FaultDir::DriverToWorker);
        let sa: Vec<_> = (0..200).map(|_| a.next_action(128)).collect();
        let sb: Vec<_> = (0..200).map(|_| b.next_action(128)).collect();
        assert_eq!(sa, sb, "same identity, same stream");
        let se: Vec<_> = (0..200).map(|_| other_epoch.next_action(128)).collect();
        let sd: Vec<_> = (0..200).map(|_| other_dir.next_action(128)).collect();
        assert_ne!(sa, se, "epoch changes the stream");
        assert_ne!(sa, sd, "direction changes the stream");
    }

    #[test]
    fn lossy_plan_exercises_every_action() {
        let mut inj = lossy().injector(0, 1, FaultDir::WorkerToDriver);
        let mut saw = [false; 6];
        for _ in 0..5000 {
            let idx = match inj.next_action(64) {
                FaultAction::Deliver => 0,
                FaultAction::Drop => 1,
                FaultAction::Delay(d) => {
                    assert!(d <= Duration::from_micros(100));
                    2
                }
                FaultAction::Duplicate => 3,
                FaultAction::Truncate(n) => {
                    assert!(n < 64, "truncation must be a strict prefix");
                    4
                }
                FaultAction::Reset => 5,
            };
            saw[idx] = true;
        }
        assert_eq!(saw, [true; 6], "every action fired at these rates");
    }

    #[test]
    fn spec_roundtrips_and_rejects_garbage() {
        let mut plan = lossy();
        plan.hang_worker = Some(2);
        plan.hang_after = 30;
        plan.only = Some(FaultDir::WorkerToDriver);
        let back = FaultPlan::from_spec(&plan.to_spec()).expect("roundtrip");
        assert_eq!(back, plan);
        assert_eq!(FaultPlan::from_spec("").expect("empty"), FaultPlan::none());
        assert!(FaultPlan::from_spec("bogus=1").is_err());
        assert!(FaultPlan::from_spec("drop").is_err());
        assert!(FaultPlan::from_spec("drop=x").is_err());
        assert!(FaultPlan::from_spec("only=sideways").is_err());
    }

    #[test]
    fn direction_restriction_gates_applicability() {
        let both = lossy();
        assert!(both.applies(FaultDir::DriverToWorker));
        assert!(both.applies(FaultDir::WorkerToDriver));
        let w2d = FaultPlan {
            only: Some(FaultDir::WorkerToDriver),
            ..lossy()
        };
        assert!(!w2d.applies(FaultDir::DriverToWorker));
        assert!(w2d.applies(FaultDir::WorkerToDriver));
        assert!(
            !FaultPlan::none().applies(FaultDir::WorkerToDriver),
            "a zero plan applies nowhere"
        );
    }

    #[test]
    fn hang_is_a_function_of_frame_count() {
        let plan = FaultPlan {
            hang_worker: Some(3),
            hang_after: 5,
            ..FaultPlan::default()
        };
        let mut inj = plan.injector(3, 0, FaultDir::WorkerToDriver);
        assert!(!inj.hang_reached());
        for _ in 0..5 {
            inj.next_action(32);
        }
        assert!(inj.hang_reached());
        // A different worker under the same plan never hangs.
        let mut other = plan.injector(2, 0, FaultDir::WorkerToDriver);
        for _ in 0..100 {
            other.next_action(32);
        }
        assert!(!other.hang_reached());
    }
}
