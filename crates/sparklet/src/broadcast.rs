//! Classic Spark-style broadcast variables.
//!
//! A broadcast wraps an immutable value shipped to each worker at most
//! once; tasks capture the handle and read `value()`. The driver charges
//! the transfer bytes to the first task per worker that uses the variable —
//! exactly Spark's per-executor broadcast cost. These measured bytes are
//! what the paper's `ASYNCbroadcaster` (see `async-core`) avoids for model
//! history, and the `ablate_broadcast` bench compares the two directly.

use std::sync::Arc;

use crate::payload::Payload;

/// A handle to a broadcast value. Cloning shares the value.
pub struct Broadcast<T> {
    id: u64,
    bytes: u64,
    value: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            bytes: self.bytes,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Broadcast<T> {
    pub(crate) fn new(id: u64, bytes: u64, value: T) -> Self {
        Self {
            id,
            bytes,
            value: Arc::new(value),
        }
    }

    /// The broadcast value (Spark's `Broadcast.value`).
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Shared handle to the value for capture in task closures.
    pub fn value_arc(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }

    /// Unique id of this broadcast.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Declared wire size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The charge descriptor passed to stage execution so the driver can
    /// bill first-use transfers per worker.
    pub fn charge(&self) -> BcastCharge {
        BcastCharge {
            id: self.id,
            bytes: self.bytes,
        }
    }
}

/// Identifies a broadcast use for per-worker transfer billing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastCharge {
    /// Broadcast id.
    pub id: u64,
    /// Wire size in bytes.
    pub bytes: u64,
}

/// Driver-side broadcast registry: allocates ids and tracks which workers
/// have already received which broadcasts.
pub struct BroadcastRegistry {
    next_id: u64,
    seen: Vec<std::collections::HashSet<u64>>,
}

impl BroadcastRegistry {
    /// Registry for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            next_id: 0,
            seen: vec![std::collections::HashSet::new(); workers],
        }
    }

    /// Creates a broadcast from a payload value.
    pub fn create<T: Payload>(&mut self, value: T) -> Broadcast<T> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = value.encoded_len();
        Broadcast::new(id, bytes, value)
    }

    /// Bytes that must be shipped to `worker` for the given uses (first use
    /// of each broadcast only); marks them as seen.
    pub fn charge_for(&mut self, worker: usize, uses: &[BcastCharge]) -> u64 {
        let mut total = 0;
        for u in uses {
            if self.seen[worker].insert(u.id) {
                total += u.bytes;
            }
        }
        total
    }

    /// Forgets everything a worker has seen (used when a worker is replaced
    /// after failure — a fresh executor has an empty broadcast cache).
    pub fn reset_worker(&mut self, worker: usize) {
        self.seen[worker].clear();
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.seen.len()
    }

    /// Grows the registry by one worker (a mid-run join); the new worker
    /// has seen nothing and pays every broadcast on first use.
    pub fn add_worker(&mut self) -> usize {
        self.seen.push(std::collections::HashSet::new());
        self.seen.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_ids_and_sizes() {
        let mut reg = BroadcastRegistry::new(2);
        let a = reg.create(vec![1.0f64; 10]);
        let b = reg.create(2.0f64);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.bytes(), 8 + 80);
        assert_eq!(b.bytes(), 8);
        assert_eq!(*b.value(), 2.0);
    }

    #[test]
    fn first_use_charges_then_free() {
        let mut reg = BroadcastRegistry::new(2);
        let a = reg.create(vec![0.0f64; 100]);
        let uses = [a.charge()];
        assert_eq!(reg.charge_for(0, &uses), a.bytes());
        assert_eq!(reg.charge_for(0, &uses), 0);
        // Other worker still pays once.
        assert_eq!(reg.charge_for(1, &uses), a.bytes());
    }

    #[test]
    fn reset_worker_forces_recharge() {
        let mut reg = BroadcastRegistry::new(1);
        let a = reg.create(1.0f64);
        assert_eq!(reg.charge_for(0, &[a.charge()]), 8);
        reg.reset_worker(0);
        assert_eq!(reg.charge_for(0, &[a.charge()]), 8);
    }

    #[test]
    fn multiple_uses_charge_independently() {
        let mut reg = BroadcastRegistry::new(1);
        let a = reg.create(vec![0.0f64; 4]);
        let b = reg.create(vec![0.0f64; 8]);
        let total = reg.charge_for(0, &[a.charge(), b.charge()]);
        assert_eq!(total, a.bytes() + b.bytes());
    }
}
