//! Remote engine: workers as separate OS processes over TCP.
//!
//! The third [`Engine`] backend. Where the simulator models a cluster and
//! the threaded engine runs one in-process thread per worker, this engine
//! makes "cloud engine" literal: each worker is its own process, connected
//! to the driver over a length-prefixed TCP framing ([`crate::frame`]), and
//! every task, gradient delta, and broadcast patch actually crosses a
//! socket in the same [`Payload`] encodings the in-process engines merely
//! account.
//!
//! ## Shipping tasks without shipping closures
//!
//! A [`Task`]'s closure cannot cross a process boundary, so the remote
//! engine is driven through [`Engine::submit_wired`]: alongside the (never
//! executed) closure it receives a [`WireTask`] — a routine id the worker
//! dispatches on, a `build` function producing the request bytes, and a
//! `decode` function for the response. `build` runs **driver-side at
//! submission** against a per-worker *mirror* [`WorkerCtx`] tracking
//! exactly which broadcast versions that worker incarnation holds; this is
//! the same instant the simulator runs task closures, so version
//! resolution, history reads, and byte accounting agree with the
//! deterministic oracle. The mirror's fetch charges (model snapshots,
//! patches, shipped partitions) fold into the task's `bytes_in` just as a
//! worker-side cache miss would on the simulator.
//!
//! ## Failures are real — scripted and unscripted
//!
//! The epoch-guard + chaos machinery maps onto real connection drops:
//!
//! * [`Engine::kill_worker`] kills the worker *process* (socket shutdown +
//!   SIGKILL) and surfaces each in-flight task as [`Completion::Lost`];
//! * a spontaneously dropped socket is detected by the per-connection
//!   reader thread and handled identically — lost tasks, dead worker;
//! * [`Engine::revive_worker`] / [`Engine::add_worker`] spawn a fresh
//!   process at a bumped epoch; any result a dying incarnation managed to
//!   flush is dropped by the same epoch check the threaded engine uses;
//! * a [`ChaosSchedule`](async_cluster::ChaosSchedule) installed through
//!   the driver therefore drives actual process kills and respawns.
//!
//! On top of the scripted paths sits the **supervision layer**, which
//! catches failures nobody scheduled:
//!
//! * **Heartbeats** ([`RemoteConfig::heartbeat`]): each worker incarnation
//!   beats from a dedicated thread; the driver tracks the last frame seen
//!   per worker (beats *and* completions count) and, past the
//!   [`RemoteConfig::liveness`] deadline of silence, declares the worker
//!   dead exactly as if its socket had dropped — which catches a hung
//!   process or a one-way partition that keeps the TCP session open.
//! * **Task deadlines** ([`RemoteConfig::task_deadline`]): a submission
//!   whose completion does not arrive in time kills the incarnation (epoch
//!   bump) and surfaces the task as [`Completion::Lost`], so a worker that
//!   still beats but stopped producing results cannot wedge a wave. Late
//!   results from the killed incarnation are dropped by the epoch guard
//!   like any stale completion.
//! * **Fault injection** ([`RemoteConfig::fault`]): a seeded
//!   [`FaultPlan`] drops/delays/duplicates/truncates/resets frames on
//!   either direction, which is how the supervision paths are proven —
//!   see [`crate::fault`].
//!
//! All supervision knobs default *off*; a default-configured engine is
//! byte-for-byte the pre-supervision engine.
//!
//! Straggler delays are computed driver-side from the cluster spec
//! (modelled cost + communication time, scaled by `time_scale` and the
//! worker's delay factor) and shipped in the submission; the worker sleeps
//! them after computing, plus the factor-stretch of its measured compute
//! time — the threaded engine's formula, across a socket.
//!
//! [`Payload`]: crate::payload::Payload

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};

use async_cluster::straggler::DelayAssignment;
use async_cluster::{ClusterSpec, CommModel, VTime, WorkerId, WorkerProfile};

use crate::engine::{Completion, Engine, EngineError, Task, TaskDone, TaskOutput, WireTask};
use crate::fault::{FaultAction, FaultDir, FaultInjector, FaultPlan};
use crate::frame::{encode_frame, read_frame, write_frame, Msg};
use crate::payload::DecodeError;
use crate::worker::WorkerCtx;

/// Default for [`RemoteConfig::handshake_timeout`].
const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default for [`RemoteConfig::poll_interval`].
const DEFAULT_POLL_INTERVAL: Duration = Duration::from_micros(500);

/// How a [`RemoteEngine`] starts worker incarnations.
pub enum WorkerLauncher {
    /// Spawn `program args.. --connect <addr> --worker <id> --epoch <e>`
    /// (plus `--beat-us <n>` / `--fault <spec>` when heartbeats or fault
    /// injection are configured) as a child process. The program is
    /// expected to call [`worker_main`] (or [`run_worker_with`]) with its
    /// routine registry.
    Process {
        /// Worker executable.
        program: PathBuf,
        /// Extra arguments placed before the `--connect ..` triple.
        args: Vec<String>,
    },
    /// Run [`run_worker_with`] on an in-process thread — still a real TCP
    /// connection through the loopback interface, just without the
    /// process-management half. Used by tests that exercise the wire
    /// protocol, epoch guard, and disconnect handling in isolation.
    Loopback(Arc<dyn Fn() -> RoutineRegistry + Send + Sync>),
}

/// Configuration for [`RemoteEngine::new`]. Everything beyond `addr` and
/// `launcher` defaults to the unsupervised engine: generous handshake
/// timeout, no heartbeats, no deadlines, one task in flight per worker,
/// zero-fault transport.
pub struct RemoteConfig {
    /// Address the driver listens on; workers connect back to it.
    /// `127.0.0.1:0` (any free loopback port) by default.
    pub addr: String,
    /// How worker processes are started.
    pub launcher: WorkerLauncher,
    /// How long to wait for a freshly spawned worker process to connect
    /// and greet before declaring the spawn failed (default 10 s).
    pub handshake_timeout: Duration,
    /// Upper bound on how long the result pump blocks per wait *while a
    /// timer is armed* (scheduled chaos, liveness, or task deadlines).
    /// The pump waits exactly until the earliest deadline, capped by this
    /// (default 500 µs, the historical poll cadence); with no timers armed
    /// it parks on a blocking receive and burns no cycles.
    pub poll_interval: Duration,
    /// Worker heartbeat period. `None` (default) disables heartbeats.
    pub heartbeat: Option<Duration>,
    /// Liveness deadline: a worker whose frames (beats or completions)
    /// stop arriving for this long is declared dead. Requires `heartbeat`.
    /// `None` (default) disables the check.
    pub liveness: Option<Duration>,
    /// Per-task deadline: an in-flight submission older than this kills
    /// the worker incarnation and surfaces the task as lost. `None`
    /// (default) disables the check.
    pub task_deadline: Option<Duration>,
    /// Bound on tasks in flight per worker (default 1). Submissions past
    /// the bound return [`EngineError::WorkerBusy`]; see
    /// [`RemoteEngine::submit_wired_blocking`] for the blocking variant.
    pub max_inflight: usize,
    /// Wire-level fault injection plan (default zero — no faults).
    pub fault: FaultPlan,
}

impl RemoteConfig {
    fn with_launcher(launcher: WorkerLauncher) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            launcher,
            handshake_timeout: DEFAULT_HANDSHAKE_TIMEOUT,
            poll_interval: DEFAULT_POLL_INTERVAL,
            heartbeat: None,
            liveness: None,
            task_deadline: None,
            max_inflight: 1,
            fault: FaultPlan::none(),
        }
    }

    /// Process-launching config using `program` as the worker binary.
    pub fn process(program: PathBuf) -> Self {
        Self::with_launcher(WorkerLauncher::Process {
            program,
            args: Vec::new(),
        })
    }

    /// Loopback-thread config (tests); `registry` builds each worker
    /// incarnation's routine table.
    pub fn loopback(registry: Arc<dyn Fn() -> RoutineRegistry + Send + Sync>) -> Self {
        Self::with_launcher(WorkerLauncher::Loopback(registry))
    }
}

/// Locates the conventional worker binary (`async_worker`): the
/// `ASYNC_WORKER_BIN` environment variable if set, otherwise a file named
/// `async_worker` next to (or in an ancestor target directory of) the
/// current executable — which finds `target/<profile>/async_worker` from
/// test binaries, benches, and examples alike.
pub fn default_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("ASYNC_WORKER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join("async_worker");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// One worker incarnation's driver-side connection state.
struct WorkerConn {
    /// Write half (a dup of the reader thread's stream).
    stream: TcpStream,
    /// The child process, when launched as one.
    child: Option<Child>,
}

/// What the per-connection reader threads report.
enum WireEvent {
    /// A completion frame arrived.
    Done {
        worker: WorkerId,
        epoch: u64,
        tag: u64,
        response: Vec<u8>,
    },
    /// A heartbeat frame arrived.
    Beat { worker: WorkerId, epoch: u64 },
    /// The connection dropped (EOF, reset, or a malformed frame).
    Gone { worker: WorkerId, epoch: u64 },
}

/// One in-flight wired task: response decoding + accounting plus the
/// issue instants the deadline check and the completion report need.
struct InflightEntry {
    tag: u64,
    #[allow(clippy::type_complexity)]
    decode: Box<dyn Fn(&[u8]) -> Result<TaskOutput, DecodeError> + Send>,
    bytes_in: u64,
    issued_at: VTime,
    issued_real: Instant,
}

/// A membership change scheduled against elapsed engine time.
enum PendingChaos {
    Fail(WorkerId),
    Revive(WorkerId),
    Join,
}

/// The remote multi-process engine. See the module docs.
pub struct RemoteEngine {
    spec: ClusterSpec,
    assignment: Arc<DelayAssignment>,
    comm: CommModel,
    time_scale: f64,
    start: Instant,
    listener: TcpListener,
    local_addr: String,
    launcher: WorkerLauncher,
    handshake_timeout: Duration,
    poll_interval: Duration,
    heartbeat: Option<Duration>,
    liveness: Option<Duration>,
    task_deadline: Option<Duration>,
    max_inflight: usize,
    fault: FaultPlan,
    conns: Vec<Option<WorkerConn>>,
    readers: Vec<Option<std::thread::JoinHandle<()>>>,
    results_tx: Sender<WireEvent>,
    results_rx: Receiver<WireEvent>,
    /// Driver-side mirror of each worker incarnation's cache: which
    /// `(broadcast, version)` keys (and shipped partitions) it holds.
    /// Reset to empty on revive/join, exactly like the real cache.
    mirrors: Vec<WorkerCtx>,
    dead: Vec<bool>,
    /// Worker incarnation counters; bumped on kill so orphaned completions
    /// and a revived executor can never be confused.
    epoch: Vec<u64>,
    /// Per-worker FIFO of in-flight submissions (bounded by
    /// `max_inflight`).
    inflight: Vec<VecDeque<InflightEntry>>,
    /// Last instant each worker proved it was alive (handshake, beat, or
    /// completion).
    last_beat: Vec<Instant>,
    /// Driver→worker fault injectors, one per live incarnation when the
    /// plan is non-zero.
    injectors: Vec<Option<FaultInjector>>,
    task_seq: Vec<u64>,
    pending: usize,
    queued: VecDeque<Completion>,
    chaos: VecDeque<(VTime, PendingChaos)>,
}

impl RemoteEngine {
    /// Binds the driver listener and spawns one worker process (or
    /// loopback thread) per cluster worker, waiting for each to connect
    /// and greet.
    ///
    /// # Panics
    /// Panics if the spec fails validation or `time_scale` is negative.
    /// Transport failures (bind, spawn, handshake) return
    /// [`EngineError::Io`]; a liveness deadline without a heartbeat period
    /// is rejected as `Io(InvalidInput)` (silent workers would all be
    /// declared dead).
    pub fn new(spec: ClusterSpec, time_scale: f64, cfg: RemoteConfig) -> Result<Self, EngineError> {
        spec.validate().expect("invalid cluster spec");
        assert!(time_scale >= 0.0, "time_scale must be nonnegative");
        assert!(cfg.max_inflight >= 1, "max_inflight must be at least 1");
        if cfg.liveness.is_some() && cfg.heartbeat.is_none() {
            return Err(EngineError::Io(io::ErrorKind::InvalidInput));
        }
        let n = spec.workers;
        let assignment = Arc::new(spec.delay.assign(n));
        let comm = spec.comm.clone();
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| EngineError::Io(e.kind()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| EngineError::Io(e.kind()))?
            .to_string();
        let (res_tx, res_rx) = unbounded::<WireEvent>();
        let now = Instant::now();
        let mut engine = Self {
            spec,
            assignment,
            comm,
            time_scale,
            start: now,
            listener,
            local_addr,
            launcher: cfg.launcher,
            handshake_timeout: cfg.handshake_timeout,
            poll_interval: cfg.poll_interval.max(Duration::from_micros(1)),
            heartbeat: cfg.heartbeat,
            liveness: cfg.liveness,
            task_deadline: cfg.task_deadline,
            max_inflight: cfg.max_inflight,
            fault: cfg.fault,
            conns: Vec::with_capacity(n),
            readers: Vec::with_capacity(n),
            results_tx: res_tx,
            results_rx: res_rx,
            mirrors: (0..n).map(WorkerCtx::new).collect(),
            dead: vec![false; n],
            epoch: vec![0; n],
            inflight: (0..n).map(|_| VecDeque::new()).collect(),
            last_beat: vec![now; n],
            injectors: (0..n).map(|_| None).collect(),
            task_seq: vec![0; n],
            pending: 0,
            queued: VecDeque::new(),
            chaos: VecDeque::new(),
        };
        for w in 0..n {
            engine.conns.push(None);
            engine.readers.push(None);
            engine
                .spawn_worker(w)
                .map_err(|e| EngineError::Io(e.kind()))?;
        }
        Ok(engine)
    }

    /// The address workers connect back to (useful when binding port 0).
    pub fn addr(&self) -> &str {
        &self.local_addr
    }

    /// Launches incarnation `self.epoch[w]` of worker `w` and completes
    /// the connection handshake.
    fn spawn_worker(&mut self, w: WorkerId) -> io::Result<()> {
        let epoch = self.epoch[w];
        let opts = WorkerOpts {
            heartbeat: self.heartbeat,
            fault: self.fault.clone(),
        };
        let mut child = match &self.launcher {
            WorkerLauncher::Process { program, args } => {
                let mut cmd = Command::new(program);
                cmd.args(args)
                    .arg("--connect")
                    .arg(&self.local_addr)
                    .arg("--worker")
                    .arg(w.to_string())
                    .arg("--epoch")
                    .arg(epoch.to_string());
                if let Some(beat) = opts.heartbeat {
                    cmd.arg("--beat-us").arg(beat.as_micros().to_string());
                }
                if !opts.fault.is_zero() {
                    cmd.arg("--fault").arg(opts.fault.to_spec());
                }
                Some(cmd.stdin(Stdio::null()).spawn()?)
            }
            WorkerLauncher::Loopback(factory) => {
                let addr = self.local_addr.clone();
                let factory = Arc::clone(factory);
                std::thread::Builder::new()
                    .name(format!("remote-loopback-{w}-e{epoch}"))
                    .spawn(move || {
                        let _ = run_worker_with(&addr, w as u32, epoch, factory(), opts);
                    })?;
                None
            }
        };
        let stream = match self.await_hello(w, epoch, child.as_mut()) {
            Ok(s) => s,
            Err(e) => {
                if let Some(mut c) = child {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        };
        let reader_stream = stream.try_clone()?;
        self.conns[w] = Some(WorkerConn { stream, child });
        self.last_beat[w] = Instant::now();
        self.injectors[w] = self
            .fault
            .applies(FaultDir::DriverToWorker)
            .then(|| self.fault.injector(w, epoch, FaultDir::DriverToWorker));
        let tx = self.results_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("remote-reader-{w}-e{epoch}"))
            .spawn(move || reader_loop(w, epoch, reader_stream, tx))?;
        if let Some(old) = self.readers[w].replace(handle) {
            let _ = old.join();
        }
        Ok(())
    }

    /// Accepts connections until incarnation `epoch` of worker `w` greets,
    /// dropping stale or foreign greetings, with a deadline.
    fn await_hello(
        &self,
        w: WorkerId,
        epoch: u64,
        mut child: Option<&mut Child>,
    ) -> io::Result<TcpStream> {
        let timeout = self.handshake_timeout;
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(timeout))?;
                    match read_frame(&mut stream) {
                        Ok(Msg::WorkerUp {
                            worker,
                            epoch: greeted,
                        }) if worker as WorkerId == w && greeted == epoch => {
                            stream.set_read_timeout(None)?;
                            stream.set_nodelay(true)?;
                            return Ok(stream);
                        }
                        // A greeting from a stale incarnation or unexpected
                        // worker, a torn frame from a peer that dropped
                        // mid-handshake, or outright garbage: close it and
                        // keep waiting for ours.
                        _ => {
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(c) = child.as_deref_mut() {
                        if let Some(status) = c.try_wait()? {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionRefused,
                                format!("worker {w} exited before connecting: {status}"),
                            ));
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("worker {w} did not connect within {timeout:?}"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn elapsed(&self) -> VTime {
        VTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Tears down worker `w`'s current incarnation: socket shutdown, child
    /// kill + reap. The reader thread exits on the dropped connection and
    /// its `Gone` event is epoch-filtered.
    fn teardown_conn(&mut self, w: WorkerId) {
        if let Some(mut conn) = self.conns[w].take() {
            let _ = write_frame(&mut conn.stream, &Msg::Shutdown);
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(mut child) = conn.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    /// Marks `w` dead at a bumped epoch and queues the loss
    /// notifications — shared by explicit kills, detected disconnects,
    /// and missed liveness/task deadlines. Every queued in-flight task
    /// surfaces as its own [`Completion::Lost`] (FIFO order); an idle
    /// death queues [`Completion::WorkerDown`].
    fn mark_dead(&mut self, w: WorkerId) {
        self.dead[w] = true;
        self.epoch[w] += 1;
        self.injectors[w] = None;
        let lost: Vec<u64> = self.inflight[w].drain(..).map(|e| e.tag).collect();
        if lost.is_empty() {
            self.queued.push_back(Completion::WorkerDown { worker: w });
        } else {
            self.pending -= lost.len();
            for tag in lost {
                self.queued.push_back(Completion::Lost { worker: w, tag });
            }
        }
    }

    /// Applies scheduled membership events whose instant has passed.
    fn apply_due_chaos(&mut self) {
        while let Some(&(at, _)) = self.chaos.front() {
            if at > self.elapsed() {
                break;
            }
            let (_, ev) = self.chaos.pop_front().expect("checked front");
            match ev {
                PendingChaos::Fail(w) => self.kill_worker(w),
                PendingChaos::Revive(w) => {
                    let _ = self.revive_worker(w); // no-op if already alive
                }
                PendingChaos::Join => {
                    self.add_worker();
                }
            }
        }
    }

    /// Declares workers dead for missed liveness or task deadlines. Runs
    /// alongside `apply_due_chaos` in every pump iteration; both checks
    /// are no-ops unless configured.
    fn enforce_deadlines(&mut self) {
        if self.liveness.is_none() && self.task_deadline.is_none() {
            return;
        }
        let now = Instant::now();
        let mut victims: Vec<WorkerId> = Vec::new();
        for w in 0..self.spec.workers {
            if self.dead[w] {
                continue;
            }
            let silent = self
                .liveness
                .is_some_and(|liv| now.duration_since(self.last_beat[w]) > liv);
            let overdue = self.task_deadline.is_some_and(|dl| {
                self.inflight[w]
                    .front()
                    .is_some_and(|e| now.duration_since(e.issued_real) > dl)
            });
            if silent || overdue {
                victims.push(w);
            }
        }
        for w in victims {
            self.teardown_conn(w);
            self.mark_dead(w);
        }
    }

    /// Time until the earliest armed timer (scheduled chaos, liveness
    /// deadline, task deadline), or `None` when no timer is armed and the
    /// pump can park indefinitely.
    fn wait_horizon(&self) -> Option<Duration> {
        let mut horizon: Option<Duration> = None;
        let mut fold = |d: Duration| {
            horizon = Some(match horizon {
                Some(h) => h.min(d),
                None => d,
            });
        };
        if let Some(&(at, _)) = self.chaos.front() {
            let left = at.saturating_since(self.elapsed());
            fold(Duration::from_micros(left.as_micros()));
        }
        let now = Instant::now();
        if let Some(liv) = self.liveness {
            for w in 0..self.spec.workers {
                if !self.dead[w] {
                    fold((self.last_beat[w] + liv).saturating_duration_since(now));
                }
            }
        }
        if let Some(dl) = self.task_deadline {
            for w in 0..self.spec.workers {
                if self.dead[w] {
                    continue;
                }
                if let Some(e) = self.inflight[w].front() {
                    fold((e.issued_real + dl).saturating_duration_since(now));
                }
            }
        }
        horizon
    }

    /// One deadline-aware wait on the result channel: parks indefinitely
    /// when no timer is armed, otherwise until the earliest deadline
    /// (capped by `poll_interval`, the historical cadence).
    fn wait_event(&self) -> Result<WireEvent, RecvTimeoutError> {
        match self.wait_horizon() {
            None => self
                .results_rx
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected),
            Some(d) => self.results_rx.recv_timeout(d.min(self.poll_interval)),
        }
    }

    /// Inserts a scheduled event keeping the list time-sorted (stable).
    fn push_chaos(&mut self, at: VTime, ev: PendingChaos) {
        let pos = self.chaos.iter().position(|&(t, _)| t > at);
        match pos {
            Some(i) => self.chaos.insert(i, (at, ev)),
            None => self.chaos.push_back((at, ev)),
        }
    }

    fn accept(&mut self, ev: WireEvent) -> Option<Completion> {
        match ev {
            WireEvent::Done {
                worker,
                epoch,
                tag,
                response,
            } => {
                if self.dead[worker] || epoch != self.epoch[worker] {
                    // Orphaned result flushed by a killed incarnation
                    // before its socket died: its loss was already
                    // reported.
                    return None;
                }
                // Any frame proves liveness.
                self.last_beat[worker] = Instant::now();
                let finished_at = self.elapsed();
                let pos = self.inflight[worker].iter().position(|e| e.tag == tag);
                let Some(pos) = pos else {
                    // An unsolicited completion — a duplicated frame or a
                    // protocol violation. Nothing is owed for it; drop it.
                    return None;
                };
                let entry = self.inflight[worker].remove(pos).expect("position exists");
                match (entry.decode)(&response) {
                    Ok(output) => {
                        self.pending -= 1;
                        Some(Completion::Done(TaskDone {
                            worker,
                            tag,
                            output,
                            issued_at: entry.issued_at,
                            finished_at,
                            service_time: finished_at.saturating_since(entry.issued_at),
                            bytes_in: entry.bytes_in,
                        }))
                    }
                    Err(_) => {
                        // A response this driver cannot decode means the
                        // incarnation is not speaking the protocol — treat
                        // it like a crashed worker: tear down, report every
                        // queued task lost. The entry was already removed;
                        // account its loss here, the rest via `mark_dead`.
                        self.pending -= 1;
                        self.queued.push_back(Completion::Lost { worker, tag });
                        self.teardown_conn(worker);
                        self.mark_dead(worker);
                        None
                    }
                }
            }
            WireEvent::Beat { worker, epoch } => {
                if !self.dead[worker] && epoch == self.epoch[worker] {
                    self.last_beat[worker] = Instant::now();
                }
                None
            }
            WireEvent::Gone { worker, epoch } => {
                if self.dead[worker] || epoch != self.epoch[worker] {
                    return None; // expected: we tore this connection down
                }
                // A real, uncommanded connection drop: dropped socket →
                // lost tasks, dead worker (revivable like any other death).
                self.teardown_conn(worker);
                self.mark_dead(worker);
                None
            }
        }
    }

    /// Drains every event already sitting in the result channel into the
    /// completion queue. Run before enforcing deadlines so liveness
    /// verdicts see the freshest beats — a driver that slept between pump
    /// calls must not declare a dutifully beating worker dead on stale
    /// bookkeeping.
    fn drain_ready_events(&mut self) {
        while let Ok(ev) = self.results_rx.try_recv() {
            if let Some(c) = self.accept(ev) {
                self.queued.push_back(c);
            }
        }
    }

    /// Like [`Engine::submit_wired`], but when worker `w` is at its
    /// in-flight bound this blocks — pumping arriving results into the
    /// completion queue — until a slot frees, the worker dies, or the
    /// event channel closes. The backpressure face of
    /// [`RemoteConfig::max_inflight`].
    pub fn submit_wired_blocking(
        &mut self,
        w: WorkerId,
        task: Task,
        wire: WireTask,
    ) -> Result<(), EngineError> {
        loop {
            self.drain_ready_events();
            self.apply_due_chaos();
            self.enforce_deadlines();
            if self.dead[w] {
                return Err(EngineError::WorkerDead(w));
            }
            if self.inflight[w].len() < self.max_inflight {
                return self.submit_wired(w, task, wire);
            }
            match self.wait_event() {
                Ok(ev) => {
                    if let Some(c) = self.accept(ev) {
                        self.queued.push_back(c);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(EngineError::Disconnected(w)),
            }
        }
    }
}

/// Writes one frame through a fault injector: delivers, drops, delays,
/// duplicates, truncates (torn frame + shutdown), or resets per the
/// injector's deterministic stream. Truncate and reset return an error —
/// the connection is gone, exactly like a peer dying mid-write.
fn write_with_faults(stream: &mut TcpStream, msg: &Msg, inj: &mut FaultInjector) -> io::Result<()> {
    let mut buf = BytesMut::new();
    encode_frame(msg, &mut buf);
    match inj.next_action(buf.len()) {
        FaultAction::Deliver => {
            stream.write_all(&buf)?;
            stream.flush()
        }
        FaultAction::Drop => Ok(()),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            stream.write_all(&buf)?;
            stream.flush()
        }
        FaultAction::Duplicate => {
            stream.write_all(&buf)?;
            stream.write_all(&buf)?;
            stream.flush()
        }
        FaultAction::Truncate(n) => {
            let _ = stream.write_all(&buf[..n]);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault injection: torn frame",
            ))
        }
        FaultAction::Reset => {
            let _ = stream.shutdown(Shutdown::Both);
            Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "fault injection: connection reset",
            ))
        }
    }
}

fn reader_loop(w: WorkerId, epoch: u64, mut stream: TcpStream, tx: Sender<WireEvent>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Msg::Completion {
                tag,
                epoch: e,
                response,
            }) => {
                if tx
                    .send(WireEvent::Done {
                        worker: w,
                        epoch: e,
                        tag,
                        response,
                    })
                    .is_err()
                {
                    break; // engine dropped
                }
            }
            Ok(Msg::Heartbeat { epoch: e, .. }) => {
                // Trust the connection's identity over the frame's worker
                // field, like completions; the epoch still guards staleness.
                if tx
                    .send(WireEvent::Beat {
                        worker: w,
                        epoch: e,
                    })
                    .is_err()
                {
                    break;
                }
            }
            Ok(_) => continue,
            Err(_) => {
                let _ = tx.send(WireEvent::Gone { worker: w, epoch });
                break;
            }
        }
    }
}

impl Engine for RemoteEngine {
    fn workers(&self) -> usize {
        self.spec.workers
    }

    fn now(&self) -> VTime {
        self.elapsed()
    }

    fn available(&self, w: WorkerId) -> bool {
        !self.dead[w] && self.inflight[w].len() < self.max_inflight
    }

    fn alive(&self, w: WorkerId) -> bool {
        !self.dead[w]
    }

    /// Closure-only submissions cannot cross a process boundary; the
    /// remote engine accepts work only through [`Engine::submit_wired`].
    fn submit(&mut self, _w: WorkerId, _task: Task) -> Result<(), EngineError> {
        Err(EngineError::Io(io::ErrorKind::Unsupported))
    }

    fn submit_wired(&mut self, w: WorkerId, task: Task, wire: WireTask) -> Result<(), EngineError> {
        if self.dead[w] {
            return Err(EngineError::WorkerDead(w));
        }
        if self.inflight[w].len() >= self.max_inflight {
            return Err(EngineError::WorkerBusy(w));
        }
        let seq = self.task_seq[w];
        self.task_seq[w] += 1;
        // Build the request against the worker's mirrored cache — the
        // remote analogue of the simulator running the closure at
        // submission. Fetch charges (snapshots, patches, shipped blocks)
        // fold into the task's bytes exactly as worker-side misses would.
        let request = (wire.build)(&mut self.mirrors[w]);
        let (extra_bytes, extra_time) = self.mirrors[w].take_charges();
        let total_bytes = task.bytes_in + extra_bytes;
        let factor = self.assignment.factor(w, seq);
        let modelled = self.spec.profiles[w].exec_time(task.cost)
            + self.comm.transfer_time(total_bytes)
            + extra_time;
        let sleep_us = (modelled.as_micros() as f64 * self.time_scale * factor) as u64;
        let msg = Msg::Submit {
            tag: task.tag,
            epoch: self.epoch[w],
            routine: wire.routine,
            sleep_us,
            slow_factor: (factor - 1.0).max(0.0),
            request,
        };
        let conn = self.conns[w]
            .as_mut()
            .expect("alive worker has a connection");
        let written = match self.injectors[w].as_mut() {
            Some(inj) => write_with_faults(&mut conn.stream, &msg, inj),
            None => write_frame(&mut conn.stream, &msg),
        };
        if written.is_err() {
            // The process died under us between completions (or fault
            // injection reset the connection): surface the death now. The
            // task was never accepted, so it is not among the losses
            // `mark_dead` queues for previously accepted submissions.
            self.teardown_conn(w);
            self.mark_dead(w);
            return Err(EngineError::Disconnected(w));
        }
        let issued_at = self.elapsed();
        self.inflight[w].push_back(InflightEntry {
            tag: task.tag,
            decode: wire.decode,
            bytes_in: total_bytes,
            issued_at,
            issued_real: Instant::now(),
        });
        self.pending += 1;
        Ok(())
    }

    fn next(&mut self) -> Option<Completion> {
        loop {
            self.drain_ready_events();
            self.apply_due_chaos();
            self.enforce_deadlines();
            if let Some(c) = self.queued.pop_front() {
                return Some(c);
            }
            if self.pending == 0 {
                // Nothing in flight: return rather than block real time
                // until a *future* scheduled membership event (same
                // divergence from the simulator as the threaded backend —
                // see `ThreadedEngine::next`).
                return None;
            }
            match self.wait_event() {
                Ok(ev) => {
                    if let Some(c) = self.accept(ev) {
                        return Some(c);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn try_next(&mut self) -> Option<Completion> {
        self.drain_ready_events();
        self.apply_due_chaos();
        self.enforce_deadlines();
        self.queued.pop_front()
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn kill_worker(&mut self, w: WorkerId) {
        if self.dead[w] {
            return;
        }
        self.teardown_conn(w);
        self.mark_dead(w);
    }

    fn revive_worker(&mut self, w: WorkerId) -> Result<(), EngineError> {
        if !self.dead[w] {
            return Err(EngineError::WorkerAlive(w));
        }
        // A fresh incarnation: new process, new connection, and an empty
        // mirror — the next wired submission re-ships whatever it needs.
        self.mirrors[w] = WorkerCtx::new(w);
        self.spawn_worker(w)
            .map_err(|e| EngineError::Io(e.kind()))?;
        self.dead[w] = false;
        self.inflight[w].clear();
        self.queued.push_back(Completion::WorkerUp { worker: w });
        Ok(())
    }

    fn add_worker(&mut self) -> WorkerId {
        let w = self.spec.workers;
        self.spec.workers += 1;
        self.spec.profiles.push(WorkerProfile::default_speed());
        self.mirrors.push(WorkerCtx::new(w));
        self.dead.push(false);
        self.epoch.push(0);
        self.inflight.push(VecDeque::new());
        self.last_beat.push(Instant::now());
        self.injectors.push(None);
        self.task_seq.push(0);
        self.conns.push(None);
        self.readers.push(None);
        if let Err(e) = self.spawn_worker(w) {
            // The join happened (ids are dense and allocated), but the
            // worker is unusable: record it dead so the engine stays
            // consistent. Chaos-driven joins tolerate this.
            eprintln!("remote engine: failed to spawn joined worker {w}: {e}");
            self.dead[w] = true;
            self.queued.push_back(Completion::WorkerDown { worker: w });
            return w;
        }
        self.queued.push_back(Completion::WorkerUp { worker: w });
        w
    }

    fn schedule_failure(&mut self, w: WorkerId, at: VTime) {
        self.push_chaos(at, PendingChaos::Fail(w));
    }

    fn schedule_revival(&mut self, w: WorkerId, at: VTime) {
        self.push_chaos(at, PendingChaos::Revive(w));
    }

    fn schedule_join(&mut self, at: VTime) {
        self.push_chaos(at, PendingChaos::Join);
    }

    fn next_event_at(&self) -> Option<VTime> {
        self.chaos.front().map(|&(at, _)| at)
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        for w in 0..self.conns.len() {
            self.teardown_conn(w);
        }
        for h in self.readers.iter_mut() {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker-process side
// ---------------------------------------------------------------------------

/// A worker-side request handler: decode the request bytes, compute
/// against the worker's local cache, encode the response bytes.
pub type RoutineFn = Box<dyn Fn(&mut WorkerCtx, &[u8]) -> Result<Vec<u8>, DecodeError>>;

/// Maps routine ids to handlers; each worker incarnation owns one.
#[derive(Default)]
pub struct RoutineRegistry {
    handlers: HashMap<u32, RoutineFn>,
}

impl RoutineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `f` as routine `id`, replacing any previous handler.
    pub fn register(
        &mut self,
        id: u32,
        f: impl Fn(&mut WorkerCtx, &[u8]) -> Result<Vec<u8>, DecodeError> + 'static,
    ) {
        self.handlers.insert(id, Box::new(f));
    }
}

/// Worker-side runtime options: the heartbeat period the driver asked for
/// and the transport fault plan this endpoint applies to its own writes.
/// Defaults are "no beats, no faults" — the pre-supervision worker.
#[derive(Clone, Debug, Default)]
pub struct WorkerOpts {
    /// Heartbeat period (`--beat-us` on a worker command line).
    pub heartbeat: Option<Duration>,
    /// Fault plan for worker→driver frames (`--fault <spec>`).
    pub fault: FaultPlan,
}

/// The generic worker-process loop: connect back to the driver, greet,
/// then serve submissions until shutdown or disconnect. [`run_worker`] is
/// the options-free shorthand.
///
/// A request naming an unregistered routine, or one whose handler reports
/// a decode error, terminates the worker with an error — the driver
/// observes the dropped connection and reports the in-flight task lost,
/// which is exactly the fault model for a crashed executor.
///
/// With a heartbeat period set, a dedicated thread beats over the same
/// connection (writes are mutex-serialized with completions) so a
/// long-running routine never silences the worker. With a non-zero fault
/// plan, completion and heartbeat writes pass through this worker's
/// deterministic [`FaultInjector`]; the greeting is exempt (see
/// [`crate::fault`]). A hang-faulted worker keeps computing but stops
/// writing anything — the driver-side liveness deadline is the only way
/// to notice.
pub fn run_worker_with(
    addr: &str,
    worker: u32,
    epoch: u64,
    registry: RoutineRegistry,
    opts: WorkerOpts,
) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let write = Arc::new(Mutex::new(stream.try_clone()?));
    let mut read = stream;
    {
        let mut wh = write.lock().expect("fresh write lock");
        write_frame(&mut *wh, &Msg::WorkerUp { worker, epoch })?;
    }
    let mut inj = opts.fault.applies(FaultDir::WorkerToDriver).then(|| {
        opts.fault
            .injector(worker as usize, epoch, FaultDir::WorkerToDriver)
    });
    let hung = Arc::new(AtomicBool::new(false));
    if inj.as_ref().is_some_and(|i| i.hang_reached()) {
        hung.store(true, Ordering::SeqCst);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let beat_handle = opts.heartbeat.map(|period| {
        let write = Arc::clone(&write);
        let hung = Arc::clone(&hung);
        let stop = Arc::clone(&stop);
        // The beat thread gets its own injector stream, decorrelated from
        // the completion stream by flipping the epoch's top bit; the hang
        // verdict is shared through the flag so "hung" silences both.
        let mut binj = opts.fault.applies(FaultDir::WorkerToDriver).then(|| {
            opts.fault
                .injector(worker as usize, epoch | (1 << 63), FaultDir::WorkerToDriver)
        });
        std::thread::Builder::new()
            .name(format!("worker-beat-{worker}-e{epoch}"))
            .spawn(move || loop {
                std::thread::sleep(period);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if hung.load(Ordering::SeqCst) {
                    continue;
                }
                let msg = Msg::Heartbeat { worker, epoch };
                let res = {
                    let mut s = write.lock().expect("beat write lock");
                    match binj.as_mut() {
                        Some(i) => write_with_faults(&mut s, &msg, i),
                        None => write_frame(&mut *s, &msg),
                    }
                };
                if res.is_err() {
                    break; // connection gone; the serve loop will see it too
                }
            })
            .expect("spawn beat thread")
    });
    let served = (|| -> io::Result<()> {
        let mut ctx = WorkerCtx::new(worker as WorkerId);
        loop {
            match read_frame(&mut read)? {
                Msg::Submit {
                    tag,
                    epoch: e,
                    routine,
                    sleep_us,
                    slow_factor,
                    request,
                } => {
                    let handler = registry.handlers.get(&routine).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("unregistered routine {routine}"),
                        )
                    })?;
                    let t0 = Instant::now();
                    let response = handler(&mut ctx, &request)
                        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
                    let measured = t0.elapsed();
                    // Byte charges are accounted by the driver-side mirror;
                    // drain the local ones so they never accumulate.
                    let _ = ctx.take_charges();
                    // The modelled (pre-scaled) delay shipped by the driver,
                    // plus the straggler stretch of real compute time — the
                    // threaded engine's sleep, across a socket.
                    let sleep = sleep_us as f64 + measured.as_secs_f64() * 1e6 * slow_factor;
                    if sleep >= 1.0 {
                        std::thread::sleep(Duration::from_micros(sleep as u64));
                    }
                    if hung.load(Ordering::SeqCst) {
                        // Hang fault: keep serving, write nothing.
                        continue;
                    }
                    let msg = Msg::Completion {
                        tag,
                        epoch: e,
                        response,
                    };
                    {
                        let mut s = write.lock().expect("completion write lock");
                        match inj.as_mut() {
                            Some(i) => write_with_faults(&mut s, &msg, i)?,
                            None => write_frame(&mut *s, &msg)?,
                        }
                    }
                    if inj.as_ref().is_some_and(|i| i.hang_reached()) {
                        hung.store(true, Ordering::SeqCst);
                    }
                }
                Msg::Shutdown => return Ok(()),
                // Nothing else is driver→worker; ignore rather than die.
                _ => continue,
            }
        }
    })();
    stop.store(true, Ordering::SeqCst);
    if let Some(h) = beat_handle {
        let _ = h.join();
    }
    served
}

/// [`run_worker_with`] with default options (no heartbeats, no faults) —
/// the original worker loop.
pub fn run_worker(
    addr: &str,
    worker: u32,
    epoch: u64,
    registry: RoutineRegistry,
) -> io::Result<()> {
    run_worker_with(addr, worker, epoch, registry, WorkerOpts::default())
}

/// Entry point for worker binaries: parses `--connect <addr> --worker <id>
/// --epoch <e>` (plus the optional `--beat-us <n>` heartbeat period and
/// `--fault <spec>` plan) from `std::env::args` and runs
/// [`run_worker_with`]. A worker binary is three lines: build a registry,
/// call this, exit.
pub fn worker_main(registry: RoutineRegistry) -> io::Result<()> {
    let mut addr = None;
    let mut worker = None;
    let mut epoch = 0u64;
    let mut opts = WorkerOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => addr = args.next(),
            "--worker" => worker = args.next().and_then(|v| v.parse::<u32>().ok()),
            "--epoch" => epoch = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--beat-us" => {
                opts.heartbeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_micros)
            }
            "--fault" => {
                let spec = args.next().unwrap_or_default();
                opts.fault = FaultPlan::from_spec(&spec)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            }
            _ => {}
        }
    }
    let (addr, worker) = match (addr, worker) {
        (Some(a), Some(w)) => (a, w),
        _ => return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "usage: --connect <addr> --worker <id> [--epoch <e>] [--beat-us <n>] [--fault <spec>]",
        )),
    };
    run_worker_with(&addr, worker, epoch, registry, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel, VDur};
    use bytes::BytesMut;

    use crate::payload::Payload;

    fn spec(workers: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(workers, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO)
    }

    /// Routine 1: interpret the request as a `u64`, return it doubled.
    fn doubling_registry() -> RoutineRegistry {
        let mut reg = RoutineRegistry::new();
        reg.register(1, |_ctx, req| {
            let (x, _) = u64::decode(req)?;
            let mut buf = BytesMut::new();
            (2 * x).encode(&mut buf);
            Ok(buf.into_vec())
        });
        reg
    }

    fn loopback_engine(workers: usize) -> RemoteEngine {
        RemoteEngine::new(
            spec(workers),
            0.0,
            RemoteConfig::loopback(Arc::new(doubling_registry)),
        )
        .expect("engine starts")
    }

    fn wired(tag: u64, x: u64) -> (Task, WireTask) {
        let task = Task {
            tag,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 1,
            build: Box::new(move |_mirror| {
                let mut buf = BytesMut::new();
                x.encode(&mut buf);
                buf.into_vec()
            }),
            decode: Box::new(|resp| {
                let (y, _) = u64::decode(resp)?;
                Ok(Box::new(y) as TaskOutput)
            }),
        };
        (task, wire)
    }

    #[test]
    fn round_trips_tasks_across_real_sockets() {
        let mut e = loopback_engine(3);
        for w in 0..3 {
            let (task, wire) = wired(w as u64, 100 + w as u64);
            e.submit_wired(w, task, wire).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        while let Some(c) = e.next() {
            match c {
                Completion::Done(d) => {
                    seen.insert(d.tag, *d.output.downcast::<u64>().unwrap());
                }
                other => panic!("unexpected completion: {:?}", completion_kind(&other)),
            }
        }
        assert_eq!(seen.len(), 3);
        for w in 0..3u64 {
            assert_eq!(seen[&w], 2 * (100 + w));
        }
        assert_eq!(e.pending(), 0);
    }

    fn completion_kind(c: &Completion) -> &'static str {
        match c {
            Completion::Done(_) => "Done",
            Completion::Lost { .. } => "Lost",
            Completion::WorkerDown { .. } => "WorkerDown",
            Completion::WorkerUp { .. } => "WorkerUp",
        }
    }

    #[test]
    fn plain_submit_is_rejected() {
        let mut e = loopback_engine(1);
        let err = e
            .submit(
                0,
                Task {
                    tag: 0,
                    cost: 0.0,
                    bytes_in: 0,
                    run: Box::new(|_| Box::new(())),
                },
            )
            .unwrap_err();
        assert_eq!(err, EngineError::Io(io::ErrorKind::Unsupported));
    }

    #[test]
    fn kill_closes_the_connection_and_reports_lost() {
        let mut e = loopback_engine(2);
        let (task, wire) = wired(9, 1);
        e.submit_wired(0, task, wire).unwrap();
        e.kill_worker(0);
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 9 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0));
        let (task, wire) = wired(1, 1);
        assert_eq!(
            e.submit_wired(0, task, wire).unwrap_err(),
            EngineError::WorkerDead(0)
        );
        // The orphaned completion (if the worker flushed one before the
        // socket died) must never surface.
        std::thread::sleep(Duration::from_millis(20));
        assert!(e.try_next().is_none());
        assert!(e.next().is_none());
    }

    #[test]
    fn revival_spawns_a_fresh_incarnation_with_an_empty_mirror() {
        let mut e = loopback_engine(1);
        let (task, wire) = wired(1, 5);
        e.submit_wired(0, task, wire).unwrap();
        while matches!(e.next(), Some(Completion::Done(_))) {}
        // Seed the mirror, then kill: the revived incarnation must not
        // remember the key.
        e.mirrors[0].cache_put_local((7, 0), Arc::new(()));
        e.kill_worker(0);
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 0 })
        ));
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        assert_eq!(e.mirrors[0].cache_len(), 0);
        let (task, wire) = wired(2, 21);
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => {
                assert_eq!(d.tag, 2);
                assert_eq!(*d.output.downcast::<u64>().unwrap(), 42);
            }
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn worker_crash_surfaces_as_lost_via_connection_drop() {
        // Routine 2 aborts the worker mid-task: the driver must observe
        // the dropped socket and report the task lost.
        let registry = Arc::new(|| {
            let mut reg = doubling_registry();
            reg.register(2, |_ctx, _req| {
                Err(DecodeError::Invalid {
                    at: 0,
                    what: "simulated worker crash",
                })
            });
            reg
        });
        let mut e = RemoteEngine::new(spec(1), 0.0, RemoteConfig::loopback(registry))
            .expect("engine starts");
        let task = Task {
            tag: 3,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 2,
            build: Box::new(|_| Vec::new()),
            decode: Box::new(|_| Ok(Box::new(()) as TaskOutput)),
        };
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 3 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0));
        // And the worker is revivable after a real crash.
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        let (task, wire) = wired(4, 8);
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(*d.output.downcast::<u64>().unwrap(), 16),
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn add_worker_joins_over_the_wire() {
        let mut e = loopback_engine(1);
        let w = e.add_worker();
        assert_eq!(w, 1);
        assert_eq!(e.workers(), 2);
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        let (task, wire) = wired(7, 35);
        e.submit_wired(1, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => {
                assert_eq!((d.worker, d.tag), (1, 7));
                assert_eq!(*d.output.downcast::<u64>().unwrap(), 70);
            }
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn mirror_charges_fold_into_task_bytes() {
        let mut e = loopback_engine(1);
        let task = Task {
            tag: 0,
            cost: 0.0,
            bytes_in: 10,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 1,
            build: Box::new(|mirror| {
                // A build that ships 90 bytes of model state.
                mirror.cache_put_fetched((1, 0), Arc::new(()), 90);
                let mut buf = BytesMut::new();
                4u64.encode(&mut buf);
                buf.into_vec()
            }),
            decode: Box::new(|resp| {
                let (y, _) = u64::decode(resp)?;
                Ok(Box::new(y) as TaskOutput)
            }),
        };
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(d.bytes_in, 100),
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn scheduled_chaos_kills_and_respawns_real_connections() {
        let mut e = loopback_engine(2);
        e.schedule_failure(1, VTime::from_micros(1_000));
        e.schedule_revival(1, VTime::from_micros(5_000));
        e.schedule_join(VTime::from_micros(8_000));
        std::thread::sleep(Duration::from_millis(10));
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 1 })
        ));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 2 })));
        assert!(e.next().is_none());
        assert_eq!(e.workers(), 3);
        assert!((0..3).all(|w| e.alive(w)));
        // All three (re)spawned workers serve tasks.
        for w in 0..3 {
            let (task, wire) = wired(w as u64, w as u64);
            e.submit_wired(w, task, wire).unwrap();
        }
        let mut done = 0;
        while let Some(Completion::Done(_)) = e.next() {
            done += 1;
        }
        assert_eq!(done, 3);
    }

    // ---------------------------------------------------------------
    // Supervision: heartbeats, deadlines, backpressure, fault paths
    // ---------------------------------------------------------------

    fn supervised_cfg(cfg: RemoteConfig) -> RemoteConfig {
        RemoteConfig {
            heartbeat: Some(Duration::from_millis(2)),
            liveness: Some(Duration::from_millis(60)),
            ..cfg
        }
    }

    #[test]
    fn liveness_without_heartbeat_is_rejected() {
        let cfg = RemoteConfig {
            liveness: Some(Duration::from_millis(10)),
            ..RemoteConfig::loopback(Arc::new(doubling_registry))
        };
        match RemoteEngine::new(spec(1), 0.0, cfg).map(|_| ()) {
            Err(EngineError::Io(io::ErrorKind::InvalidInput)) => {}
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn liveness_deadline_declares_a_partitioned_worker_dead() {
        // hang_after = 0: worker 0 greets, then every outbound frame
        // (completions and beats) vanishes — a one-way partition. No chaos
        // script kills it; only the liveness deadline can.
        let cfg = RemoteConfig {
            fault: FaultPlan {
                hang_worker: Some(0),
                hang_after: 0,
                ..FaultPlan::default()
            },
            ..supervised_cfg(RemoteConfig::loopback(Arc::new(doubling_registry)))
        };
        let mut e = RemoteEngine::new(spec(1), 0.0, cfg).expect("engine starts");
        let (task, wire) = wired(5, 4);
        e.submit_wired(0, task, wire).unwrap();
        let t0 = Instant::now();
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 5 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0), "silent worker must be declared dead");
        assert!(
            t0.elapsed() >= Duration::from_millis(55),
            "death must wait out the liveness deadline, not fire early"
        );
        // The partitioned worker is revivable like any other casualty; the
        // fresh incarnation gets a fresh injector state, but the plan still
        // says worker 0 hangs from frame zero — so don't submit to it, just
        // confirm the respawn handshake works.
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive_past_the_liveness_deadline() {
        // Routine 9 takes ~3x the liveness deadline to answer. Without
        // heartbeats the driver would declare the worker dead; with them
        // the completion must arrive as a normal Done.
        let registry = Arc::new(|| {
            let mut reg = doubling_registry();
            reg.register(9, |_ctx, req| {
                std::thread::sleep(Duration::from_millis(180));
                Ok(req.to_vec())
            });
            reg
        });
        let cfg = supervised_cfg(RemoteConfig::loopback(registry));
        let mut e = RemoteEngine::new(spec(1), 0.0, cfg).expect("engine starts");
        let task = Task {
            tag: 1,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 9,
            build: Box::new(|_| Vec::new()),
            decode: Box::new(|_| Ok(Box::new(()) as TaskOutput)),
        };
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(d.tag, 1),
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(e.alive(0), "a beating worker must not be declared dead");
    }

    #[test]
    fn task_deadline_kills_a_worker_that_beats_but_never_answers() {
        // Routine 9 sleeps far past the task deadline while the beat
        // thread keeps the liveness check satisfied: only the per-task
        // deadline can reclaim the submission.
        let registry = Arc::new(|| {
            let mut reg = doubling_registry();
            reg.register(9, |_ctx, req| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(req.to_vec())
            });
            reg
        });
        let cfg = RemoteConfig {
            task_deadline: Some(Duration::from_millis(50)),
            ..supervised_cfg(RemoteConfig::loopback(registry))
        };
        let mut e = RemoteEngine::new(spec(1), 0.0, cfg).expect("engine starts");
        let task = Task {
            tag: 8,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 9,
            build: Box::new(|_| Vec::new()),
            decode: Box::new(|_| Ok(Box::new(()) as TaskOutput)),
        };
        let t0 = Instant::now();
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 8 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0));
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(45) && waited < Duration::from_millis(350),
            "deadline fired at {waited:?}, expected ~50ms"
        );
        // The late completion from the killed incarnation must be dropped
        // by the epoch guard once it finally flushes.
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        std::thread::sleep(Duration::from_millis(400));
        let (task, wire) = wired(2, 3);
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(d.tag, 2),
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn bounded_inflight_backpressure_and_blocking_submit() {
        let cfg = RemoteConfig {
            max_inflight: 2,
            ..RemoteConfig::loopback(Arc::new(doubling_registry))
        };
        let mut e = RemoteEngine::new(spec(1), 0.0, cfg).expect("engine starts");
        let (t1, w1) = wired(1, 10);
        let (t2, w2) = wired(2, 20);
        let (t3, w3) = wired(3, 30);
        e.submit_wired(0, t1, w1).unwrap();
        assert!(e.available(0), "one slot of two used");
        e.submit_wired(0, t2, w2).unwrap();
        assert!(!e.available(0), "at the in-flight bound");
        assert_eq!(
            e.submit_wired(0, t3, w3).unwrap_err(),
            EngineError::WorkerBusy(0)
        );
        // The blocking variant waits for a slot instead of failing.
        let (t3, w3) = wired(3, 30);
        e.submit_wired_blocking(0, t3, w3).unwrap();
        let mut seen = std::collections::HashMap::new();
        while let Some(c) = e.next() {
            if let Completion::Done(d) = c {
                seen.insert(d.tag, *d.output.downcast::<u64>().unwrap());
            }
        }
        assert_eq!(seen.len(), 3, "all three tasks completed: {seen:?}");
        assert_eq!((seen[&1], seen[&2], seen[&3]), (20, 40, 60));
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn killing_a_worker_loses_every_queued_inflight_task() {
        let cfg = RemoteConfig {
            max_inflight: 3,
            ..RemoteConfig::loopback(Arc::new(|| {
                let mut reg = RoutineRegistry::new();
                reg.register(9, |_ctx, req| {
                    std::thread::sleep(Duration::from_millis(100));
                    Ok(req.to_vec())
                });
                reg
            }))
        };
        let mut e = RemoteEngine::new(spec(1), 0.0, cfg).expect("engine starts");
        for tag in [11, 12, 13] {
            let task = Task {
                tag,
                cost: 0.0,
                bytes_in: 0,
                run: Box::new(|_| Box::new(())),
            };
            let wire = WireTask {
                routine: 9,
                build: Box::new(|_| Vec::new()),
                decode: Box::new(|_| Ok(Box::new(()) as TaskOutput)),
            };
            e.submit_wired(0, task, wire).unwrap();
        }
        assert_eq!(e.pending(), 3);
        e.kill_worker(0);
        let mut lost = Vec::new();
        while let Some(c) = e.next() {
            match c {
                Completion::Lost { worker: 0, tag } => lost.push(tag),
                other => panic!("unexpected: {:?}", completion_kind(&other)),
            }
        }
        assert_eq!(lost, vec![11, 12, 13], "FIFO loss order");
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn truncate_fault_tears_the_stream_and_surfaces_lost() {
        // Worker→driver truncation probability 1: the first completion is
        // torn mid-frame and the connection shut down; the reader must
        // surface a lost task, never a mangled Done.
        let cfg = RemoteConfig {
            fault: FaultPlan {
                seed: 7,
                truncate: 1.0,
                only: Some(FaultDir::WorkerToDriver),
                ..FaultPlan::default()
            },
            ..RemoteConfig::loopback(Arc::new(doubling_registry))
        };
        let mut e = RemoteEngine::new(spec(1), 0.0, cfg).expect("engine starts");
        let (task, wire) = wired(6, 2);
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 6 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0));
    }

    #[test]
    fn handshake_timeout_is_configurable_and_fires() {
        // `sh -c 'sleep 30'` spawns fine but never connects: the
        // configured (short) handshake deadline must fire, not the old
        // hardcoded 10 s.
        let cfg = RemoteConfig {
            handshake_timeout: Duration::from_millis(80),
            ..RemoteConfig::process(PathBuf::from("sh"))
        };
        let cfg = RemoteConfig {
            launcher: WorkerLauncher::Process {
                program: PathBuf::from("sh"),
                args: vec!["-c".into(), "sleep 30".into(), "sh".into()],
            },
            ..cfg
        };
        let t0 = Instant::now();
        match RemoteEngine::new(spec(1), 0.0, cfg).map(|_| ()) {
            Err(EngineError::Io(io::ErrorKind::TimedOut)) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(75) && waited < Duration::from_secs(5),
            "handshake timeout honored the configured deadline: {waited:?}"
        );
    }

    #[test]
    fn worker_exiting_before_connecting_is_a_refused_spawn() {
        let cfg = RemoteConfig {
            launcher: WorkerLauncher::Process {
                program: PathBuf::from("sh"),
                args: vec!["-c".into(), "exit 0".into(), "sh".into()],
            },
            ..RemoteConfig::process(PathBuf::from("sh"))
        };
        match RemoteEngine::new(spec(1), 0.0, cfg).map(|_| ()) {
            Err(EngineError::Io(io::ErrorKind::ConnectionRefused)) => {}
            other => panic!("expected ConnectionRefused, got {other:?}"),
        }
    }

    #[test]
    fn mid_handshake_disconnects_are_dropped_not_fatal() {
        // A rogue peer hammers the driver's port while the cluster forms:
        // it connects, writes a torn frame (or a stale greeting), and
        // disconnects. The handshake loop must discard every such
        // connection and still complete the real workers' handshakes.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let stop = Arc::new(AtomicBool::new(false));
        let rogue = {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(mut s) = TcpStream::connect(&addr) {
                        if i.is_multiple_of(2) {
                            // A torn frame: length prefix promising 3 bytes,
                            // then EOF.
                            let _ = s.write_all(&[3, 0, 0, 0]);
                        } else {
                            // A stale greeting from a foreign incarnation.
                            let _ = write_frame(
                                &mut s,
                                &Msg::WorkerUp {
                                    worker: 99,
                                    epoch: 77,
                                },
                            );
                        }
                        drop(s);
                    }
                    i += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let cfg = RemoteConfig {
            addr: addr.clone(),
            ..RemoteConfig::loopback(Arc::new(doubling_registry))
        };
        let mut e = RemoteEngine::new(spec(2), 0.0, cfg).expect("cluster forms despite rogues");
        for w in 0..2 {
            let (task, wire) = wired(w as u64, 50 + w as u64);
            e.submit_wired(w, task, wire).unwrap();
        }
        let mut done = 0;
        while let Some(c) = e.next() {
            if matches!(c, Completion::Done(_)) {
                done += 1;
            }
        }
        assert_eq!(done, 2);
        stop.store(true, Ordering::SeqCst);
        rogue.join().unwrap();
    }

    #[test]
    fn next_event_at_reports_the_chaos_horizon() {
        let mut e = loopback_engine(1);
        assert_eq!(e.next_event_at(), None);
        e.schedule_revival(0, VTime::from_micros(50_000));
        e.schedule_failure(0, VTime::from_micros(10_000));
        assert_eq!(e.next_event_at(), Some(VTime::from_micros(10_000)));
    }
}
