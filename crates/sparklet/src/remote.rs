//! Remote engine: workers as separate OS processes over TCP.
//!
//! The third [`Engine`] backend. Where the simulator models a cluster and
//! the threaded engine runs one in-process thread per worker, this engine
//! makes "cloud engine" literal: each worker is its own process, connected
//! to the driver over a length-prefixed TCP framing ([`crate::frame`]), and
//! every task, gradient delta, and broadcast patch actually crosses a
//! socket in the same [`Payload`] encodings the in-process engines merely
//! account.
//!
//! ## Shipping tasks without shipping closures
//!
//! A [`Task`]'s closure cannot cross a process boundary, so the remote
//! engine is driven through [`Engine::submit_wired`]: alongside the (never
//! executed) closure it receives a [`WireTask`] — a routine id the worker
//! dispatches on, a `build` function producing the request bytes, and a
//! `decode` function for the response. `build` runs **driver-side at
//! submission** against a per-worker *mirror* [`WorkerCtx`] tracking
//! exactly which broadcast versions that worker incarnation holds; this is
//! the same instant the simulator runs task closures, so version
//! resolution, history reads, and byte accounting agree with the
//! deterministic oracle. The mirror's fetch charges (model snapshots,
//! patches, shipped partitions) fold into the task's `bytes_in` just as a
//! worker-side cache miss would on the simulator.
//!
//! ## Failures are real
//!
//! The epoch-guard + chaos machinery maps onto real connection drops:
//!
//! * [`Engine::kill_worker`] kills the worker *process* (socket shutdown +
//!   SIGKILL) and surfaces the in-flight task as [`Completion::Lost`];
//! * a spontaneously dropped socket is detected by the per-connection
//!   reader thread and handled identically — lost task, dead worker;
//! * [`Engine::revive_worker`] / [`Engine::add_worker`] spawn a fresh
//!   process at a bumped epoch; any result a dying incarnation managed to
//!   flush is dropped by the same epoch check the threaded engine uses;
//! * a [`ChaosSchedule`](async_cluster::ChaosSchedule) installed through
//!   the driver therefore drives actual process kills and respawns.
//!
//! Straggler delays are computed driver-side from the cluster spec
//! (modelled cost + communication time, scaled by `time_scale` and the
//! worker's delay factor) and shipped in the submission; the worker sleeps
//! them after computing, plus the factor-stretch of its measured compute
//! time — the threaded engine's formula, across a socket.
//!
//! [`Payload`]: crate::payload::Payload

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use async_cluster::straggler::DelayAssignment;
use async_cluster::{ClusterSpec, CommModel, VTime, WorkerId, WorkerProfile};

use crate::engine::{Completion, Engine, EngineError, Task, TaskDone, TaskOutput, WireTask};
use crate::frame::{read_frame, write_frame, Msg};
use crate::payload::DecodeError;
use crate::worker::WorkerCtx;

/// How long to wait for a freshly spawned worker process to connect and
/// greet before declaring the spawn failed.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// How a [`RemoteEngine`] starts worker incarnations.
pub enum WorkerLauncher {
    /// Spawn `program args.. --connect <addr> --worker <id> --epoch <e>`
    /// as a child process. The program is expected to call
    /// [`worker_main`] (or [`run_worker`]) with its routine registry.
    Process {
        /// Worker executable.
        program: PathBuf,
        /// Extra arguments placed before the `--connect ..` triple.
        args: Vec<String>,
    },
    /// Run [`run_worker`] on an in-process thread — still a real TCP
    /// connection through the loopback interface, just without the
    /// process-management half. Used by tests that exercise the wire
    /// protocol, epoch guard, and disconnect handling in isolation.
    Loopback(Arc<dyn Fn() -> RoutineRegistry + Send + Sync>),
}

/// Configuration for [`RemoteEngine::new`].
pub struct RemoteConfig {
    /// Address the driver listens on; workers connect back to it.
    /// `127.0.0.1:0` (any free loopback port) by default.
    pub addr: String,
    /// How worker processes are started.
    pub launcher: WorkerLauncher,
}

impl RemoteConfig {
    /// Process-launching config using `program` as the worker binary.
    pub fn process(program: PathBuf) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            launcher: WorkerLauncher::Process {
                program,
                args: Vec::new(),
            },
        }
    }

    /// Loopback-thread config (tests); `registry` builds each worker
    /// incarnation's routine table.
    pub fn loopback(registry: Arc<dyn Fn() -> RoutineRegistry + Send + Sync>) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            launcher: WorkerLauncher::Loopback(registry),
        }
    }
}

/// Locates the conventional worker binary (`async_worker`): the
/// `ASYNC_WORKER_BIN` environment variable if set, otherwise a file named
/// `async_worker` next to (or in an ancestor target directory of) the
/// current executable — which finds `target/<profile>/async_worker` from
/// test binaries, benches, and examples alike.
pub fn default_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("ASYNC_WORKER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join("async_worker");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// One worker incarnation's driver-side connection state.
struct WorkerConn {
    /// Write half (a dup of the reader thread's stream).
    stream: TcpStream,
    /// The child process, when launched as one.
    child: Option<Child>,
}

/// What the per-connection reader threads report.
enum WireEvent {
    /// A completion frame arrived.
    Done {
        worker: WorkerId,
        epoch: u64,
        tag: u64,
        response: Vec<u8>,
    },
    /// The connection dropped (EOF, reset, or a malformed frame).
    Gone { worker: WorkerId, epoch: u64 },
}

/// Response decoding + accounting for one in-flight wired task.
struct Inflight {
    #[allow(clippy::type_complexity)]
    decode: Box<dyn Fn(&[u8]) -> Result<TaskOutput, DecodeError> + Send>,
    bytes_in: u64,
}

/// A membership change scheduled against elapsed engine time.
enum PendingChaos {
    Fail(WorkerId),
    Revive(WorkerId),
    Join,
}

/// The remote multi-process engine. See the module docs.
pub struct RemoteEngine {
    spec: ClusterSpec,
    assignment: Arc<DelayAssignment>,
    comm: CommModel,
    time_scale: f64,
    start: Instant,
    listener: TcpListener,
    local_addr: String,
    launcher: WorkerLauncher,
    conns: Vec<Option<WorkerConn>>,
    readers: Vec<Option<std::thread::JoinHandle<()>>>,
    results_tx: Sender<WireEvent>,
    results_rx: Receiver<WireEvent>,
    /// Driver-side mirror of each worker incarnation's cache: which
    /// `(broadcast, version)` keys (and shipped partitions) it holds.
    /// Reset to empty on revive/join, exactly like the real cache.
    mirrors: Vec<WorkerCtx>,
    busy: Vec<bool>,
    dead: Vec<bool>,
    /// Worker incarnation counters; bumped on kill so orphaned completions
    /// and a revived executor can never be confused.
    epoch: Vec<u64>,
    inflight_tag: Vec<Option<u64>>,
    inflight: Vec<Option<Inflight>>,
    issued_at: Vec<VTime>,
    task_seq: Vec<u64>,
    pending: usize,
    queued: VecDeque<Completion>,
    chaos: VecDeque<(VTime, PendingChaos)>,
}

impl RemoteEngine {
    /// Binds the driver listener and spawns one worker process (or
    /// loopback thread) per cluster worker, waiting for each to connect
    /// and greet.
    ///
    /// # Panics
    /// Panics if the spec fails validation or `time_scale` is negative.
    /// Transport failures (bind, spawn, handshake) return
    /// [`EngineError::Io`].
    pub fn new(spec: ClusterSpec, time_scale: f64, cfg: RemoteConfig) -> Result<Self, EngineError> {
        spec.validate().expect("invalid cluster spec");
        assert!(time_scale >= 0.0, "time_scale must be nonnegative");
        let n = spec.workers;
        let assignment = Arc::new(spec.delay.assign(n));
        let comm = spec.comm.clone();
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| EngineError::Io(e.kind()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| EngineError::Io(e.kind()))?
            .to_string();
        let (res_tx, res_rx) = unbounded::<WireEvent>();
        let mut engine = Self {
            spec,
            assignment,
            comm,
            time_scale,
            start: Instant::now(),
            listener,
            local_addr,
            launcher: cfg.launcher,
            conns: Vec::with_capacity(n),
            readers: Vec::with_capacity(n),
            results_tx: res_tx,
            results_rx: res_rx,
            mirrors: (0..n).map(WorkerCtx::new).collect(),
            busy: vec![false; n],
            dead: vec![false; n],
            epoch: vec![0; n],
            inflight_tag: vec![None; n],
            inflight: Vec::new(),
            issued_at: vec![VTime::ZERO; n],
            task_seq: vec![0; n],
            pending: 0,
            queued: VecDeque::new(),
            chaos: VecDeque::new(),
        };
        engine.inflight = (0..n).map(|_| None).collect();
        for w in 0..n {
            engine.conns.push(None);
            engine.readers.push(None);
            engine
                .spawn_worker(w)
                .map_err(|e| EngineError::Io(e.kind()))?;
        }
        Ok(engine)
    }

    /// The address workers connect back to (useful when binding port 0).
    pub fn addr(&self) -> &str {
        &self.local_addr
    }

    /// Launches incarnation `self.epoch[w]` of worker `w` and completes
    /// the connection handshake.
    fn spawn_worker(&mut self, w: WorkerId) -> io::Result<()> {
        let epoch = self.epoch[w];
        let mut child = match &self.launcher {
            WorkerLauncher::Process { program, args } => Some(
                Command::new(program)
                    .args(args)
                    .arg("--connect")
                    .arg(&self.local_addr)
                    .arg("--worker")
                    .arg(w.to_string())
                    .arg("--epoch")
                    .arg(epoch.to_string())
                    .stdin(Stdio::null())
                    .spawn()?,
            ),
            WorkerLauncher::Loopback(factory) => {
                let addr = self.local_addr.clone();
                let factory = Arc::clone(factory);
                std::thread::Builder::new()
                    .name(format!("remote-loopback-{w}-e{epoch}"))
                    .spawn(move || {
                        let _ = run_worker(&addr, w as u32, epoch, factory());
                    })?;
                None
            }
        };
        let stream = match self.await_hello(w, epoch, child.as_mut()) {
            Ok(s) => s,
            Err(e) => {
                if let Some(mut c) = child {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        };
        let reader_stream = stream.try_clone()?;
        self.conns[w] = Some(WorkerConn { stream, child });
        let tx = self.results_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("remote-reader-{w}-e{epoch}"))
            .spawn(move || reader_loop(w, epoch, reader_stream, tx))?;
        if let Some(old) = self.readers[w].replace(handle) {
            let _ = old.join();
        }
        Ok(())
    }

    /// Accepts connections until incarnation `epoch` of worker `w` greets,
    /// dropping stale or foreign greetings, with a deadline.
    fn await_hello(
        &self,
        w: WorkerId,
        epoch: u64,
        mut child: Option<&mut Child>,
    ) -> io::Result<TcpStream> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                    match read_frame(&mut stream) {
                        Ok(Msg::WorkerUp {
                            worker,
                            epoch: greeted,
                        }) if worker as WorkerId == w && greeted == epoch => {
                            stream.set_read_timeout(None)?;
                            stream.set_nodelay(true)?;
                            return Ok(stream);
                        }
                        // A greeting from a stale incarnation or unexpected
                        // worker: close it and keep waiting for ours.
                        _ => {
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(c) = child.as_deref_mut() {
                        if let Some(status) = c.try_wait()? {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionRefused,
                                format!("worker {w} exited before connecting: {status}"),
                            ));
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("worker {w} did not connect within {HANDSHAKE_TIMEOUT:?}"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn elapsed(&self) -> VTime {
        VTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Tears down worker `w`'s current incarnation: socket shutdown, child
    /// kill + reap. The reader thread exits on the dropped connection and
    /// its `Gone` event is epoch-filtered.
    fn teardown_conn(&mut self, w: WorkerId) {
        if let Some(mut conn) = self.conns[w].take() {
            let _ = write_frame(&mut conn.stream, &Msg::Shutdown);
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(mut child) = conn.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    /// Marks `w` dead at a bumped epoch and queues the loss notification —
    /// shared by explicit kills and detected disconnects.
    fn mark_dead(&mut self, w: WorkerId) {
        self.dead[w] = true;
        self.epoch[w] += 1;
        if self.busy[w] {
            self.busy[w] = false;
            self.pending -= 1;
            self.inflight[w] = None;
            let tag = self.inflight_tag[w].take().expect("busy worker has a tag");
            self.queued.push_back(Completion::Lost { worker: w, tag });
        } else {
            self.queued.push_back(Completion::WorkerDown { worker: w });
        }
    }

    /// Applies scheduled membership events whose instant has passed.
    fn apply_due_chaos(&mut self) {
        while let Some(&(at, _)) = self.chaos.front() {
            if at > self.elapsed() {
                break;
            }
            let (_, ev) = self.chaos.pop_front().expect("checked front");
            match ev {
                PendingChaos::Fail(w) => self.kill_worker(w),
                PendingChaos::Revive(w) => {
                    let _ = self.revive_worker(w); // no-op if already alive
                }
                PendingChaos::Join => {
                    self.add_worker();
                }
            }
        }
    }

    /// Inserts a scheduled event keeping the list time-sorted (stable).
    fn push_chaos(&mut self, at: VTime, ev: PendingChaos) {
        let pos = self.chaos.iter().position(|&(t, _)| t > at);
        match pos {
            Some(i) => self.chaos.insert(i, (at, ev)),
            None => self.chaos.push_back((at, ev)),
        }
    }

    fn accept(&mut self, ev: WireEvent) -> Option<Completion> {
        match ev {
            WireEvent::Done {
                worker,
                epoch,
                tag,
                response,
            } => {
                if self.dead[worker] || epoch != self.epoch[worker] {
                    // Orphaned result flushed by a killed incarnation
                    // before its socket died: its loss was already
                    // reported.
                    return None;
                }
                let finished_at = self.elapsed();
                let Some(inflight) = self.inflight[worker].take() else {
                    // An unsolicited completion: protocol violation, but
                    // nothing is owed for it — drop it.
                    return None;
                };
                match (inflight.decode)(&response) {
                    Ok(output) => {
                        self.busy[worker] = false;
                        self.inflight_tag[worker] = None;
                        self.pending -= 1;
                        let issued_at = self.issued_at[worker];
                        Some(Completion::Done(TaskDone {
                            worker,
                            tag,
                            output,
                            issued_at,
                            finished_at,
                            service_time: finished_at.saturating_since(issued_at),
                            bytes_in: inflight.bytes_in,
                        }))
                    }
                    Err(_) => {
                        // A response this driver cannot decode means the
                        // incarnation is not speaking the protocol — treat
                        // it like a crashed worker: tear down, report the
                        // task lost.
                        self.teardown_conn(worker);
                        self.mark_dead(worker);
                        self.queued.pop_back()
                    }
                }
            }
            WireEvent::Gone { worker, epoch } => {
                if self.dead[worker] || epoch != self.epoch[worker] {
                    return None; // expected: we tore this connection down
                }
                // A real, uncommanded connection drop: dropped socket →
                // lost task, dead worker (revivable like any other death).
                self.teardown_conn(worker);
                self.mark_dead(worker);
                self.queued.pop_back()
            }
        }
    }
}

fn reader_loop(w: WorkerId, epoch: u64, mut stream: TcpStream, tx: Sender<WireEvent>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Msg::Completion {
                tag,
                epoch: e,
                response,
            }) => {
                if tx
                    .send(WireEvent::Done {
                        worker: w,
                        epoch: e,
                        tag,
                        response,
                    })
                    .is_err()
                {
                    break; // engine dropped
                }
            }
            Ok(_) => continue,
            Err(_) => {
                let _ = tx.send(WireEvent::Gone { worker: w, epoch });
                break;
            }
        }
    }
}

impl Engine for RemoteEngine {
    fn workers(&self) -> usize {
        self.spec.workers
    }

    fn now(&self) -> VTime {
        self.elapsed()
    }

    fn available(&self, w: WorkerId) -> bool {
        !self.dead[w] && !self.busy[w]
    }

    fn alive(&self, w: WorkerId) -> bool {
        !self.dead[w]
    }

    /// Closure-only submissions cannot cross a process boundary; the
    /// remote engine accepts work only through [`Engine::submit_wired`].
    fn submit(&mut self, _w: WorkerId, _task: Task) -> Result<(), EngineError> {
        Err(EngineError::Io(io::ErrorKind::Unsupported))
    }

    fn submit_wired(&mut self, w: WorkerId, task: Task, wire: WireTask) -> Result<(), EngineError> {
        if self.dead[w] {
            return Err(EngineError::WorkerDead(w));
        }
        if self.busy[w] {
            return Err(EngineError::WorkerBusy(w));
        }
        let seq = self.task_seq[w];
        self.task_seq[w] += 1;
        // Build the request against the worker's mirrored cache — the
        // remote analogue of the simulator running the closure at
        // submission. Fetch charges (snapshots, patches, shipped blocks)
        // fold into the task's bytes exactly as worker-side misses would.
        let request = (wire.build)(&mut self.mirrors[w]);
        let (extra_bytes, extra_time) = self.mirrors[w].take_charges();
        let total_bytes = task.bytes_in + extra_bytes;
        let factor = self.assignment.factor(w, seq);
        let modelled = self.spec.profiles[w].exec_time(task.cost)
            + self.comm.transfer_time(total_bytes)
            + extra_time;
        let sleep_us = (modelled.as_micros() as f64 * self.time_scale * factor) as u64;
        let msg = Msg::Submit {
            tag: task.tag,
            epoch: self.epoch[w],
            routine: wire.routine,
            sleep_us,
            slow_factor: (factor - 1.0).max(0.0),
            request,
        };
        let conn = self.conns[w]
            .as_mut()
            .expect("alive worker has a connection");
        if write_frame(&mut conn.stream, &msg).is_err() {
            // The process died under us between completions: surface the
            // death now. The task was never accepted (not busy), so
            // `mark_dead` queues WorkerDown, not Lost.
            self.teardown_conn(w);
            self.mark_dead(w);
            return Err(EngineError::Disconnected(w));
        }
        self.busy[w] = true;
        self.inflight_tag[w] = Some(task.tag);
        self.inflight[w] = Some(Inflight {
            decode: wire.decode,
            bytes_in: total_bytes,
        });
        self.issued_at[w] = self.elapsed();
        self.pending += 1;
        Ok(())
    }

    fn next(&mut self) -> Option<Completion> {
        loop {
            self.apply_due_chaos();
            if let Some(c) = self.queued.pop_front() {
                return Some(c);
            }
            if self.pending == 0 {
                // Nothing in flight: return rather than block real time
                // until a *future* scheduled membership event (same
                // divergence from the simulator as the threaded backend —
                // see `ThreadedEngine::next`).
                return None;
            }
            match self.results_rx.recv_timeout(Duration::from_micros(500)) {
                Ok(ev) => {
                    if let Some(c) = self.accept(ev) {
                        return Some(c);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn try_next(&mut self) -> Option<Completion> {
        loop {
            self.apply_due_chaos();
            if let Some(c) = self.queued.pop_front() {
                return Some(c);
            }
            match self.results_rx.try_recv() {
                Ok(ev) => {
                    if let Some(c) = self.accept(ev) {
                        return Some(c);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn kill_worker(&mut self, w: WorkerId) {
        if self.dead[w] {
            return;
        }
        self.teardown_conn(w);
        self.mark_dead(w);
    }

    fn revive_worker(&mut self, w: WorkerId) -> Result<(), EngineError> {
        if !self.dead[w] {
            return Err(EngineError::WorkerAlive(w));
        }
        // A fresh incarnation: new process, new connection, and an empty
        // mirror — the next wired submission re-ships whatever it needs.
        self.mirrors[w] = WorkerCtx::new(w);
        self.spawn_worker(w)
            .map_err(|e| EngineError::Io(e.kind()))?;
        self.dead[w] = false;
        self.busy[w] = false;
        self.inflight_tag[w] = None;
        self.inflight[w] = None;
        self.queued.push_back(Completion::WorkerUp { worker: w });
        Ok(())
    }

    fn add_worker(&mut self) -> WorkerId {
        let w = self.spec.workers;
        self.spec.workers += 1;
        self.spec.profiles.push(WorkerProfile::default_speed());
        self.mirrors.push(WorkerCtx::new(w));
        self.busy.push(false);
        self.dead.push(false);
        self.epoch.push(0);
        self.inflight_tag.push(None);
        self.inflight.push(None);
        self.issued_at.push(VTime::ZERO);
        self.task_seq.push(0);
        self.conns.push(None);
        self.readers.push(None);
        if let Err(e) = self.spawn_worker(w) {
            // The join happened (ids are dense and allocated), but the
            // worker is unusable: record it dead so the engine stays
            // consistent. Chaos-driven joins tolerate this.
            eprintln!("remote engine: failed to spawn joined worker {w}: {e}");
            self.dead[w] = true;
            self.queued.push_back(Completion::WorkerDown { worker: w });
            return w;
        }
        self.queued.push_back(Completion::WorkerUp { worker: w });
        w
    }

    fn schedule_failure(&mut self, w: WorkerId, at: VTime) {
        self.push_chaos(at, PendingChaos::Fail(w));
    }

    fn schedule_revival(&mut self, w: WorkerId, at: VTime) {
        self.push_chaos(at, PendingChaos::Revive(w));
    }

    fn schedule_join(&mut self, at: VTime) {
        self.push_chaos(at, PendingChaos::Join);
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        for w in 0..self.conns.len() {
            self.teardown_conn(w);
        }
        for h in self.readers.iter_mut() {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker-process side
// ---------------------------------------------------------------------------

/// A worker-side request handler: decode the request bytes, compute
/// against the worker's local cache, encode the response bytes.
pub type RoutineFn = Box<dyn Fn(&mut WorkerCtx, &[u8]) -> Result<Vec<u8>, DecodeError>>;

/// Maps routine ids to handlers; each worker incarnation owns one.
#[derive(Default)]
pub struct RoutineRegistry {
    handlers: HashMap<u32, RoutineFn>,
}

impl RoutineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `f` as routine `id`, replacing any previous handler.
    pub fn register(
        &mut self,
        id: u32,
        f: impl Fn(&mut WorkerCtx, &[u8]) -> Result<Vec<u8>, DecodeError> + 'static,
    ) {
        self.handlers.insert(id, Box::new(f));
    }
}

/// The generic worker-process loop: connect back to the driver, greet,
/// then serve submissions until shutdown or disconnect.
///
/// A request naming an unregistered routine, or one whose handler reports
/// a decode error, terminates the worker with an error — the driver
/// observes the dropped connection and reports the in-flight task lost,
/// which is exactly the fault model for a crashed executor.
pub fn run_worker(
    addr: &str,
    worker: u32,
    epoch: u64,
    registry: RoutineRegistry,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(&mut stream, &Msg::WorkerUp { worker, epoch })?;
    let mut ctx = WorkerCtx::new(worker as WorkerId);
    loop {
        match read_frame(&mut stream)? {
            Msg::Submit {
                tag,
                epoch: e,
                routine,
                sleep_us,
                slow_factor,
                request,
            } => {
                let handler = registry.handlers.get(&routine).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("unregistered routine {routine}"),
                    )
                })?;
                let t0 = Instant::now();
                let response = handler(&mut ctx, &request)
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
                let measured = t0.elapsed();
                // Byte charges are accounted by the driver-side mirror;
                // drain the local ones so they never accumulate.
                let _ = ctx.take_charges();
                // The modelled (pre-scaled) delay shipped by the driver,
                // plus the straggler stretch of real compute time — the
                // threaded engine's sleep, across a socket.
                let sleep = sleep_us as f64 + measured.as_secs_f64() * 1e6 * slow_factor;
                if sleep >= 1.0 {
                    std::thread::sleep(Duration::from_micros(sleep as u64));
                }
                write_frame(
                    &mut stream,
                    &Msg::Completion {
                        tag,
                        epoch: e,
                        response,
                    },
                )?;
            }
            Msg::Shutdown => return Ok(()),
            // Nothing else is driver→worker; ignore rather than die.
            Msg::WorkerUp { .. } | Msg::Completion { .. } => continue,
        }
    }
}

/// Entry point for worker binaries: parses `--connect <addr> --worker <id>
/// --epoch <e>` from `std::env::args` and runs [`run_worker`]. A worker
/// binary is three lines: build a registry, call this, exit.
pub fn worker_main(registry: RoutineRegistry) -> io::Result<()> {
    let mut addr = None;
    let mut worker = None;
    let mut epoch = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => addr = args.next(),
            "--worker" => worker = args.next().and_then(|v| v.parse::<u32>().ok()),
            "--epoch" => epoch = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            _ => {}
        }
    }
    let (addr, worker) = match (addr, worker) {
        (Some(a), Some(w)) => (a, w),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "usage: --connect <addr> --worker <id> [--epoch <e>]",
            ))
        }
    };
    run_worker(&addr, worker, epoch, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel, VDur};
    use bytes::BytesMut;

    use crate::payload::Payload;

    fn spec(workers: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(workers, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO)
    }

    /// Routine 1: interpret the request as a `u64`, return it doubled.
    fn doubling_registry() -> RoutineRegistry {
        let mut reg = RoutineRegistry::new();
        reg.register(1, |_ctx, req| {
            let (x, _) = u64::decode(req)?;
            let mut buf = BytesMut::new();
            (2 * x).encode(&mut buf);
            Ok(buf.into_vec())
        });
        reg
    }

    fn loopback_engine(workers: usize) -> RemoteEngine {
        RemoteEngine::new(
            spec(workers),
            0.0,
            RemoteConfig::loopback(Arc::new(doubling_registry)),
        )
        .expect("engine starts")
    }

    fn wired(tag: u64, x: u64) -> (Task, WireTask) {
        let task = Task {
            tag,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 1,
            build: Box::new(move |_mirror| {
                let mut buf = BytesMut::new();
                x.encode(&mut buf);
                buf.into_vec()
            }),
            decode: Box::new(|resp| {
                let (y, _) = u64::decode(resp)?;
                Ok(Box::new(y) as TaskOutput)
            }),
        };
        (task, wire)
    }

    #[test]
    fn round_trips_tasks_across_real_sockets() {
        let mut e = loopback_engine(3);
        for w in 0..3 {
            let (task, wire) = wired(w as u64, 100 + w as u64);
            e.submit_wired(w, task, wire).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        while let Some(c) = e.next() {
            match c {
                Completion::Done(d) => {
                    seen.insert(d.tag, *d.output.downcast::<u64>().unwrap());
                }
                other => panic!("unexpected completion: {:?}", completion_kind(&other)),
            }
        }
        assert_eq!(seen.len(), 3);
        for w in 0..3u64 {
            assert_eq!(seen[&w], 2 * (100 + w));
        }
        assert_eq!(e.pending(), 0);
    }

    fn completion_kind(c: &Completion) -> &'static str {
        match c {
            Completion::Done(_) => "Done",
            Completion::Lost { .. } => "Lost",
            Completion::WorkerDown { .. } => "WorkerDown",
            Completion::WorkerUp { .. } => "WorkerUp",
        }
    }

    #[test]
    fn plain_submit_is_rejected() {
        let mut e = loopback_engine(1);
        let err = e
            .submit(
                0,
                Task {
                    tag: 0,
                    cost: 0.0,
                    bytes_in: 0,
                    run: Box::new(|_| Box::new(())),
                },
            )
            .unwrap_err();
        assert_eq!(err, EngineError::Io(io::ErrorKind::Unsupported));
    }

    #[test]
    fn kill_closes_the_connection_and_reports_lost() {
        let mut e = loopback_engine(2);
        let (task, wire) = wired(9, 1);
        e.submit_wired(0, task, wire).unwrap();
        e.kill_worker(0);
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 9 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0));
        let (task, wire) = wired(1, 1);
        assert_eq!(
            e.submit_wired(0, task, wire).unwrap_err(),
            EngineError::WorkerDead(0)
        );
        // The orphaned completion (if the worker flushed one before the
        // socket died) must never surface.
        std::thread::sleep(Duration::from_millis(20));
        assert!(e.try_next().is_none());
        assert!(e.next().is_none());
    }

    #[test]
    fn revival_spawns_a_fresh_incarnation_with_an_empty_mirror() {
        let mut e = loopback_engine(1);
        let (task, wire) = wired(1, 5);
        e.submit_wired(0, task, wire).unwrap();
        while matches!(e.next(), Some(Completion::Done(_))) {}
        // Seed the mirror, then kill: the revived incarnation must not
        // remember the key.
        e.mirrors[0].cache_put_local((7, 0), Arc::new(()));
        e.kill_worker(0);
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 0 })
        ));
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        assert_eq!(e.mirrors[0].cache_len(), 0);
        let (task, wire) = wired(2, 21);
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => {
                assert_eq!(d.tag, 2);
                assert_eq!(*d.output.downcast::<u64>().unwrap(), 42);
            }
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn worker_crash_surfaces_as_lost_via_connection_drop() {
        // Routine 2 aborts the worker mid-task: the driver must observe
        // the dropped socket and report the task lost.
        let registry = Arc::new(|| {
            let mut reg = doubling_registry();
            reg.register(2, |_ctx, _req| {
                Err(DecodeError::Invalid {
                    at: 0,
                    what: "simulated worker crash",
                })
            });
            reg
        });
        let mut e = RemoteEngine::new(spec(1), 0.0, RemoteConfig::loopback(registry))
            .expect("engine starts");
        let task = Task {
            tag: 3,
            cost: 0.0,
            bytes_in: 0,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 2,
            build: Box::new(|_| Vec::new()),
            decode: Box::new(|_| Ok(Box::new(()) as TaskOutput)),
        };
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Lost { worker: 0, tag: 3 }) => {}
            other => panic!(
                "expected Lost, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
        assert!(!e.alive(0));
        // And the worker is revivable after a real crash.
        e.revive_worker(0).unwrap();
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 0 })));
        let (task, wire) = wired(4, 8);
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(*d.output.downcast::<u64>().unwrap(), 16),
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn add_worker_joins_over_the_wire() {
        let mut e = loopback_engine(1);
        let w = e.add_worker();
        assert_eq!(w, 1);
        assert_eq!(e.workers(), 2);
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        let (task, wire) = wired(7, 35);
        e.submit_wired(1, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => {
                assert_eq!((d.worker, d.tag), (1, 7));
                assert_eq!(*d.output.downcast::<u64>().unwrap(), 70);
            }
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn mirror_charges_fold_into_task_bytes() {
        let mut e = loopback_engine(1);
        let task = Task {
            tag: 0,
            cost: 0.0,
            bytes_in: 10,
            run: Box::new(|_| Box::new(())),
        };
        let wire = WireTask {
            routine: 1,
            build: Box::new(|mirror| {
                // A build that ships 90 bytes of model state.
                mirror.cache_put_fetched((1, 0), Arc::new(()), 90);
                let mut buf = BytesMut::new();
                4u64.encode(&mut buf);
                buf.into_vec()
            }),
            decode: Box::new(|resp| {
                let (y, _) = u64::decode(resp)?;
                Ok(Box::new(y) as TaskOutput)
            }),
        };
        e.submit_wired(0, task, wire).unwrap();
        match e.next() {
            Some(Completion::Done(d)) => assert_eq!(d.bytes_in, 100),
            other => panic!(
                "expected Done, got {:?}",
                other.as_ref().map(completion_kind)
            ),
        }
    }

    #[test]
    fn scheduled_chaos_kills_and_respawns_real_connections() {
        let mut e = loopback_engine(2);
        e.schedule_failure(1, VTime::from_micros(1_000));
        e.schedule_revival(1, VTime::from_micros(5_000));
        e.schedule_join(VTime::from_micros(8_000));
        std::thread::sleep(Duration::from_millis(10));
        assert!(matches!(
            e.next(),
            Some(Completion::WorkerDown { worker: 1 })
        ));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 1 })));
        assert!(matches!(e.next(), Some(Completion::WorkerUp { worker: 2 })));
        assert!(e.next().is_none());
        assert_eq!(e.workers(), 3);
        assert!((0..3).all(|w| e.alive(w)));
        // All three (re)spawned workers serve tasks.
        for w in 0..3 {
            let (task, wire) = wired(w as u64, w as u64);
            e.submit_wired(w, task, wire).unwrap();
        }
        let mut done = 0;
        while let Some(Completion::Done(_)) = e.next() {
            done += 1;
        }
        assert_eq!(done, 3);
    }
}
