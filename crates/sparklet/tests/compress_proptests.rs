//! Compression-codec properties: quantization roundtrips stay within each
//! wire format's error bound, the top-k selector agrees with a naive
//! sort oracle, and [`CompressedDelta`] frames roundtrip bit-exactly while
//! torn or hostile frames always decode to positioned errors — never
//! panics, never wrong values. The remote engine trusts this codec with
//! every compressed gradient that crosses a socket.

use async_linalg::{
    dequantize_f16, dequantize_i8, quantize_f16, quantize_i8, select_top_k, CompressedDelta,
    GradDelta, SparseVec,
};
use bytes::BytesMut;
use proptest::prelude::*;
use sparklet::{DecodeError, Payload};

/// Deduplicated, strictly increasing coordinate support paired with the
/// generated values (truncated to the shorter of the two).
fn support(raw_idx: Vec<u32>, vals: Vec<f64>) -> (Vec<u32>, Vec<f64>) {
    let mut idx = raw_idx;
    idx.sort_unstable();
    idx.dedup();
    let n = idx.len().min(vals.len());
    (idx[..n].to_vec(), vals[..n].to_vec())
}

/// The per-message scale the compressor uses: `max|v|` over shipped values.
fn scale_of(vals: &[f64]) -> f64 {
    vals.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Builds one of the three wire variants from generated primitives.
fn delta_from(kind: u8, idx: Vec<u32>, vals: Vec<f64>, dim: usize) -> CompressedDelta {
    let scale = scale_of(&vals);
    match kind % 3 {
        0 => CompressedDelta::Exact(GradDelta::Sparse(
            SparseVec::new(idx, vals, dim).expect("sorted support"),
        )),
        1 => {
            let codes = vals.iter().map(|&v| quantize_i8(v, scale)).collect();
            CompressedDelta::I8 {
                dim,
                scale,
                indices: idx,
                codes,
            }
        }
        _ => {
            let codes = vals.iter().map(|&v| quantize_f16(v, scale)).collect();
            CompressedDelta::F16 {
                dim,
                scale,
                indices: idx,
                codes,
            }
        }
    }
}

proptest! {
    #[test]
    fn i8_roundtrip_stays_within_half_a_step(
        vals in proptest::collection::vec(-1000.0..1000.0f64, 1..64usize),
    ) {
        // 127 signed levels against scale = max|v|: round-to-nearest can
        // miss by at most half a step, scale/254.
        let scale = scale_of(&vals);
        let bound = scale / 254.0 * (1.0 + 1e-12);
        for &v in &vals {
            let back = dequantize_i8(quantize_i8(v, scale), scale);
            prop_assert!(
                (back - v).abs() <= bound,
                "i8 roundtrip of {v} against {scale} came back {back}"
            );
        }
    }

    #[test]
    fn f16_roundtrip_stays_within_the_half_precision_bound(
        vals in proptest::collection::vec(-1000.0..1000.0f64, 1..64usize),
    ) {
        // The normalized value v/scale lies in [-1, 1], where half
        // precision resolves at worst one part in 2¹⁰ absolutely (ulp at
        // magnitude 1 is 2⁻¹⁰; round-to-nearest halves it, and the f64 →
        // f32 pre-rounding is orders of magnitude finer).
        let scale = scale_of(&vals);
        let bound = scale * (2.0f64).powi(-10);
        for &v in &vals {
            let back = dequantize_f16(quantize_f16(v, scale), scale);
            prop_assert!(
                (back - v).abs() <= bound,
                "f16 roundtrip of {v} against {scale} came back {back}"
            );
        }
    }

    #[test]
    fn top_k_matches_the_naive_sort_oracle(
        raw_idx in proptest::collection::vec(0u32..10_000, 0..96usize),
        raw_vals in proptest::collection::vec(-100.0..100.0f64, 0..96usize),
        k in 0usize..96,
    ) {
        let (idx, vals) = support(raw_idx, raw_vals);

        // The oracle: full sort by (magnitude desc, index asc), keep k,
        // re-sort the survivors by coordinate.
        let mut order: Vec<usize> = (0..idx.len()).collect();
        order.sort_by(|&a, &b| {
            vals[b].abs().total_cmp(&vals[a].abs()).then(a.cmp(&b))
        });
        order.truncate(k);
        order.sort_unstable();
        let want_idx: Vec<u32> = order.iter().map(|&p| idx[p]).collect();
        let want_val: Vec<f64> = order.iter().map(|&p| vals[p]).collect();

        let mut scratch = Vec::new();
        let mut got_idx = Vec::new();
        let mut got_val = Vec::new();
        select_top_k(&idx, &vals, k, &mut scratch, &mut got_idx, &mut got_val);
        prop_assert_eq!(got_idx, want_idx);
        // Values must match bit-for-bit — the selector moves entries, it
        // never recomputes them.
        prop_assert_eq!(
            got_val.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_val.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn top_k_is_total_and_oracle_consistent_under_nan_and_inf(
        raw_idx in proptest::collection::vec(0u32..10_000, 0..96usize),
        raw_vals in proptest::collection::vec(
            prop_oneof![
                4 => -100.0..100.0f64,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
                1 => Just(f64::NEG_INFINITY),
                1 => Just(-f64::NAN),
            ],
            0..96usize,
        ),
        k in 0usize..96,
    ) {
        // Hostile magnitudes: the comparator must stay a total order
        // (`total_cmp` on |v| — NaN sorts above +inf), so selection
        // neither panics nor diverges from the full-sort oracle.
        let (idx, vals) = support(raw_idx, raw_vals);

        let mut order: Vec<usize> = (0..idx.len()).collect();
        order.sort_by(|&a, &b| {
            vals[b].abs().total_cmp(&vals[a].abs()).then(a.cmp(&b))
        });
        order.truncate(k);
        order.sort_unstable();
        let want_idx: Vec<u32> = order.iter().map(|&p| idx[p]).collect();
        let want_val: Vec<f64> = order.iter().map(|&p| vals[p]).collect();

        let mut scratch = Vec::new();
        let mut got_idx = Vec::new();
        let mut got_val = Vec::new();
        select_top_k(&idx, &vals, k, &mut scratch, &mut got_idx, &mut got_val);
        prop_assert_eq!(got_idx.len(), k.min(idx.len()));
        prop_assert_eq!(got_idx, want_idx);
        prop_assert_eq!(
            got_val.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_val.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn compressed_frames_roundtrip_and_charge_their_own_length(
        kind in 0u8..3,
        raw_idx in proptest::collection::vec(0u32..50_000, 0..64usize),
        raw_vals in proptest::collection::vec(-100.0..100.0f64, 0..64usize),
    ) {
        let (idx, vals) = support(raw_idx, raw_vals);
        let cd = delta_from(kind, idx, vals, 50_000);

        let mut buf = BytesMut::new();
        cd.encode(&mut buf);
        // The simulator's modeled byte accounting is the encoder's actual
        // output length — one source of truth.
        prop_assert_eq!(buf.len() as u64, cd.encoded_len());
        prop_assert_eq!(cd.encoded_len(), cd.wire_bytes());

        let bytes = buf.into_vec();
        let (back, used) = match CompressedDelta::decode(&bytes) {
            Ok(ok) => ok,
            Err(e) => return Err(format!("well-formed frame failed to decode: {e}")),
        };
        prop_assert_eq!(&back, &cd);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn torn_compressed_frames_report_positioned_truncation(
        kind in 0u8..3,
        raw_idx in proptest::collection::vec(0u32..50_000, 1..64usize),
        raw_vals in proptest::collection::vec(-100.0..100.0f64, 1..64usize),
        frac in 0.0..1.0f64,
    ) {
        let (mut idx, mut vals) = support(raw_idx, raw_vals);
        if idx.is_empty() {
            idx = vec![3];
            vals = vec![1.5];
        }
        let cd = delta_from(kind, idx, vals, 50_000);
        let mut buf = BytesMut::new();
        cd.encode(&mut buf);
        let cut = ((buf.len() as f64) * frac) as usize; // in [0, len)
        let err = match CompressedDelta::decode(&buf.as_slice()[..cut]) {
            Ok(_) => return Err("torn frame decoded".to_string()),
            Err(e) => e,
        };
        prop_assert!(
            err.at() <= cut,
            "error position {} past the cut {cut}",
            err.at()
        );
    }
}

/// A frame whose quantized body claims more entries than its bytes can
/// hold must be rejected before any allocation is sized from the claim.
#[test]
fn hostile_counts_cannot_size_allocations() {
    for tag in [1u8, 2u8] {
        let mut buf = BytesMut::new();
        bytes::BufMut::put_u8(&mut buf, tag);
        bytes::BufMut::put_u64_le(&mut buf, u64::MAX); // claimed nnz
        bytes::BufMut::put_u64_le(&mut buf, 8); // dim
        bytes::BufMut::put_f64_le(&mut buf, 1.0); // scale
        bytes::BufMut::put_u32_le(&mut buf, 0); // one lonely index
        let bytes = buf.into_vec();
        let err = CompressedDelta::decode(&bytes).expect_err("hostile count must fail");
        assert!(
            matches!(err, DecodeError::LengthOverflow { .. }),
            "want LengthOverflow, got {err:?}"
        );
    }
}

/// Unknown variant tags are rejected with the position of the tag byte.
#[test]
fn unknown_tags_are_rejected_at_position_zero() {
    let err = CompressedDelta::decode(&[7u8, 0, 0]).expect_err("bad tag must fail");
    assert!(matches!(err, DecodeError::BadTag { at: 0, tag: 7 }));
}
