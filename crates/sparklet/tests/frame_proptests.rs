//! Frame-codec properties: roundtrip over generated messages, and torn /
//! truncated frames always decoding to positioned errors, never panics or
//! wrong values. The remote engine trusts this codec with every byte that
//! crosses a socket, so the properties run over all four message kinds,
//! arbitrary body bytes, arbitrary cut points, and back-to-back streams.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;
use sparklet::frame::{decode_frame, encode_frame, read_frame, write_frame, Msg, MAX_FRAME_LEN};
use sparklet::DecodeError;

/// Builds one of the four frame kinds from generated primitives. `kind`
/// selects the variant; the other fields are used where the variant needs
/// them, so one generated tuple covers the whole enum.
fn msg_from(kind: u8, ids: (u64, u64, u32), sleep_us: u64, slow_factor: f64, body: Vec<u8>) -> Msg {
    let (tag, epoch, routine) = ids;
    match kind % 4 {
        0 => Msg::WorkerUp {
            worker: routine,
            epoch,
        },
        1 => Msg::Submit {
            tag,
            epoch,
            routine,
            sleep_us,
            slow_factor,
            request: body,
        },
        2 => Msg::Completion {
            tag,
            epoch,
            response: body,
        },
        _ => Msg::Shutdown,
    }
}

proptest! {
    #[test]
    fn frames_roundtrip(
        kind in 0u8..4,
        ids in (0u64..u64::MAX, 0u64..u64::MAX, 0u32..u32::MAX),
        sleep_us in 0u64..10_000_000,
        slow in 0.0..8.0f64,
        body in proptest::collection::vec(0u8..255, 0..256usize),
    ) {
        let msg = msg_from(kind, ids, sleep_us, slow, body);
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        let (back, used) = match decode_frame(buf.as_slice()) {
            Ok(ok) => ok,
            Err(e) => return Err(format!("well-formed frame failed to decode: {e}")),
        };
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(used, buf.len());
        // With trailing garbage the same prefix decodes to the same frame:
        // frames are self-delimiting.
        let mut longer = buf.clone().into_vec();
        longer.extend_from_slice(&[0x5A; 9]);
        let (back2, used2) = match decode_frame(&longer) {
            Ok(ok) => ok,
            Err(e) => return Err(format!("decode failed with trailing bytes: {e}")),
        };
        prop_assert_eq!(&back2, &msg);
        prop_assert_eq!(used2, used);
    }

    #[test]
    fn torn_frames_report_positioned_truncation(
        kind in 0u8..4,
        ids in (0u64..u64::MAX, 0u64..u64::MAX, 0u32..u32::MAX),
        body in proptest::collection::vec(0u8..255, 0..128usize),
        frac in 0.0..1.0f64,
    ) {
        let msg = msg_from(kind, ids, 1000, 0.0, body);
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        let cut = ((buf.len() as f64) * frac) as usize; // in [0, len)
        let err = match decode_frame(&buf.as_slice()[..cut]) {
            Err(e) => e,
            Ok(_) => return Err(format!("torn frame decoded at cut {cut}")),
        };
        let positioned = matches!(
            err,
            DecodeError::Truncated { at, needed } if at <= cut && needed > 0
        );
        prop_assert!(positioned, "cut {}: unexpected error {}", cut, err);
    }

    #[test]
    fn frame_streams_roundtrip_back_to_back(
        kinds in proptest::collection::vec(0u8..4, 1..8usize),
        ids in (0u64..u64::MAX, 0u64..u64::MAX, 0u32..u32::MAX),
        body in proptest::collection::vec(0u8..255, 0..64usize),
    ) {
        let msgs: Vec<Msg> = kinds
            .iter()
            .map(|&k| msg_from(k, ids, 42, 1.5, body.clone()))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, m).expect("in-memory write");
        }
        // The stream reader recovers each frame in order and stops cleanly.
        let mut r = wire.as_slice();
        for m in &msgs {
            prop_assert_eq!(&read_frame(&mut r).expect("stream read"), m);
        }
        prop_assert!(r.is_empty());
        // The flat decoder agrees with the stream reader frame-for-frame.
        let mut at = 0;
        for m in &msgs {
            let (back, used) = decode_frame(&wire[at..]).expect("flat decode");
            prop_assert_eq!(&back, m);
            at += used;
        }
        prop_assert_eq!(at, wire.len());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(0u8..255, 0..64usize),
    ) {
        // Any outcome is fine except a panic; on success the consumed
        // length must be in bounds and at least a header's worth.
        if let Ok((_, used)) = decode_frame(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(used >= 5);
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected(over in 1u32..1_000_000) {
        // Lengths past MAX_FRAME_LEN (or zero) are LengthOverflow at
        // offset 0, checked before any allocation.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAX_FRAME_LEN + over);
        buf.put_u8(3);
        prop_assert!(matches!(
            decode_frame(buf.as_slice()),
            Err(DecodeError::LengthOverflow { at: 0, .. })
        ));
        let mut zero = BytesMut::new();
        zero.put_u32_le(0);
        prop_assert!(matches!(
            decode_frame(zero.as_slice()),
            Err(DecodeError::LengthOverflow { at: 0, len: 0 })
        ));
    }
}
