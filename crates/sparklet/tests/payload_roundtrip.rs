//! Encode/decode roundtrip properties for every [`Payload`] impl.
//!
//! The wire format is the ground truth of the engines' byte accounting:
//! `encoded_len` must equal the bytes `encode` writes, and `decode` must
//! reproduce the original value from exactly those bytes. These properties
//! are checked over generated values for every payload shape the workspace
//! ships — scalars, dense slabs (owned, `Arc`-shared, and `Arc<[f64]>`
//! snapshots), sparse vectors, gradient deltas, tuples, and keyed tables.

use std::sync::Arc;

use async_linalg::{GradDelta, SparseVec};
use bytes::BytesMut;
use proptest::prelude::*;
use sparklet::Payload;

fn assert_roundtrip<P: Payload + PartialEq + std::fmt::Debug>(p: &P) -> Result<(), String> {
    let mut buf = BytesMut::new();
    p.encode(&mut buf);
    prop_assert_eq!(buf.len() as u64, p.encoded_len());
    let (back, used) = match P::decode(buf.as_slice()) {
        Ok(ok) => ok,
        Err(e) => return Err(format!("decode failed for {p:?}: {e}")),
    };
    prop_assert_eq!(&back, p);
    prop_assert_eq!(used, buf.len());
    // Decoding must also succeed (and consume the same prefix) with
    // trailing garbage appended — payloads are self-delimiting.
    let mut longer = buf.into_vec();
    longer.extend_from_slice(&[0xAB; 7]);
    let (back2, used2) = match P::decode(&longer) {
        Ok(ok) => ok,
        Err(e) => return Err(format!("decode failed with trailing bytes: {e}")),
    };
    prop_assert_eq!(&back2, p);
    prop_assert_eq!(used2, used);
    Ok(())
}

fn gen_sparse(rng_vals: &[(u32, f64)], dim: usize) -> SparseVec {
    SparseVec::from_pairs(rng_vals.to_vec(), dim).expect("pairs within dim")
}

proptest! {
    #[test]
    fn scalars_roundtrip(x in -1e9..1e9f64, n in 0u64..u64::MAX) {
        assert_roundtrip(&x)?;
        assert_roundtrip(&n)?;
    }

    #[test]
    fn dense_slabs_roundtrip(vals in proptest::collection::vec(-1e6..1e6f64, 0..200)) {
        assert_roundtrip(&vals)?;
        assert_roundtrip(&Arc::new(vals.clone()))?;
        let slab: Arc<[f64]> = vals.clone().into();
        assert_roundtrip(&slab)?;
        assert_roundtrip(&GradDelta::Dense(vals))?;
    }

    #[test]
    fn sparse_and_deltas_roundtrip(
        pairs in proptest::collection::vec((0u32..500, -100.0..100.0f64), 0..64),
        extra in 500usize..2000,
    ) {
        let sv = gen_sparse(&pairs, extra);
        assert_roundtrip(&sv)?;
        assert_roundtrip(&GradDelta::Sparse(sv))?;
    }

    #[test]
    fn tuples_and_tables_roundtrip(
        x in -10.0..10.0f64,
        vals in proptest::collection::vec(-10.0..10.0f64, 0..16),
        keys in proptest::collection::vec(0u64..1000, 0..8),
    ) {
        assert_roundtrip(&(x, vals.clone()))?;
        let table: Vec<(u64, Vec<f64>)> =
            keys.iter().map(|&k| (k, vals.clone())).collect();
        assert_roundtrip(&table)?;
        let nested: Vec<(u64, (f64, Vec<f64>))> =
            keys.iter().map(|&k| (k, (x, vals.clone()))).collect();
        assert_roundtrip(&nested)?;
    }

    #[test]
    fn truncated_input_never_decodes(vals in proptest::collection::vec(-1.0..1.0f64, 1..32)) {
        let mut buf = BytesMut::new();
        vals.encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Vec::<f64>::decode(&buf.as_slice()[..cut]).unwrap_err();
            // Positioned truncation: the reported offset is inside the cut.
            let truncated_in_range = matches!(
                err,
                sparklet::DecodeError::Truncated { at, needed } if at <= cut && needed > 0
            );
            prop_assert!(truncated_in_range, "cut {}: unexpected error {}", cut, err);
        }
    }
}
