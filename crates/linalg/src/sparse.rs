//! Sparse vectors in coordinate (index/value) form.
//!
//! A [`SparseVec`] is the natural representation of a single high-dimensional
//! training example (e.g. one rcv1 document: dimension 47k, ~70 nonzeros).

use crate::{Error, Result};

/// A sparse vector: strictly increasing `indices` paired with `values`,
/// embedded in a space of dimension `dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
    dim: usize,
}

impl SparseVec {
    /// Builds a sparse vector, validating that indices are strictly
    /// increasing and within `dim`.
    pub fn new(indices: Vec<u32>, values: Vec<f64>, dim: usize) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(Error::InvalidStructure(format!(
                "indices/values length mismatch: {} vs {}",
                indices.len(),
                values.len()
            )));
        }
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(Error::InvalidStructure(format!(
                    "indices not strictly increasing at {} >= {}",
                    w[0], w[1]
                )));
            }
        }
        if let Some(&last) = indices.last() {
            if last as usize >= dim {
                return Err(Error::InvalidStructure(format!(
                    "index {last} out of range for dim {dim}"
                )));
            }
        }
        Ok(Self {
            indices,
            values,
            dim,
        })
    }

    /// Builds from possibly-unsorted `(index, value)` pairs; duplicate
    /// indices are summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>, dim: usize) -> Result<Self> {
        pairs.sort_unstable_by_key(|p| p.0);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                *values
                    .last_mut()
                    .expect("values nonempty when indices nonempty") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        Self::new(indices, values, dim)
    }

    /// The embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The stored indices (strictly increasing).
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sparse–dense dot product `xᵀw`.
    ///
    /// # Panics
    /// Panics if `w.len() != self.dim()`.
    #[inline]
    pub fn dot_dense(&self, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.dim, "dot_dense: dim mismatch");
        let mut acc = 0.0;
        for (i, v) in self.indices.iter().zip(self.values.iter()) {
            acc += *v * w[*i as usize];
        }
        acc
    }

    /// `out += a * self` scattered into a dense buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    #[inline]
    pub fn axpy_into_dense(&self, a: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "axpy_into_dense: dim mismatch");
        for (i, v) in self.indices.iter().zip(self.values.iter()) {
            out[*i as usize] += a * *v;
        }
    }

    /// Squared Euclidean norm of the sparse vector.
    #[inline]
    pub fn norm2_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Scales every stored value in place: `self *= a`.
    #[inline]
    pub fn scale(&mut self, a: f64) {
        for v in self.values.iter_mut() {
            *v *= a;
        }
    }

    /// In-place sparse–sparse axpy `self += a * other`, merging the two
    /// supports (the union of stored indices). Entries that cancel to an
    /// exact 0.0 are kept, so the support only grows — which is what a
    /// gradient accumulator wants (no re-sorting churn on near-cancellation).
    ///
    /// # Panics
    /// Panics if `other.dim() != self.dim()`.
    pub fn axpy(&mut self, a: f64, other: &SparseVec) {
        assert_eq!(other.dim, self.dim, "SparseVec::axpy: dim mismatch");
        if other.nnz() == 0 {
            return;
        }
        if self.nnz() == 0 {
            self.indices = other.indices.clone();
            self.values = other.values.iter().map(|v| a * v).collect();
            return;
        }
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.indices.len() || j < other.indices.len() {
            match (self.indices.get(i), other.indices.get(j)) {
                (Some(&si), Some(&oj)) if si == oj => {
                    indices.push(si);
                    values.push(self.values[i] + a * other.values[j]);
                    i += 1;
                    j += 1;
                }
                (Some(&si), Some(&oj)) if si < oj => {
                    indices.push(si);
                    values.push(self.values[i]);
                    i += 1;
                }
                (Some(_), Some(&oj)) => {
                    indices.push(oj);
                    values.push(a * other.values[j]);
                    j += 1;
                }
                (Some(&si), None) => {
                    indices.push(si);
                    values.push(self.values[i]);
                    i += 1;
                }
                (None, Some(&oj)) => {
                    indices.push(oj);
                    values.push(a * other.values[j]);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.indices = indices;
        self.values = values;
    }

    /// Densifies into a `Vec<f64>` of length `dim`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.indices.iter().zip(self.values.iter()) {
            out[*i as usize] = *v;
        }
        out
    }

    /// Decomposes into `(indices, values, dim)`, handing the backing
    /// buffers back to the caller — the return half of a buffer-pool
    /// checkout (see `async-optim`'s `ScratchPool`).
    pub fn into_parts(self) -> (Vec<u32>, Vec<f64>, usize) {
        (self.indices, self.values, self.dim)
    }
}

/// `out[indices[k]] = values[k]` — scatter-assign of absolute values onto a
/// dense buffer. This is the apply step of a version-diff patch: the patch
/// carries the *final* values of every changed coordinate, so assignment
/// (not accumulation) reconstructs the target exactly.
///
/// # Panics
/// Panics if the slices have different lengths or an index is out of range.
#[inline]
pub fn scatter_assign(indices: &[u32], values: &[f64], out: &mut [f64]) {
    assert_eq!(
        indices.len(),
        values.len(),
        "scatter_assign: length mismatch"
    );
    for (i, v) in indices.iter().zip(values.iter()) {
        out[*i as usize] = *v;
    }
}

/// Union-merge of two strictly increasing index lists into `out` (cleared
/// first). The building block of the broadcast ring's support fold: the
/// union of per-version change supports is the patch support.
#[inline]
pub fn merge_union_u32(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ai, bj) = (a[i], b[j]);
        if ai == bj {
            out.push(ai);
            i += 1;
            j += 1;
        } else if ai < bj {
            out.push(ai);
            i += 1;
        } else {
            out.push(bj);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim).unwrap()
    }

    #[test]
    fn new_validates_ordering() {
        assert!(SparseVec::new(vec![2, 1], vec![1.0, 1.0], 5).is_err());
        assert!(SparseVec::new(vec![1, 1], vec![1.0, 1.0], 5).is_err());
        assert!(SparseVec::new(vec![0, 4], vec![1.0, 1.0], 5).is_ok());
    }

    #[test]
    fn new_validates_range_and_len() {
        assert!(SparseVec::new(vec![5], vec![1.0], 5).is_err());
        assert!(SparseVec::new(vec![0], vec![], 5).is_err());
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = sv(&[(3, 1.0), (1, 2.0), (3, 4.0)], 5);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[2.0, 5.0]);
    }

    #[test]
    fn dot_dense_matches_dense() {
        let v = sv(&[(0, 2.0), (3, -1.0)], 4);
        let w = [1.0, 10.0, 100.0, 5.0];
        assert!((v.dot_dense(&w) - (2.0 - 5.0)).abs() < 1e-15);
        let dense = v.to_dense();
        assert!((crate::dense::dot(&dense, &w) - v.dot_dense(&w)).abs() < 1e-15);
    }

    #[test]
    fn axpy_scatters() {
        let v = sv(&[(1, 3.0)], 3);
        let mut out = [1.0, 1.0, 1.0];
        v.axpy_into_dense(2.0, &mut out);
        assert_eq!(out, [1.0, 7.0, 1.0]);
    }

    #[test]
    fn scale_multiplies_values_in_place() {
        let mut v = sv(&[(0, 2.0), (3, -1.0)], 4);
        v.scale(-0.5);
        assert_eq!(v.values(), &[-1.0, 0.5]);
        assert_eq!(v.indices(), &[0, 3]);
    }

    #[test]
    fn sparse_axpy_merges_supports() {
        let mut x = sv(&[(1, 1.0), (3, 2.0)], 6);
        let y = sv(&[(0, 5.0), (3, 1.0), (5, -2.0)], 6);
        x.axpy(2.0, &y);
        assert_eq!(x.indices(), &[0, 1, 3, 5]);
        assert_eq!(x.values(), &[10.0, 1.0, 4.0, -4.0]);
    }

    #[test]
    fn sparse_axpy_matches_dense_reference() {
        let mut x = sv(&[(2, 1.5), (4, -3.0)], 8);
        let y = sv(&[(0, 1.0), (2, 2.0), (7, 4.0)], 8);
        let mut dense_ref = x.to_dense();
        y.axpy_into_dense(-1.5, &mut dense_ref);
        x.axpy(-1.5, &y);
        for (i, want) in dense_ref.iter().enumerate() {
            let got = x
                .indices()
                .iter()
                .position(|&c| c as usize == i)
                .map_or(0.0, |p| x.values()[p]);
            assert!((got - want).abs() < 1e-15, "coord {i}: {got} vs {want}");
        }
    }

    #[test]
    fn sparse_axpy_with_empty_operands() {
        let mut x = SparseVec::new(vec![], vec![], 4).unwrap();
        let y = sv(&[(1, 3.0)], 4);
        x.axpy(2.0, &y);
        assert_eq!(x.indices(), &[1]);
        assert_eq!(x.values(), &[6.0]);
        let empty = SparseVec::new(vec![], vec![], 4).unwrap();
        x.axpy(1.0, &empty);
        assert_eq!(x.nnz(), 1);
    }

    #[test]
    fn scatter_assign_overwrites_only_support() {
        let mut out = [1.0, 2.0, 3.0, 4.0];
        scatter_assign(&[1, 3], &[-5.0, 9.0], &mut out);
        assert_eq!(out, [1.0, -5.0, 3.0, 9.0]);
    }

    #[test]
    fn merge_union_merges_sorted_lists() {
        let mut out = Vec::new();
        merge_union_u32(&[1, 4, 7], &[0, 4, 9], &mut out);
        assert_eq!(out, vec![0, 1, 4, 7, 9]);
        merge_union_u32(&[], &[2, 3], &mut out);
        assert_eq!(out, vec![2, 3]);
        merge_union_u32(&[5], &[], &mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn into_parts_round_trips() {
        let v = sv(&[(2, 1.0), (5, -2.0)], 8);
        let (idx, val, dim) = v.clone().into_parts();
        assert_eq!(SparseVec::new(idx, val, dim).unwrap(), v);
    }

    #[test]
    fn empty_vector_ok() {
        let v = SparseVec::new(vec![], vec![], 10).unwrap();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.dot_dense(&[1.0; 10]), 0.0);
        assert_eq!(v.norm2_sq(), 0.0);
    }
}
