//! # async-linalg
//!
//! Dense and sparse linear-algebra kernels for the ASYNC reproduction.
//!
//! This crate stands in for the Breeze/netlib BLAS stack the paper uses on
//! Spark. It provides exactly the operations the distributed optimization
//! algorithms need:
//!
//! * level-1 kernels over `&[f64]` slices ([`dense`]): dot, axpy, scal,
//!   norms, elementwise combinators;
//! * a row-major [`DenseMatrix`] and a compressed-sparse-row [`CsrMatrix`]
//!   with row access, `A·x`, and `Aᵀ·x` ([`dense_mat`], [`csr`]);
//! * a unified [`Matrix`] enum so downstream code is storage-agnostic;
//! * mini-batch gradient kernels over CSR ([`CsrMatrix::rows_dot`],
//!   [`CsrMatrix::gather_axpy`]) and the [`GradDelta`] dense-or-sparse
//!   update type they produce ([`delta`]), so gradients over sparse
//!   partitions never materialize a dense buffer;
//! * chunked multi-threaded variants built on crossbeam scoped threads
//!   ([`parallel`]);
//! * a persistent shard-worker thread pool for the parameter-server apply
//!   path ([`shard`]), with disjoint-range helpers and bit-identical
//!   sharded kernels;
//! * a conjugate-gradient least-squares solver ([`solve`]) used to compute
//!   high-precision baseline optima for the paper's error metric;
//! * gradient compression kernels ([`compress`]): deterministic top-k
//!   selection, a per-partition error-feedback residual ([`EfState`]), and
//!   scale-normalized int8 / half-precision value quantization.
//!
//! All kernels are pure, allocation-conscious (callers pass output buffers
//! where it matters), and deterministic.

pub mod compress;
pub mod csr;
pub mod delta;
pub mod dense;
pub mod dense_mat;
pub mod matrix;
pub mod parallel;
pub mod shard;
pub mod solve;
pub mod sparse;

pub use compress::{
    dequantize_f16, dequantize_i8, f16_bits_to_f64, f32_to_f16_bits, quant_wire_bytes,
    quantize_f16, quantize_i8, select_top_k, CompressedDelta, EfState, NonFiniteDelta, Quant,
};
pub use csr::CsrMatrix;
pub use delta::{DeltaFold, GradDelta};
pub use dense_mat::DenseMatrix;
pub use matrix::Matrix;
pub use parallel::ParallelismCfg;
pub use shard::{DisjointSlices, ShardPool};
pub use sparse::SparseVec;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing or validating matrices and vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// What was being attempted.
        op: &'static str,
        /// Dimension expected by the left/primary operand.
        expected: usize,
        /// Dimension actually provided.
        got: usize,
    },
    /// A sparse structure violated an invariant (unsorted or out-of-range
    /// indices, malformed indptr, ...).
    InvalidStructure(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DimensionMismatch { op, expected, got } => {
                write!(
                    f,
                    "dimension mismatch in {op}: expected {expected}, got {got}"
                )
            }
            Error::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
