//! Row-major dense matrices.

use crate::dense;
use crate::{Error, Result};

/// A row-major dense matrix. Rows are training examples in this codebase,
/// so row access is the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    data: Vec<f64>,
    nrows: usize,
    ncols: usize,
}

impl DenseMatrix {
    /// Builds from a flat row-major buffer.
    pub fn from_flat(data: Vec<f64>, nrows: usize, ncols: usize) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(Error::InvalidStructure(format!(
                "flat buffer length {} != {nrows}x{ncols}",
                data.len()
            )));
        }
        Ok(Self { data, nrows, ncols })
    }

    /// Builds from row slices; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(Error::InvalidStructure(format!(
                    "row {i} has length {} but row 0 has {ncols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            data,
            nrows: rows.len(),
            ncols,
        })
    }

    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            data: vec![0.0; nrows * ncols],
            nrows,
            ncols,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row {i} out of range ({} rows)", self.nrows);
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// `out = A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x dim mismatch");
        assert_eq!(out.len(), self.nrows, "matvec: out dim mismatch");
        for i in 0..self.nrows {
            out[i] = dense::dot(self.row(i), x);
        }
    }

    /// `out += Aᵀ·y` (accumulating transpose product).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_t_acc(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.nrows, "matvec_t: y dim mismatch");
        assert_eq!(out.len(), self.ncols, "matvec_t: out dim mismatch");
        for i in 0..self.nrows {
            dense::axpy(y[i], self.row(i), out);
        }
    }

    /// Extracts rows `[start, end)` into a new owned matrix.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> DenseMatrix {
        assert!(
            start <= end && end <= self.nrows,
            "slice_rows: bad range {start}..{end}"
        );
        DenseMatrix {
            data: self.data[start * self.ncols..end * self.ncols].to_vec(),
            nrows: end - start,
            ncols: self.ncols,
        }
    }

    /// Approximate in-memory footprint in bytes (data buffer only).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_flat_validates_len() {
        assert!(DenseMatrix::from_flat(vec![0.0; 5], 2, 3).is_err());
        assert!(DenseMatrix::from_flat(vec![0.0; 6], 2, 3).is_ok());
    }

    #[test]
    fn rows_round_trip() {
        let a = m();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 2);
    }

    #[test]
    fn matvec_works() {
        let a = m();
        let mut out = [0.0; 3];
        a.matvec(&[1.0, -1.0], &mut out);
        assert_eq!(out, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_t_accumulates() {
        let a = m();
        let mut out = [10.0, 10.0];
        a.matvec_t_acc(&[1.0, 0.0, 1.0], &mut out);
        assert_eq!(out, [16.0, 18.0]);
    }

    #[test]
    fn slice_rows_extracts() {
        let a = m();
        let s = a.slice_rows(1, 3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = DenseMatrix::zeros(0, 4);
        assert_eq!(a.nrows(), 0);
        let mut out: [f64; 0] = [];
        a.matvec(&[0.0; 4], &mut out);
    }
}
