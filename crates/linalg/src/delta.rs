//! Gradient deltas: the dense-or-sparse update currency of the engine.
//!
//! A worker's mini-batch gradient over a CSR partition has support bounded
//! by the union of the sampled rows' nonzeros — for rcv1-shaped data a few
//! thousand entries embedded in a 47k-dimensional space. [`GradDelta`] lets
//! tasks return (and broadcasts carry) that gradient in whichever
//! representation is cheapest, and lets the driver apply it to the dense
//! model without densifying: the sparse arm scatters onto the support only.

use crate::sparse::SparseVec;

/// A gradient (or model-update) vector in dense or sparse representation.
///
/// Produced worker-side by the mini-batch kernels, shipped back as the task
/// result, and applied driver-side with [`GradDelta::axpy_into`]. Its wire
/// format (and the modeled cost the solvers account) is defined once, by
/// the `Payload` impl in the `sparklet` crate: sparse deltas ship only
/// their support.
#[derive(Debug, Clone, PartialEq)]
pub enum GradDelta {
    /// Dense storage: one `f64` per model coordinate.
    Dense(Vec<f64>),
    /// Sparse storage: only the touched coordinates travel.
    Sparse(SparseVec),
}

impl GradDelta {
    /// A zero delta of dimension `dim` with an empty sparse support.
    pub fn zero_sparse(dim: usize) -> Self {
        GradDelta::Sparse(SparseVec::new(Vec::new(), Vec::new(), dim).expect("empty is valid"))
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        match self {
            GradDelta::Dense(v) => v.len(),
            GradDelta::Sparse(s) => s.dim(),
        }
    }

    /// Stored entries (dense: the full dimension).
    pub fn nnz(&self) -> usize {
        match self {
            GradDelta::Dense(v) => v.len(),
            GradDelta::Sparse(s) => s.nnz(),
        }
    }

    /// True when stored sparsely.
    pub fn is_sparse(&self) -> bool {
        matches!(self, GradDelta::Sparse(_))
    }

    /// `out += a * self`, touching only the stored support in the sparse
    /// arm — the "apply without densifying" half of the fast path.
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    pub fn axpy_into(&self, a: f64, out: &mut [f64]) {
        match self {
            GradDelta::Dense(v) => crate::dense::axpy(a, v, out),
            GradDelta::Sparse(s) => s.axpy_into_dense(a, out),
        }
    }

    /// Scales the delta in place.
    pub fn scale(&mut self, a: f64) {
        match self {
            GradDelta::Dense(v) => crate::dense::scal(a, v),
            GradDelta::Sparse(s) => s.scale(a),
        }
    }

    /// Densifies (copying in the dense arm).
    pub fn to_dense(&self) -> Vec<f64> {
        match self {
            GradDelta::Dense(v) => v.clone(),
            GradDelta::Sparse(s) => s.to_dense(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim).unwrap()
    }

    #[test]
    fn axpy_into_agrees_across_arms() {
        let s = sv(&[(1, 2.0), (3, -1.0)], 5);
        let dense = GradDelta::Dense(s.to_dense());
        let sparse = GradDelta::Sparse(s);
        let mut a = vec![1.0; 5];
        let mut b = vec![1.0; 5];
        dense.axpy_into(0.5, &mut a);
        sparse.axpy_into(0.5, &mut b);
        assert_eq!(a, b);
        assert_eq!(dense.to_dense(), sparse.to_dense());
    }

    #[test]
    fn shape_and_storage_reporting() {
        let sparse = GradDelta::Sparse(sv(&[(0, 1.0)], 10));
        assert!(sparse.is_sparse());
        assert_eq!(sparse.dim(), 10);
        assert_eq!(sparse.nnz(), 1);
        let dense = GradDelta::Dense(vec![0.0; 10]);
        assert!(!dense.is_sparse());
        assert_eq!(dense.nnz(), 10);
        assert_eq!(GradDelta::zero_sparse(7).nnz(), 0);
    }

    #[test]
    fn scale_applies_to_both_arms() {
        let mut a = GradDelta::Dense(vec![2.0, 4.0]);
        let mut b = GradDelta::Sparse(sv(&[(0, 2.0), (1, 4.0)], 2));
        a.scale(0.5);
        b.scale(0.5);
        assert_eq!(a.to_dense(), vec![1.0, 2.0]);
        assert_eq!(b.to_dense(), vec![1.0, 2.0]);
    }
}
