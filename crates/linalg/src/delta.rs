//! Gradient deltas: the dense-or-sparse update currency of the engine.
//!
//! A worker's mini-batch gradient over a CSR partition has support bounded
//! by the union of the sampled rows' nonzeros — for rcv1-shaped data a few
//! thousand entries embedded in a 47k-dimensional space. [`GradDelta`] lets
//! tasks return (and broadcasts carry) that gradient in whichever
//! representation is cheapest, and lets the driver apply it to the dense
//! model without densifying: the sparse arm scatters onto the support only.

use crate::sparse::SparseVec;

/// A gradient (or model-update) vector in dense or sparse representation.
///
/// Produced worker-side by the mini-batch kernels, shipped back as the task
/// result, and applied driver-side with [`GradDelta::axpy_into`]. Its wire
/// format (and the modeled cost the solvers account) is defined once, by
/// the `Payload` impl in the `sparklet` crate: sparse deltas ship only
/// their support.
#[derive(Debug, Clone, PartialEq)]
pub enum GradDelta {
    /// Dense storage: one `f64` per model coordinate.
    Dense(Vec<f64>),
    /// Sparse storage: only the touched coordinates travel.
    Sparse(SparseVec),
}

impl GradDelta {
    /// A zero delta of dimension `dim` with an empty sparse support.
    pub fn zero_sparse(dim: usize) -> Self {
        GradDelta::Sparse(SparseVec::new(Vec::new(), Vec::new(), dim).expect("empty is valid"))
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        match self {
            GradDelta::Dense(v) => v.len(),
            GradDelta::Sparse(s) => s.dim(),
        }
    }

    /// Stored entries (dense: the full dimension).
    pub fn nnz(&self) -> usize {
        match self {
            GradDelta::Dense(v) => v.len(),
            GradDelta::Sparse(s) => s.nnz(),
        }
    }

    /// True when stored sparsely.
    pub fn is_sparse(&self) -> bool {
        matches!(self, GradDelta::Sparse(_))
    }

    /// `out += a * self`, touching only the stored support in the sparse
    /// arm — the "apply without densifying" half of the fast path.
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    pub fn axpy_into(&self, a: f64, out: &mut [f64]) {
        match self {
            GradDelta::Dense(v) => crate::dense::axpy(a, v, out),
            GradDelta::Sparse(s) => s.axpy_into_dense(a, out),
        }
    }

    /// Range-restricted [`GradDelta::axpy_into`]: `out` is the shard slice
    /// covering coordinates `start .. start + out.len()` of the embedding,
    /// and only the delta's entries inside that window are applied. The
    /// per-coordinate operations (and their order) are exactly those of
    /// the full-width apply, so sharding a delta across disjoint windows
    /// is bit-identical to applying it whole.
    ///
    /// # Panics
    /// Panics if the window extends past `self.dim()`.
    pub fn axpy_into_range(&self, a: f64, out: &mut [f64], start: usize) {
        assert!(
            start + out.len() <= self.dim(),
            "axpy_into_range: window out of bounds"
        );
        match self {
            GradDelta::Dense(v) => crate::dense::axpy(a, &v[start..start + out.len()], out),
            GradDelta::Sparse(s) => {
                let (idx, val) = (s.indices(), s.values());
                let lo = idx.partition_point(|&i| (i as usize) < start);
                let hi = idx.partition_point(|&i| (i as usize) < start + out.len());
                for (i, v) in idx[lo..hi].iter().zip(&val[lo..hi]) {
                    out[*i as usize - start] += a * *v;
                }
            }
        }
    }

    /// Scales the delta in place.
    pub fn scale(&mut self, a: f64) {
        match self {
            GradDelta::Dense(v) => crate::dense::scal(a, v),
            GradDelta::Sparse(s) => s.scale(a),
        }
    }

    /// Densifies (copying in the dense arm).
    pub fn to_dense(&self) -> Vec<f64> {
        match self {
            GradDelta::Dense(v) => v.clone(),
            GradDelta::Sparse(s) => s.to_dense(),
        }
    }

    /// Folds `a * self` into a reusable accumulator: the allocation-free
    /// way to sum a stream of deltas (e.g. aggregating several collected
    /// gradients before one model application). Sparse deltas merge
    /// supports in-place inside the accumulator's ping-pong buffers; a
    /// dense delta (or an accumulator that already went dense) takes the
    /// dense path. Checked out of `async-optim`'s `ScratchPool` via
    /// `checkout_fold`; the broadcast ring folds bare index supports with
    /// [`crate::sparse::merge_union_u32`] instead.
    pub fn fold_into(&self, a: f64, acc: &mut DeltaFold) {
        acc.fold_scaled(a, self);
    }
}

/// A reusable fold accumulator for [`GradDelta`] streams.
///
/// Holds ping-pong index/value buffers for sparse–sparse union merges plus
/// a lazily allocated dense buffer; once warm, folding performs **zero
/// heap allocations** as long as buffer capacities suffice (capacity only
/// grows, so a steady-state workload stops allocating after the first few
/// folds). Ownership rule: the accumulator owns its buffers for its whole
/// life — callers [`DeltaFold::clear`] it between logical sums instead of
/// recreating it.
#[derive(Debug, Clone)]
pub struct DeltaFold {
    dim: usize,
    /// Current sparse accumulation (strictly increasing indices).
    idx: Vec<u32>,
    val: Vec<f64>,
    /// Merge scratch: the other half of the ping-pong pair.
    merge_idx: Vec<u32>,
    merge_val: Vec<f64>,
    /// Dense accumulation, used once any dense delta is folded.
    dense: Vec<f64>,
    is_dense: bool,
}

impl DeltaFold {
    /// An empty accumulator for deltas of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            idx: Vec::new(),
            val: Vec::new(),
            merge_idx: Vec::new(),
            merge_val: Vec::new(),
            dense: Vec::new(),
            is_dense: false,
        }
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Resets to the empty sum, keeping every buffer's capacity. Also
    /// re-dimensions the accumulator (a pool can serve models of different
    /// sizes across runs).
    pub fn clear(&mut self, dim: usize) {
        self.dim = dim;
        self.idx.clear();
        self.val.clear();
        self.is_dense = false;
        // The dense buffer is re-zeroed lazily when the dense path is next
        // taken; truncating here keeps `clear` O(1).
        self.dense.clear();
    }

    /// True once the accumulation fell back to dense storage.
    pub fn is_dense(&self) -> bool {
        self.is_dense
    }

    /// Stored entries (dense: the full dimension).
    pub fn nnz(&self) -> usize {
        if self.is_dense {
            self.dim
        } else {
            self.idx.len()
        }
    }

    /// The accumulated sparse support (empty when dense).
    pub fn indices(&self) -> &[u32] {
        if self.is_dense {
            &[]
        } else {
            &self.idx
        }
    }

    /// The accumulated sparse values, parallel to [`DeltaFold::indices`].
    pub fn values(&self) -> &[f64] {
        if self.is_dense {
            &[]
        } else {
            &self.val
        }
    }

    /// `self += a * d`.
    ///
    /// # Panics
    /// Panics if `d.dim() != self.dim()`.
    pub fn fold_scaled(&mut self, a: f64, d: &GradDelta) {
        assert_eq!(d.dim(), self.dim, "DeltaFold: dim mismatch");
        match d {
            GradDelta::Sparse(s) if !self.is_dense => {
                self.merge_entries(a, s.indices(), s.values(), 0)
            }
            _ => {
                self.ensure_dense();
                d.axpy_into(a, &mut self.dense);
            }
        }
    }

    /// Shard-local fold: `self += a * d[range]`, with the accumulator
    /// living in the shard's **local** coordinates (`self.dim()` must be
    /// `range.len()`; folded index `i` is stored as `i − range.start`).
    /// This is how the sharded server folds one wave of deltas into
    /// per-shard accumulators: each shard folds only its window, and the
    /// concatenation of the shards' supports (offset back by their range
    /// starts) is the wave's global change support.
    ///
    /// # Panics
    /// Panics if `self.dim() != range.len()` or the range extends past
    /// `d.dim()`.
    pub fn fold_scaled_range(&mut self, a: f64, d: &GradDelta, range: std::ops::Range<usize>) {
        assert_eq!(
            self.dim,
            range.len(),
            "fold_scaled_range: accumulator must have the shard's dimension"
        );
        assert!(
            range.end <= d.dim(),
            "fold_scaled_range: window out of bounds"
        );
        match d {
            GradDelta::Sparse(s) if !self.is_dense => {
                let (idx, val) = (s.indices(), s.values());
                let lo = idx.partition_point(|&i| (i as usize) < range.start);
                let hi = idx.partition_point(|&i| (i as usize) < range.end);
                self.merge_entries(a, &idx[lo..hi], &val[lo..hi], range.start as u32);
            }
            _ => {
                self.ensure_dense();
                d.axpy_into_range(a, &mut self.dense, range.start);
            }
        }
    }

    /// `out += a * self` — applies the accumulated sum to a dense target.
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    pub fn axpy_into(&self, a: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "DeltaFold::axpy_into: dim mismatch");
        if self.is_dense {
            crate::dense::axpy(a, &self.dense, out);
        } else {
            for (i, v) in self.idx.iter().zip(self.val.iter()) {
                out[*i as usize] += a * *v;
            }
        }
    }

    /// Snapshots the accumulated sum as an owned [`GradDelta`] (allocates;
    /// intended for tests and cold paths).
    pub fn to_delta(&self) -> GradDelta {
        if self.is_dense {
            GradDelta::Dense(self.dense.clone())
        } else {
            GradDelta::Sparse(
                SparseVec::new(self.idx.clone(), self.val.clone(), self.dim)
                    .expect("fold maintains strictly increasing indices"),
            )
        }
    }

    fn ensure_dense(&mut self) {
        if self.is_dense {
            return;
        }
        self.dense.clear();
        self.dense.resize(self.dim, 0.0);
        for (i, v) in self.idx.iter().zip(self.val.iter()) {
            self.dense[*i as usize] += *v;
        }
        self.idx.clear();
        self.val.clear();
        self.is_dense = true;
    }

    /// Union-merge of the sorted accumulation with sorted incoming entries
    /// into the ping-pong scratch, then swap — no allocation once the
    /// scratch capacities cover the union. Incoming index `oi[j]` is
    /// stored as `oi[j] − offset` (0 for whole-vector folds, the shard's
    /// range start for [`DeltaFold::fold_scaled_range`]).
    fn merge_entries(&mut self, a: f64, oi: &[u32], ov: &[f64], offset: u32) {
        if oi.is_empty() {
            return;
        }
        if self.idx.is_empty() {
            self.idx.clear();
            self.idx.extend(oi.iter().map(|i| i - offset));
            self.val.clear();
            self.val.extend(ov.iter().map(|v| a * v));
            return;
        }
        self.merge_idx.clear();
        self.merge_val.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.idx.len() && j < oi.len() {
            let (si, sj) = (self.idx[i], oi[j] - offset);
            if si == sj {
                self.merge_idx.push(si);
                self.merge_val.push(self.val[i] + a * ov[j]);
                i += 1;
                j += 1;
            } else if si < sj {
                self.merge_idx.push(si);
                self.merge_val.push(self.val[i]);
                i += 1;
            } else {
                self.merge_idx.push(sj);
                self.merge_val.push(a * ov[j]);
                j += 1;
            }
        }
        self.merge_idx.extend_from_slice(&self.idx[i..]);
        self.merge_val.extend_from_slice(&self.val[i..]);
        self.merge_idx.extend(oi[j..].iter().map(|i| i - offset));
        self.merge_val.extend(ov[j..].iter().map(|v| a * v));
        std::mem::swap(&mut self.idx, &mut self.merge_idx);
        std::mem::swap(&mut self.val, &mut self.merge_val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)], dim: usize) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec(), dim).unwrap()
    }

    #[test]
    fn axpy_into_agrees_across_arms() {
        let s = sv(&[(1, 2.0), (3, -1.0)], 5);
        let dense = GradDelta::Dense(s.to_dense());
        let sparse = GradDelta::Sparse(s);
        let mut a = vec![1.0; 5];
        let mut b = vec![1.0; 5];
        dense.axpy_into(0.5, &mut a);
        sparse.axpy_into(0.5, &mut b);
        assert_eq!(a, b);
        assert_eq!(dense.to_dense(), sparse.to_dense());
    }

    #[test]
    fn shape_and_storage_reporting() {
        let sparse = GradDelta::Sparse(sv(&[(0, 1.0)], 10));
        assert!(sparse.is_sparse());
        assert_eq!(sparse.dim(), 10);
        assert_eq!(sparse.nnz(), 1);
        let dense = GradDelta::Dense(vec![0.0; 10]);
        assert!(!dense.is_sparse());
        assert_eq!(dense.nnz(), 10);
        assert_eq!(GradDelta::zero_sparse(7).nnz(), 0);
    }

    #[test]
    fn fold_into_sparse_stream_matches_dense_reference() {
        let deltas = [
            GradDelta::Sparse(sv(&[(1, 2.0), (3, -1.0)], 6)),
            GradDelta::Sparse(sv(&[(0, 0.5), (3, 4.0), (5, 1.0)], 6)),
            GradDelta::Sparse(sv(&[(2, -2.0)], 6)),
        ];
        let mut acc = DeltaFold::new(6);
        let mut reference = vec![0.0; 6];
        for (k, d) in deltas.iter().enumerate() {
            let a = 1.0 + k as f64;
            d.fold_into(a, &mut acc);
            d.axpy_into(a, &mut reference);
        }
        assert!(!acc.is_dense());
        assert_eq!(acc.to_delta().to_dense(), reference);
        let mut out = vec![1.0; 6];
        acc.axpy_into(2.0, &mut out);
        for (o, r) in out.iter().zip(&reference) {
            assert!((o - (1.0 + 2.0 * r)).abs() < 1e-14);
        }
    }

    #[test]
    fn fold_into_goes_dense_on_dense_delta_and_stays() {
        let mut acc = DeltaFold::new(4);
        GradDelta::Sparse(sv(&[(1, 1.0)], 4)).fold_into(1.0, &mut acc);
        GradDelta::Dense(vec![1.0, 0.0, 2.0, 0.0]).fold_into(0.5, &mut acc);
        assert!(acc.is_dense());
        assert_eq!(acc.nnz(), 4);
        GradDelta::Sparse(sv(&[(3, 2.0)], 4)).fold_into(1.0, &mut acc);
        assert_eq!(acc.to_delta().to_dense(), vec![0.5, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn fold_clear_resets_and_redimensions() {
        let mut acc = DeltaFold::new(3);
        GradDelta::Dense(vec![1.0; 3]).fold_into(1.0, &mut acc);
        acc.clear(5);
        assert_eq!(acc.dim(), 5);
        assert!(!acc.is_dense());
        assert_eq!(acc.nnz(), 0);
        GradDelta::Sparse(sv(&[(4, 7.0)], 5)).fold_into(1.0, &mut acc);
        assert_eq!(acc.indices(), &[4]);
        assert_eq!(acc.values(), &[7.0]);
    }

    #[test]
    fn fold_is_allocation_stable_once_warm() {
        // After folding one shape of delta, refolding the same shapes must
        // not grow any buffer (capacities are retained across clears).
        let mut acc = DeltaFold::new(100);
        let a = GradDelta::Sparse(sv(&[(1, 1.0), (50, 2.0)], 100));
        let b = GradDelta::Sparse(sv(&[(2, 1.0), (50, -1.0), (99, 3.0)], 100));
        a.fold_into(1.0, &mut acc);
        b.fold_into(1.0, &mut acc);
        let caps = (acc.idx.capacity(), acc.merge_idx.capacity());
        for _ in 0..10 {
            acc.clear(100);
            a.fold_into(1.0, &mut acc);
            b.fold_into(1.0, &mut acc);
        }
        assert_eq!(caps, (acc.idx.capacity(), acc.merge_idx.capacity()));
    }

    #[test]
    fn range_apply_shards_bit_identically() {
        let dim = 23;
        let deltas = [
            GradDelta::Sparse(sv(&[(0, 1.0), (7, -2.0), (11, 0.5), (22, 3.0)], dim)),
            GradDelta::Dense((0..dim).map(|i| (i as f64).sin()).collect()),
        ];
        for d in &deltas {
            let mut whole = vec![0.25; dim];
            d.axpy_into(-1.5, &mut whole);
            for parts in [1usize, 2, 3, 5] {
                let mut sharded = vec![0.25; dim];
                for r in crate::parallel::split_ranges(dim, parts) {
                    d.axpy_into_range(-1.5, &mut sharded[r.clone()], r.start);
                }
                assert_eq!(sharded, whole, "parts={parts}");
            }
        }
    }

    #[test]
    fn range_fold_concatenates_to_the_whole_fold() {
        let dim = 17;
        let deltas = [
            GradDelta::Sparse(sv(&[(1, 2.0), (8, -1.0), (16, 4.0)], dim)),
            GradDelta::Sparse(sv(&[(0, 0.5), (8, 1.0), (9, -3.0)], dim)),
        ];
        let mut whole = DeltaFold::new(dim);
        for (k, d) in deltas.iter().enumerate() {
            d.fold_into(1.0 + k as f64, &mut whole);
        }
        for parts in [2usize, 4] {
            let mut out = vec![0.0; dim];
            let mut support = Vec::new();
            for r in crate::parallel::split_ranges(dim, parts) {
                let mut f = DeltaFold::new(r.len());
                for (k, d) in deltas.iter().enumerate() {
                    f.fold_scaled_range(1.0 + k as f64, d, r.clone());
                }
                f.axpy_into(1.0, &mut out[r.clone()]);
                support.extend(f.indices().iter().map(|i| i + r.start as u32));
            }
            assert_eq!(out, whole.to_delta().to_dense(), "parts={parts}");
            assert_eq!(support, whole.indices(), "parts={parts}");
        }
    }

    #[test]
    fn range_fold_takes_the_dense_arm_for_dense_deltas() {
        let d = GradDelta::Dense(vec![1.0, 2.0, 3.0, 4.0]);
        let mut f = DeltaFold::new(2);
        f.fold_scaled_range(0.5, &d, 2..4);
        assert!(f.is_dense());
        let mut out = vec![0.0; 2];
        f.axpy_into(1.0, &mut out);
        assert_eq!(out, vec![1.5, 2.0]);
    }

    #[test]
    fn scale_applies_to_both_arms() {
        let mut a = GradDelta::Dense(vec![2.0, 4.0]);
        let mut b = GradDelta::Sparse(sv(&[(0, 2.0), (1, 4.0)], 2));
        a.scale(0.5);
        b.scale(0.5);
        assert_eq!(a.to_dense(), vec![1.0, 2.0]);
        assert_eq!(b.to_dense(), vec![1.0, 2.0]);
    }
}
