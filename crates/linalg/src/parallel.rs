//! Chunked multi-threaded kernels on crossbeam scoped threads.
//!
//! The driver-side work in the reproduction (objective evaluation over the
//! full dataset, baseline solves) is embarrassingly parallel over row
//! chunks. Rather than pulling in a full work-stealing runtime we split the
//! index space into one contiguous chunk per thread — the kernels are
//! memory-bandwidth-bound, so static partitioning is the right tool.

use crate::matrix::Matrix;

/// How many threads driver-side parallel kernels may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelismCfg {
    threads: usize,
}

impl ParallelismCfg {
    /// Use exactly `threads` threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Use all available hardware parallelism.
    pub fn auto() -> Self {
        let t = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { threads: t }
    }

    /// Sequential execution (one thread).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Configured thread count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ParallelismCfg {
    fn default() -> Self {
        Self::auto()
    }
}

/// Splits `0..len` into `parts` contiguous, nearly equal ranges (the first
/// `len % parts` ranges get one extra element). Empty ranges are omitted.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts.min(len));
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            continue;
        }
        out.push(start..start + sz);
        start += sz;
    }
    out
}

/// Maps each range of `0..len` to a partial result on its own thread, then
/// folds the partials with `reduce`. Returns `init` when `len == 0`.
pub fn par_map_reduce<T, M, R>(cfg: ParallelismCfg, len: usize, init: T, map: M, reduce: R) -> T
where
    T: Send,
    M: Fn(std::ops::Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    let ranges = split_ranges(len, cfg.threads());
    if ranges.is_empty() {
        return init;
    }
    if ranges.len() == 1 {
        return reduce(init, map(ranges.into_iter().next().expect("one range")));
    }
    let partials: Vec<T> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(|_| map(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel kernel panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");
    partials.into_iter().fold(init, reduce)
}

/// Parallel `‖A·w − y‖²` — the least-squares residual used for objective
/// evaluation. `y.len()` must equal `A.nrows()` and `w.len()` `A.ncols()`.
pub fn par_residual_sq(cfg: ParallelismCfg, a: &Matrix, w: &[f64], y: &[f64]) -> f64 {
    assert_eq!(y.len(), a.nrows(), "par_residual_sq: y dim mismatch");
    assert_eq!(w.len(), a.ncols(), "par_residual_sq: w dim mismatch");
    par_map_reduce(
        cfg,
        a.nrows(),
        0.0,
        |r| {
            let mut acc = 0.0;
            for i in r {
                let e = a.row_dot(i, w) - y[i];
                acc += e * e;
            }
            acc
        },
        |x, y| x + y,
    )
}

/// Parallel `out = A·w`. `out.len()` must equal `A.nrows()`.
pub fn par_matvec(cfg: ParallelismCfg, a: &Matrix, w: &[f64], out: &mut [f64]) {
    assert_eq!(out.len(), a.nrows(), "par_matvec: out dim mismatch");
    assert_eq!(w.len(), a.ncols(), "par_matvec: w dim mismatch");
    let ranges = split_ranges(a.nrows(), cfg.threads());
    if ranges.len() <= 1 {
        a.matvec(w, out);
        return;
    }
    // Split the output buffer to match the row ranges so each thread writes
    // its own disjoint chunk.
    crossbeam::thread::scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            s.spawn(move |_| {
                for (k, i) in r.enumerate() {
                    chunk[k] = a.row_dot(i, w);
                }
            });
        }
    })
    .expect("crossbeam scope failed");
}

/// Process-wide pool of per-thread partial buffers for [`par_matvec_t`].
/// The transpose kernel needs one `ncols`-sized accumulator per thread per
/// call; recycling them here means driver-side objective evaluation stops
/// allocating O(threads·d) on every eval once the pool is warm (buffers
/// only grow, never shrink).
static PARTIAL_POOL: std::sync::Mutex<Vec<Vec<f64>>> = std::sync::Mutex::new(Vec::new());

/// Checks a zeroed `dim`-length partial out of the pool (warm when one was
/// returned before; its capacity is reused).
fn checkout_partial(dim: usize) -> Vec<f64> {
    let mut buf = PARTIAL_POOL
        .lock()
        .expect("partial pool poisoned")
        .pop()
        .unwrap_or_default();
    buf.clear();
    buf.resize(dim, 0.0);
    buf
}

fn give_back_partial(buf: Vec<f64>) {
    PARTIAL_POOL
        .lock()
        .expect("partial pool poisoned")
        .push(buf);
}

/// Parallel `out = Aᵀ·v` (overwrites `out`). Each thread accumulates into a
/// private buffer drawn from a process-wide pool (no O(threads·d)
/// allocation once warm); buffers are summed into `out` in range order,
/// which is the exact operation order of the historical fold — for a
/// given thread count, results are bit-identical to the old
/// implementation regardless of pool warmth. (Changing the thread count
/// regroups the f64 partial sums and so changes the bits, exactly as it
/// always has.) `v.len()` must equal `A.nrows()` and `out.len()`
/// `A.ncols()`.
pub fn par_matvec_t(cfg: ParallelismCfg, a: &Matrix, v: &[f64], out: &mut [f64]) {
    assert_eq!(v.len(), a.nrows(), "par_matvec_t: v dim mismatch");
    assert_eq!(out.len(), a.ncols(), "par_matvec_t: out dim mismatch");
    let ranges = split_ranges(a.nrows(), cfg.threads());
    let mut partials: Vec<Vec<f64>> = ranges.iter().map(|_| checkout_partial(a.ncols())).collect();
    if ranges.len() > 1 {
        crossbeam::thread::scope(|s| {
            for (r, buf) in ranges.iter().zip(partials.iter_mut()) {
                let r = r.clone();
                s.spawn(move |_| {
                    for i in r {
                        a.row_axpy(i, v[i], buf);
                    }
                });
            }
        })
        .expect("crossbeam scope failed");
    } else if let (Some(r), Some(buf)) = (ranges.first(), partials.first_mut()) {
        for i in r.clone() {
            a.row_axpy(i, v[i], buf);
        }
    }
    // Zero-init plus in-order adds: the same f64 sequence as folding the
    // partials into a fresh accumulator, so values are unchanged.
    crate::dense::zero(out);
    for buf in partials {
        crate::dense::add_assign(out, &buf);
        give_back_partial(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    fn mat() -> Matrix {
        Matrix::Sparse(
            CsrMatrix::from_triplets(
                &(0..40)
                    .map(|i| (i, (i % 7) as u32, (i as f64) * 0.5 + 1.0))
                    .collect::<Vec<_>>(),
                40,
                7,
            )
            .unwrap(),
        )
    }

    #[test]
    fn split_ranges_covers_everything() {
        for len in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8, 100] {
                let rs = split_ranges(len, parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                // Contiguity.
                let mut expect = 0;
                for r in &rs {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn par_map_reduce_sums() {
        let cfg = ParallelismCfg::with_threads(4);
        let s = par_map_reduce(cfg, 1000, 0u64, |r| r.map(|i| i as u64).sum(), |a, b| a + b);
        assert_eq!(s, 499_500);
    }

    #[test]
    fn par_matvec_matches_serial() {
        let a = mat();
        let w: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut serial = vec![0.0; 40];
        a.matvec(&w, &mut serial);
        for t in [1usize, 2, 3, 8] {
            let mut par = vec![0.0; 40];
            par_matvec(ParallelismCfg::with_threads(t), &a, &w, &mut par);
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn par_matvec_t_matches_serial() {
        let a = mat();
        let v: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let mut serial = vec![0.0; 7];
        a.matvec_t_acc(&v, &mut serial);
        for t in [1usize, 3, 8] {
            let mut par = vec![0.0; 7];
            par_matvec_t(ParallelismCfg::with_threads(t), &a, &v, &mut par);
            for (p, s) in par.iter().zip(serial.iter()) {
                assert!((p - s).abs() < 1e-9, "threads={t}");
            }
        }
    }

    #[test]
    fn par_residual_matches_direct() {
        let a = mat();
        let w: Vec<f64> = vec![0.25; 7];
        let y: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let mut av = vec![0.0; 40];
        a.matvec(&w, &mut av);
        let direct: f64 = av.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum();
        let par = par_residual_sq(ParallelismCfg::with_threads(3), &a, &w, &y);
        assert!((par - direct).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Matrix::Sparse(CsrMatrix::from_rows(&[], 4).unwrap());
        assert_eq!(
            par_residual_sq(ParallelismCfg::auto(), &a, &[0.0; 4], &[]),
            0.0
        );
    }
}
