//! Gradient compression: top-k sparsification with error feedback, plus
//! scale-normalized int8 / IEEE-half value quantization.
//!
//! The compressor keeps the k largest-magnitude coordinates of each delta
//! and folds everything it drops into a per-partition residual
//! ([`EfState`]) that is added back into the *next* delta before
//! selection — the error-feedback scheme ASAP-style approximate
//! communication relies on. Shipped values can additionally be quantized
//! to 8-bit codes or half-precision against a per-message scale, and the
//! residual absorbs the quantization error too: the telescoping identity
//!
//! ```text
//! Σₜ shippedₜ + residual_T = Σₜ rawₜ        (per coordinate, residual₀ = 0)
//! ```
//!
//! holds to floating-point accumulation error, so nothing the compressor
//! drops is ever lost — only delayed.
//!
//! Everything here is deterministic: selection uses a total order
//! (magnitude descending, index ascending on ties), quantization is pure
//! per-value arithmetic against an `f64` scale, and dequantization of a
//! code vector reproduces the exact same bits whether it runs in the
//! simulator's task closure or in a remote worker process. That is what
//! lets compressed runs stay byte-gated on the simulated engine.

use crate::delta::GradDelta;
use crate::sparse::{merge_union_u32, SparseVec};

/// Value quantization applied to shipped (top-k selected) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quant {
    /// Ship full `f64` values (sparsification only).
    #[default]
    Exact,
    /// Scale-normalized IEEE 754 half precision: `v ≈ f16(v/s)·s` with
    /// per-message scale `s = max|v|`; error ≤ `s · 2⁻¹⁰` per value.
    F16,
    /// Scale-normalized 8-bit codes: `v ≈ round(v·127/s)·s/127`; error ≤
    /// `s / 254` per value.
    I8,
}

/// Wire bytes of a compressed sparse delta with `nnz` shipped entries, as
/// both the simulator's modeled accounting and the remote frame layer
/// charge it. Single source of truth: the `sparklet` payload codec for
/// [`CompressedDelta`] produces exactly this many bytes.
///
/// * `Exact`: compressed-delta tag + sparse `GradDelta` encoding
///   (tag + nnz + dim headers + 12 bytes/entry).
/// * `I8`: tag + nnz + dim + scale headers + 5 bytes/entry.
/// * `F16`: tag + nnz + dim + scale headers + 6 bytes/entry.
pub fn quant_wire_bytes(quant: Quant, nnz: usize) -> u64 {
    match quant {
        Quant::Exact => 18 + 12 * nnz as u64,
        Quant::I8 => 25 + 5 * nnz as u64,
        Quant::F16 => 25 + 6 * nnz as u64,
    }
}

/// Converts an `f32` to IEEE 754 half-precision bits, rounding to nearest
/// even. Overflow saturates to ±∞; subnormal halves are produced below
/// 2⁻¹⁴ and magnitudes under 2⁻²⁵ flush to (signed) zero.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 255 {
        // Infinity or NaN (keep a quiet-NaN mantissa bit set).
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127;
    if e >= 16 {
        return sign | 0x7c00;
    }
    if e >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        let half = 1u32 << 12;
        let mut m = man >> 13;
        let rem = man & 0x1fff;
        let mut he = (e + 15) as u32;
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
            if m == 0x400 {
                m = 0;
                he += 1;
                if he >= 31 {
                    return sign | 0x7c00;
                }
            }
        }
        return sign | ((he as u16) << 10) | m as u16;
    }
    if e >= -25 {
        // Subnormal half: shift the full (implicit-bit) mantissa into the
        // 10-bit field; a round-up to 0x400 lands exactly on the smallest
        // normal encoding.
        let shift = 13 + (-14 - e) as u32;
        let man_full = man | 0x0080_0000;
        let m = man_full >> shift;
        let rem = man_full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut m16 = m as u16;
        if rem > half || (rem == half && (m16 & 1) == 1) {
            m16 += 1;
        }
        return sign | m16;
    }
    sign
}

/// Expands IEEE 754 half-precision bits to `f64` (exactly — every half is
/// representable in double precision).
pub fn f16_bits_to_f64(bits: u16) -> f64 {
    let sign = if bits & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = ((bits >> 10) & 0x1f) as i32;
    let man = (bits & 0x3ff) as f64;
    match exp {
        0 => sign * man * (2.0f64).powi(-24),
        31 => {
            if man == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        }
        e => sign * (1.0 + man / 1024.0) * (2.0f64).powi(e - 15),
    }
}

/// Quantizes `v` against `scale` to a half-precision code of `v/scale`.
/// Callers guarantee `|v| ≤ scale` (the compressor uses `scale = max|v|`),
/// so the normalized value is in `[-1, 1]` and never overflows. A
/// non-finite scale (the signature of a NaN/inf coordinate upstream)
/// quantizes everything to the zero code rather than emitting a frame
/// whose every decoded coordinate is NaN.
#[inline]
pub fn quantize_f16(v: f64, scale: f64) -> u16 {
    if scale == 0.0 || !scale.is_finite() {
        0
    } else {
        f32_to_f16_bits((v / scale) as f32)
    }
}

/// Dequantizes a half-precision code produced by [`quantize_f16`].
#[inline]
pub fn dequantize_f16(code: u16, scale: f64) -> f64 {
    f16_bits_to_f64(code) * scale
}

/// Quantizes `v` against `scale` to a signed 8-bit code in `[-127, 127]`.
/// As with [`quantize_f16`], a non-finite scale maps every value to the
/// zero code instead of poisoning the whole frame (`NaN as i8` is 0, but
/// `v / inf` silently flushing all magnitudes to zero *codes* while the
/// header still advertised an infinite scale would decode to NaN/inf).
#[inline]
pub fn quantize_i8(v: f64, scale: f64) -> i8 {
    if scale == 0.0 || !scale.is_finite() {
        0
    } else {
        (v / scale * 127.0).round().clamp(-127.0, 127.0) as i8
    }
}

/// Dequantizes an 8-bit code produced by [`quantize_i8`].
#[inline]
pub fn dequantize_i8(code: i8, scale: f64) -> f64 {
    code as f64 * scale / 127.0
}

/// Selects the `k` largest-magnitude entries of a sparse pairing under a
/// deterministic total order (magnitude descending, index ascending on
/// ties) and appends them to `out_idx`/`out_val` **sorted by index**.
/// `order` is position scratch reused across calls; with `k ≥ idx.len()`
/// every entry is kept. Allocation-free once the scratch and output
/// capacities cover the inputs.
pub fn select_top_k(
    idx: &[u32],
    val: &[f64],
    k: usize,
    order: &mut Vec<u32>,
    out_idx: &mut Vec<u32>,
    out_val: &mut Vec<f64>,
) {
    debug_assert_eq!(idx.len(), val.len());
    if k == 0 {
        return;
    }
    if idx.len() <= k {
        out_idx.extend_from_slice(idx);
        out_val.extend_from_slice(val);
        return;
    }
    order.clear();
    order.extend(0..idx.len() as u32);
    let by_magnitude = |&a: &u32, &b: &u32| {
        val[b as usize]
            .abs()
            .total_cmp(&val[a as usize].abs())
            .then(a.cmp(&b))
    };
    order.select_nth_unstable_by(k - 1, by_magnitude);
    order.truncate(k);
    // Positions ascend together with indices, so sorting positions sorts
    // the selection by coordinate.
    order.sort_unstable();
    for &p in order.iter() {
        out_idx.push(idx[p as usize]);
        out_val.push(val[p as usize]);
    }
}

/// A compressed gradient delta in wire form: the shipped support plus
/// either exact values or quantization codes with their scale. This is
/// what remote workers actually put on the TCP socket (via the `sparklet`
/// payload codec); the simulator models the identical byte count via
/// [`quant_wire_bytes`] without materializing codes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedDelta {
    /// Unquantized (sparsification-only) passthrough.
    Exact(GradDelta),
    /// 8-bit codes against a per-message scale.
    I8 {
        /// Embedding dimension.
        dim: usize,
        /// Per-message scale (`max|v|` over shipped values).
        scale: f64,
        /// Shipped support, strictly increasing.
        indices: Vec<u32>,
        /// Codes parallel to `indices`.
        codes: Vec<i8>,
    },
    /// Half-precision codes against a per-message scale.
    F16 {
        /// Embedding dimension.
        dim: usize,
        /// Per-message scale (`max|v|` over shipped values).
        scale: f64,
        /// Shipped support, strictly increasing.
        indices: Vec<u32>,
        /// Codes parallel to `indices`.
        codes: Vec<u16>,
    },
}

impl CompressedDelta {
    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        match self {
            CompressedDelta::Exact(g) => g.dim(),
            CompressedDelta::I8 { dim, .. } | CompressedDelta::F16 { dim, .. } => *dim,
        }
    }

    /// Shipped entries.
    pub fn nnz(&self) -> usize {
        match self {
            CompressedDelta::Exact(g) => g.nnz(),
            CompressedDelta::I8 { indices, .. } | CompressedDelta::F16 { indices, .. } => {
                indices.len()
            }
        }
    }

    /// Exact wire size in bytes (what the payload codec emits and what the
    /// simulator charges). Matches [`quant_wire_bytes`] on sparse deltas.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            // Tag byte + the GradDelta payload encoding (itself tagged).
            CompressedDelta::Exact(g) => {
                1 + 1
                    + match g {
                        GradDelta::Dense(v) => 8 + 8 * v.len() as u64,
                        GradDelta::Sparse(s) => 16 + 12 * s.nnz() as u64,
                    }
            }
            CompressedDelta::I8 { indices, .. } => quant_wire_bytes(Quant::I8, indices.len()),
            CompressedDelta::F16 { indices, .. } => quant_wire_bytes(Quant::F16, indices.len()),
        }
    }

    /// Dequantizes into caller-provided buffers (cleared first) and builds
    /// the sparse [`GradDelta`] the server applies — bit-identical to the
    /// values the compressing side recorded in its residual update.
    ///
    /// # Panics
    /// Panics if the stored indices violate the sparse invariant (cannot
    /// happen for values produced by [`EfState`] or the validated decoder).
    pub fn into_delta_buffers(self, mut idx: Vec<u32>, mut val: Vec<f64>) -> GradDelta {
        idx.clear();
        val.clear();
        match self {
            CompressedDelta::Exact(g) => g,
            CompressedDelta::I8 {
                dim,
                scale,
                indices,
                codes,
            } => {
                idx.extend_from_slice(&indices);
                val.extend(codes.iter().map(|&c| dequantize_i8(c, scale)));
                GradDelta::Sparse(
                    SparseVec::new(idx, val, dim).expect("compressed support is sorted"),
                )
            }
            CompressedDelta::F16 {
                dim,
                scale,
                indices,
                codes,
            } => {
                idx.extend_from_slice(&indices);
                val.extend(codes.iter().map(|&c| dequantize_f16(c, scale)));
                GradDelta::Sparse(
                    SparseVec::new(idx, val, dim).expect("compressed support is sorted"),
                )
            }
        }
    }

    /// Dequantizes to an owned [`GradDelta`] (allocates; cold paths).
    pub fn to_delta(&self) -> GradDelta {
        self.clone().into_delta_buffers(Vec::new(), Vec::new())
    }
}

/// A gradient delta carried a non-finite (NaN/±inf) coordinate.
///
/// Error feedback cannot absorb such a frame: `residual += g` would plant
/// the poison, and because `NaN - NaN = NaN` no later subtraction can ever
/// remove it — the telescoping identity is destroyed permanently, not
/// delayed. [`EfState::try_compress`] therefore rejects the frame *before*
/// touching any state, naming the first offending coordinate so the caller
/// can log it and fall back to shipping the raw delta uncompressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteDelta {
    /// First coordinate (embedding index) holding a non-finite value.
    pub coordinate: u32,
    /// The offending value (NaN, `inf`, or `-inf`).
    pub value: f64,
}

impl std::fmt::Display for NonFiniteDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite gradient delta: coordinate {} is {}",
            self.coordinate, self.value
        )
    }
}

impl std::error::Error for NonFiniteDelta {}

/// Scans a delta for its first non-finite coordinate.
fn first_non_finite(g: &GradDelta) -> Option<NonFiniteDelta> {
    match g {
        GradDelta::Sparse(s) => s
            .indices()
            .iter()
            .zip(s.values())
            .find(|(_, v)| !v.is_finite())
            .map(|(&i, &v)| NonFiniteDelta {
                coordinate: i,
                value: v,
            }),
        GradDelta::Dense(d) => d
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
            .map(|(i, &v)| NonFiniteDelta {
                coordinate: i as u32,
                value: v,
            }),
    }
}

/// Per-coordinate raw/shipped running sums for the telescoping-identity
/// test rig.
#[derive(Debug, Clone)]
struct TrackSums {
    raw: Vec<f64>,
    shipped: Vec<f64>,
}

/// Per-partition error-feedback compressor state.
///
/// One `EfState` lives wherever one partition's gradient stream is
/// produced — keyed by partition in the driver-side bank for simulated and
/// threaded runs, or in the worker-process cache for remote runs. Each
/// [`EfState::compress`] call accumulates the raw delta into the residual,
/// selects the top-k coordinates of the *accumulated* vector, quantizes
/// them, and subtracts the **dequantized** shipped values back out — so
/// the residual carries both the sparsification and the quantization
/// error forward. All buffers are retained across calls; once warm the
/// per-step work performs no heap allocation.
#[derive(Debug, Clone)]
pub struct EfState {
    dim: usize,
    residual: Vec<f64>,
    /// Sorted coordinates where `residual` may be nonzero (sparse mode).
    support: Vec<u32>,
    /// Once any dense delta arrives, candidate gathering scans the full
    /// dimension instead of the support set.
    dense: bool,
    merge_tmp: Vec<u32>,
    cand_idx: Vec<u32>,
    cand_val: Vec<f64>,
    order: Vec<u32>,
    sel_idx: Vec<u32>,
    sel_val: Vec<f64>,
    codes_i8: Vec<i8>,
    codes_f16: Vec<u16>,
    scale: f64,
    quant: Quant,
    track: Option<Box<TrackSums>>,
}

impl EfState {
    /// Fresh (zero-residual) state for deltas of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            residual: vec![0.0; dim],
            support: Vec::new(),
            dense: false,
            merge_tmp: Vec::new(),
            cand_idx: Vec::new(),
            cand_val: Vec::new(),
            order: Vec::new(),
            sel_idx: Vec::new(),
            sel_val: Vec::new(),
            codes_i8: Vec::new(),
            codes_f16: Vec::new(),
            scale: 0.0,
            quant: Quant::Exact,
            track: None,
        }
    }

    /// State seeded from a previously accumulated `residual` — the
    /// durable-resume path: a checkpointed run serializes each partition's
    /// residual and a restarted run rebuilds its compressor states from
    /// them, so the error-feedback telescoping picks up exactly where the
    /// crashed run stopped. The support is recovered as the residual's
    /// nonzero coordinates; compression from a restored state is
    /// bit-identical to continuing the original one.
    pub fn from_residual(residual: Vec<f64>) -> Self {
        let support: Vec<u32> = residual
            .iter()
            .enumerate()
            .filter(|(_, &r)| r != 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut s = Self::new(0);
        s.dim = residual.len();
        s.residual = residual;
        s.support = support;
        s
    }

    /// Enables per-coordinate raw/shipped sum tracking (test rig for the
    /// telescoping identity; costs two dense vectors).
    #[must_use]
    pub fn with_tracking(mut self) -> Self {
        self.track = Some(Box::new(TrackSums {
            raw: vec![0.0; self.dim],
            shipped: vec![0.0; self.dim],
        }));
        self
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One compression step: accumulate `g` into the residual, select the
    /// top-`k` magnitudes of the accumulated vector, quantize, and leave
    /// the un-shipped remainder (plus quantization error) in the residual.
    /// The shipped message is exposed through the accessors until the next
    /// call.
    ///
    /// # Panics
    /// Panics if `g.dim() != self.dim()`, `k == 0`, or `g` carries a
    /// non-finite coordinate (use [`EfState::try_compress`] to handle that
    /// case as a recoverable, positioned error instead).
    pub fn compress(&mut self, g: &GradDelta, k: usize, quant: Quant) {
        if let Err(e) = self.try_compress(g, k, quant) {
            panic!("EfState::compress: {e}");
        }
    }

    /// Fallible twin of [`EfState::compress`]: rejects a delta carrying a
    /// NaN/inf coordinate with a positioned [`NonFiniteDelta`] **before
    /// mutating anything** — the residual, support, tracking sums, and the
    /// previously shipped message are all left exactly as they were, so
    /// the caller can ship the raw frame uncompressed (or drop it) and
    /// keep compressing subsequent finite deltas against intact state.
    ///
    /// # Panics
    /// Panics if `g.dim() != self.dim()` or `k == 0`.
    pub fn try_compress(
        &mut self,
        g: &GradDelta,
        k: usize,
        quant: Quant,
    ) -> Result<(), NonFiniteDelta> {
        assert_eq!(g.dim(), self.dim, "EfState: delta dimension mismatch");
        assert!(k > 0, "EfState: top-k needs k >= 1");
        // Poison check first: once `residual += g` runs with a NaN inside,
        // `NaN - NaN = NaN` makes the state unrecoverable forever.
        if let Some(e) = first_non_finite(g) {
            return Err(e);
        }
        if let Some(t) = self.track.as_deref_mut() {
            g.axpy_into(1.0, &mut t.raw);
        }
        // Residual += g, tracking the support while everything is sparse.
        match g {
            GradDelta::Sparse(s) if !self.dense => {
                s.axpy_into_dense(1.0, &mut self.residual);
                self.merge_tmp.clear();
                merge_union_u32(&self.support, s.indices(), &mut self.merge_tmp);
                std::mem::swap(&mut self.support, &mut self.merge_tmp);
            }
            _ => {
                g.axpy_into(1.0, &mut self.residual);
                self.dense = true;
            }
        }
        // Gather nonzero candidates; the rebuilt support drops coordinates
        // that cancelled to exactly zero so it cannot grow stale entries.
        self.cand_idx.clear();
        self.cand_val.clear();
        if self.dense {
            for (i, &v) in self.residual.iter().enumerate() {
                if v != 0.0 {
                    self.cand_idx.push(i as u32);
                    self.cand_val.push(v);
                }
            }
        } else {
            for &i in self.support.iter() {
                let v = self.residual[i as usize];
                if v != 0.0 {
                    self.cand_idx.push(i);
                    self.cand_val.push(v);
                }
            }
            self.support.clear();
            self.support.extend_from_slice(&self.cand_idx);
        }
        self.sel_idx.clear();
        self.sel_val.clear();
        select_top_k(
            &self.cand_idx,
            &self.cand_val,
            k,
            &mut self.order,
            &mut self.sel_idx,
            &mut self.sel_val,
        );
        // Quantize in place: sel_val becomes the *dequantized* shipped
        // values, the code buffers hold the wire form.
        self.quant = quant;
        self.scale = self.sel_val.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        self.codes_i8.clear();
        self.codes_f16.clear();
        match quant {
            Quant::Exact => {}
            Quant::I8 => {
                for v in self.sel_val.iter_mut() {
                    let c = quantize_i8(*v, self.scale);
                    self.codes_i8.push(c);
                    *v = dequantize_i8(c, self.scale);
                }
            }
            Quant::F16 => {
                for v in self.sel_val.iter_mut() {
                    let c = quantize_f16(*v, self.scale);
                    self.codes_f16.push(c);
                    *v = dequantize_f16(c, self.scale);
                }
            }
        }
        // Residual -= shipped (dequantized), so it carries exactly what
        // the wire did not.
        for (&i, &v) in self.sel_idx.iter().zip(self.sel_val.iter()) {
            self.residual[i as usize] -= v;
        }
        if let Some(t) = self.track.as_deref_mut() {
            for (&i, &v) in self.sel_idx.iter().zip(self.sel_val.iter()) {
                t.shipped[i as usize] += v;
            }
        }
        Ok(())
    }

    /// Shipped support of the last [`EfState::compress`] call.
    pub fn shipped_indices(&self) -> &[u32] {
        &self.sel_idx
    }

    /// Shipped (dequantized) values, parallel to
    /// [`EfState::shipped_indices`].
    pub fn shipped_values(&self) -> &[f64] {
        &self.sel_val
    }

    /// Per-message quantization scale of the last call.
    pub fn shipped_scale(&self) -> f64 {
        self.scale
    }

    /// Modeled/actual wire bytes of the last shipped message.
    pub fn wire_bytes(&self) -> u64 {
        quant_wire_bytes(self.quant, self.sel_idx.len())
    }

    /// Materializes the last shipped message as an owned wire value (the
    /// remote worker's response body; allocates).
    pub fn to_compressed(&self) -> CompressedDelta {
        match self.quant {
            Quant::Exact => CompressedDelta::Exact(GradDelta::Sparse(
                SparseVec::new(self.sel_idx.clone(), self.sel_val.clone(), self.dim)
                    .expect("selection keeps indices sorted"),
            )),
            Quant::I8 => CompressedDelta::I8 {
                dim: self.dim,
                scale: self.scale,
                indices: self.sel_idx.clone(),
                codes: self.codes_i8.clone(),
            },
            Quant::F16 => CompressedDelta::F16 {
                dim: self.dim,
                scale: self.scale,
                indices: self.sel_idx.clone(),
                codes: self.codes_f16.clone(),
            },
        }
    }

    /// The current residual (what has been dropped so far and will be
    /// added back before the next selection).
    pub fn residual(&self) -> &[f64] {
        &self.residual
    }

    /// Per-coordinate `(Σ raw, Σ shipped)` sums when tracking is enabled —
    /// the telescoping identity is `raw[i] = shipped[i] + residual[i]` up
    /// to floating-point accumulation error.
    pub fn tracking(&self) -> Option<(&[f64], &[f64])> {
        self.track
            .as_deref()
            .map(|t| (t.raw.as_slice(), t.shipped.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(pairs: &[(u32, f64)], dim: usize) -> GradDelta {
        GradDelta::Sparse(SparseVec::from_pairs(pairs.to_vec(), dim).unwrap())
    }

    #[test]
    fn restored_residual_continues_compression_bit_identically() {
        // Two states walk the same delta stream; one is torn down after
        // two steps and rebuilt from its serialized residual. The shipped
        // messages and residuals of the remaining steps must agree bitwise.
        let dim = 64;
        let mut orig = EfState::new(dim);
        let stream: Vec<GradDelta> = (0..5u32)
            .map(|k| sparse(&[(k % 7, 1.5 + f64::from(k)), (11 + k, -0.25)], dim))
            .collect();
        for g in &stream[..2] {
            orig.compress(g, 2, Quant::F16);
        }
        let mut restored = EfState::from_residual(orig.residual().to_vec());
        for g in &stream[2..] {
            orig.compress(g, 2, Quant::F16);
            restored.compress(g, 2, Quant::F16);
            assert_eq!(orig.shipped_indices(), restored.shipped_indices());
            assert_eq!(orig.shipped_values(), restored.shipped_values());
            assert_eq!(
                orig.shipped_scale().to_bits(),
                restored.shipped_scale().to_bits()
            );
            assert_eq!(orig.residual(), restored.residual());
        }
    }

    #[test]
    fn from_residual_recovers_dim_and_support() {
        let mut r = vec![0.0; 10];
        r[3] = 1.0;
        r[7] = -2.0;
        let s = EfState::from_residual(r.clone());
        assert_eq!(s.dim(), 10);
        assert_eq!(s.residual(), r.as_slice());
    }

    #[test]
    fn f16_roundtrips_representable_values() {
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 0.75, 1.0 / 1024.0] {
            let bits = f32_to_f16_bits(v as f32);
            assert_eq!(f16_bits_to_f64(bits), v, "v={v}");
        }
        // Signed zero and saturation.
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f64(f32_to_f16_bits(1e9)), f64::INFINITY);
        assert!(f16_bits_to_f64(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_error_stays_within_half_ulp_bound() {
        let mut x = -1.0f64;
        while x <= 1.0 {
            let dq = f16_bits_to_f64(f32_to_f16_bits(x as f32));
            assert!(
                (dq - x).abs() <= (2.0f64).powi(-10) * x.abs().max(2.0f64.powi(-14)) + 1e-12,
                "x={x} dq={dq}"
            );
            x += 0.000_137;
        }
    }

    #[test]
    fn i8_codes_are_exact_on_their_own_grid_and_bounded_elsewhere() {
        let scale = 3.0;
        for c in -127i32..=127 {
            let v = dequantize_i8(c as i8, scale);
            assert_eq!(quantize_i8(v, scale), c as i8);
        }
        let mut x = -3.0f64;
        while x <= 3.0 {
            let dq = dequantize_i8(quantize_i8(x, scale), scale);
            assert!((dq - x).abs() <= scale / 254.0 + 1e-12, "x={x}");
            x += 0.000_739;
        }
        assert_eq!(quantize_i8(1.0, 0.0), 0);
    }

    #[test]
    fn top_k_matches_naive_sort_oracle() {
        let idx: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let val: Vec<f64> = (0..200)
            .map(|i| ((i * 2_654_435_761u64 % 1_000) as f64 - 500.0) / 97.0)
            .collect();
        for k in [1usize, 5, 50, 199, 200, 500] {
            let mut order = Vec::new();
            let (mut oi, mut ov) = (Vec::new(), Vec::new());
            select_top_k(&idx, &val, k, &mut order, &mut oi, &mut ov);
            // Oracle: full sort by (|v| desc, idx asc), take k, re-sort by index.
            let mut all: Vec<(u32, f64)> = idx.iter().copied().zip(val.iter().copied()).collect();
            all.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
            all.truncate(k);
            all.sort_by_key(|e| e.0);
            assert_eq!(oi, all.iter().map(|e| e.0).collect::<Vec<_>>(), "k={k}");
            assert_eq!(ov, all.iter().map(|e| e.1).collect::<Vec<_>>(), "k={k}");
        }
    }

    #[test]
    fn error_feedback_telescopes_per_coordinate() {
        let dim = 40;
        let mut ef = EfState::new(dim).with_tracking();
        let mut state = 1u64;
        for step in 0..50 {
            let pairs: Vec<(u32, f64)> = (0..dim as u32)
                .filter_map(|i| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1);
                    ((state >> 60) < 6)
                        .then(|| (i, ((state >> 20) as f64 / (1u64 << 43) as f64) - 1.0))
                })
                .collect();
            if pairs.is_empty() {
                continue;
            }
            let g = sparse(&pairs, dim);
            let quant = [Quant::Exact, Quant::I8, Quant::F16][step % 3];
            ef.compress(&g, 3, quant);
        }
        let (raw, shipped) = ef.tracking().unwrap();
        for i in 0..dim {
            let drift = (raw[i] - shipped[i] - ef.residual()[i]).abs();
            assert!(drift <= 1e-9, "coordinate {i} drifts by {drift}");
        }
    }

    #[test]
    fn exact_unbounded_k_is_a_passthrough_with_zero_residual() {
        let dim = 16;
        let mut ef = EfState::new(dim);
        let g = sparse(&[(1, 0.5), (7, -2.0), (15, 1.25)], dim);
        ef.compress(&g, usize::MAX, Quant::Exact);
        assert_eq!(ef.shipped_indices(), &[1, 7, 15]);
        assert_eq!(ef.shipped_values(), &[0.5, -2.0, 1.25]);
        assert!(ef.residual().iter().all(|&r| r == 0.0));
        // And again: the residual stayed exactly zero, so the next ship is
        // again exactly the raw delta.
        ef.compress(&g, usize::MAX, Quant::Exact);
        assert_eq!(ef.shipped_values(), &[0.5, -2.0, 1.25]);
    }

    #[test]
    fn dropped_mass_returns_on_later_steps() {
        let dim = 8;
        let mut ef = EfState::new(dim);
        ef.compress(
            &sparse(&[(0, 1.0), (1, 0.4), (2, 0.3)], dim),
            1,
            Quant::Exact,
        );
        assert_eq!(ef.shipped_indices(), &[0]);
        assert_eq!(ef.residual()[1], 0.4);
        // Next step ships the accumulated coordinate 1 (0.4 + 0.4 = 0.8
        // beats the fresh 0.5 at coordinate 3).
        ef.compress(&sparse(&[(1, 0.4), (3, 0.5)], dim), 1, Quant::Exact);
        assert_eq!(ef.shipped_indices(), &[1]);
        assert_eq!(ef.shipped_values(), &[0.8]);
        assert_eq!(ef.residual()[3], 0.5);
    }

    #[test]
    fn dense_deltas_switch_to_dense_candidate_scan() {
        let dim = 6;
        let mut ef = EfState::new(dim);
        ef.compress(
            &GradDelta::Dense(vec![0.1, -0.9, 0.0, 0.4, 0.0, 0.2]),
            2,
            Quant::Exact,
        );
        assert_eq!(ef.shipped_indices(), &[1, 3]);
        ef.compress(&sparse(&[(2, 0.05)], dim), 2, Quant::Exact);
        // Residual 0.2 at index 5 still wins over the fresh 0.05.
        assert_eq!(ef.shipped_indices(), &[0, 5]);
    }

    #[test]
    fn wire_bytes_beat_exact_encoding() {
        let dim = 1000;
        let pairs: Vec<(u32, f64)> = (0..200).map(|i| (i, 1.0 + i as f64)).collect();
        let mut ef = EfState::new(dim);
        ef.compress(&sparse(&pairs, dim), 32, Quant::I8);
        assert_eq!(ef.wire_bytes(), 25 + 5 * 32);
        let cd = ef.to_compressed();
        assert_eq!(cd.wire_bytes(), ef.wire_bytes());
        assert_eq!(cd.nnz(), 32);
        // >5x smaller than the exact sparse wire for the same support.
        assert!(quant_wire_bytes(Quant::Exact, 200) > 5 * ef.wire_bytes());
    }

    #[test]
    fn compressed_delta_dequantizes_to_shipped_values_bitwise() {
        let dim = 64;
        let pairs: Vec<(u32, f64)> = (0..40).map(|i| (i, (i as f64 - 20.0) / 7.0)).collect();
        for quant in [Quant::Exact, Quant::I8, Quant::F16] {
            let mut ef = EfState::new(dim);
            ef.compress(&sparse(&pairs, dim), 10, quant);
            let g = ef
                .to_compressed()
                .into_delta_buffers(Vec::new(), Vec::new());
            match &g {
                GradDelta::Sparse(s) => {
                    assert_eq!(s.indices(), ef.shipped_indices());
                    assert_eq!(s.values(), ef.shipped_values(), "{quant:?}");
                }
                GradDelta::Dense(_) => panic!("compressed deltas are sparse"),
            }
        }
    }

    #[test]
    fn compress_is_allocation_stable_once_warm() {
        let dim = 128;
        let mut ef = EfState::new(dim);
        let a = sparse(
            &(0..60)
                .map(|i| (i * 2, i as f64 - 30.0))
                .collect::<Vec<_>>(),
            dim,
        );
        let b = sparse(
            &(0..50)
                .map(|i| (i * 2 + 1, 25.0 - i as f64))
                .collect::<Vec<_>>(),
            dim,
        );
        // Two full rounds warm the support/merge ping-pong pair (their
        // capacities alternate by swap parity until both cover the union).
        for _ in 0..2 {
            ef.compress(&a, 8, Quant::I8);
            ef.compress(&b, 8, Quant::I8);
        }
        let caps = (
            ef.support.capacity(),
            ef.merge_tmp.capacity(),
            ef.cand_idx.capacity(),
            ef.order.capacity(),
            ef.sel_idx.capacity(),
            ef.codes_i8.capacity(),
        );
        for _ in 0..20 {
            ef.compress(&a, 8, Quant::I8);
            ef.compress(&b, 8, Quant::I8);
        }
        let after = (
            ef.support.capacity(),
            ef.merge_tmp.capacity(),
            ef.cand_idx.capacity(),
            ef.order.capacity(),
            ef.sel_idx.capacity(),
            ef.codes_i8.capacity(),
        );
        assert_eq!(caps, after);
    }

    #[test]
    fn non_finite_scale_quantizes_to_zero_codes() {
        for scale in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0] {
            assert_eq!(quantize_i8(1.0, scale), 0, "scale={scale}");
            assert_eq!(quantize_i8(f64::NAN, scale), 0, "scale={scale}");
            assert_eq!(quantize_f16(1.0, scale), 0, "scale={scale}");
            assert_eq!(quantize_f16(f64::NAN, scale), 0, "scale={scale}");
        }
    }

    #[test]
    fn try_compress_rejects_non_finite_with_position_and_no_mutation() {
        let mut ef = EfState::new(8).with_tracking();
        ef.try_compress(&sparse(&[(1, 1.0), (5, -3.0)], 8), 1, Quant::I8)
            .unwrap();
        let residual_before = ef.residual().to_vec();
        let shipped_before: Vec<u32> = ef.shipped_indices().to_vec();
        let (raw_before, sh_before) = {
            let (r, s) = ef.tracking().unwrap();
            (r.to_vec(), s.to_vec())
        };
        // Sparse frame with a NaN mid-support.
        let bad = sparse(&[(0, 2.0), (3, f64::NAN), (6, 1.0)], 8);
        let err = ef.try_compress(&bad, 1, Quant::I8).unwrap_err();
        assert_eq!(err.coordinate, 3);
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("coordinate 3"), "{err}");
        // Dense frame with an inf names its index too.
        let mut d = vec![0.0; 8];
        d[5] = f64::INFINITY;
        let err = ef
            .try_compress(&GradDelta::Dense(d), 1, Quant::F16)
            .unwrap_err();
        assert_eq!((err.coordinate, err.value), (5, f64::INFINITY));
        // Nothing moved: residual, last shipped message, tracking sums.
        assert_eq!(ef.residual(), residual_before.as_slice());
        assert_eq!(ef.shipped_indices(), shipped_before.as_slice());
        let (raw_after, sh_after) = ef.tracking().unwrap();
        assert_eq!(raw_after, raw_before.as_slice());
        assert_eq!(sh_after, sh_before.as_slice());
        assert!(
            !ef.dense,
            "a rejected dense frame must not flip the scan mode"
        );
    }

    #[test]
    fn telescoping_identity_stays_finite_across_rejected_frames() {
        // A hostile stream: every third frame carries a NaN or inf. The
        // caller's contract is to drop/ship-raw rejected frames; the
        // identity Σraw = Σshipped + residual over the *accepted* frames
        // must keep holding with entirely finite state.
        let mut ef = EfState::new(6).with_tracking();
        let mut rejected = 0;
        for step in 0..30 {
            let g = match step % 3 {
                0 => sparse(&[(0, 1.0 + step as f64), (4, -0.5)], 6),
                1 => sparse(&[(2, 0.25 * step as f64), (5, 3.0)], 6),
                _ => {
                    let v = if step % 2 == 0 {
                        f64::NAN
                    } else {
                        f64::INFINITY
                    };
                    sparse(&[(1, v)], 6)
                }
            };
            if ef.try_compress(&g, 1, Quant::I8).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 10);
        let (raw, shipped) = ef.tracking().unwrap();
        for i in 0..6 {
            assert!(raw[i].is_finite() && shipped[i].is_finite());
            assert!(ef.residual()[i].is_finite());
            let drift = (raw[i] - shipped[i] - ef.residual()[i]).abs();
            assert!(drift < 1e-9, "coordinate {i} telescopes: drift {drift}");
        }
    }

    #[test]
    fn compress_panics_on_non_finite_frames() {
        let mut ef = EfState::new(4);
        let bad = sparse(&[(2, f64::NAN)], 4);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ef.compress(&bad, 1, Quant::Exact)
        }));
        assert!(res.is_err(), "panicking wrapper surfaces the poison");
    }

    #[test]
    fn select_top_k_is_total_under_nan_and_inf() {
        // `total_cmp` orders NaN above +inf, so hostile magnitudes are
        // picked deterministically and the comparator never violates the
        // strict-weak-ordering contract `select_nth_unstable_by` needs.
        let idx: Vec<u32> = (0..8).collect();
        let val = vec![
            1.0,
            f64::NAN,
            -2.0,
            f64::INFINITY,
            0.5,
            -f64::NAN,
            3.0,
            f64::NEG_INFINITY,
        ];
        let mut order = Vec::new();
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        select_top_k(&idx, &val, 4, &mut order, &mut oi, &mut ov);
        // NaNs (|·| = NaN sorts greatest) then the infinities.
        assert_eq!(oi, vec![1, 3, 5, 7]);
        assert_eq!(ov.len(), 4);
    }
}
