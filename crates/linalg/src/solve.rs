//! Conjugate-gradient least-squares (CGLS) baseline solver.
//!
//! The paper measures `error = objective(w) − baseline` where the baseline is
//! obtained from a long Mllib SGD run. We instead compute the minimizer of
//! the (optionally ridge-regularized) least-squares objective directly with
//! CGLS, which is both faster and far more precise, and works for dense and
//! CSR data alike. CGLS applies conjugate gradients to the normal equations
//! `(AᵀA + λI) w = Aᵀy` without ever forming `AᵀA`.

use crate::dense;
use crate::matrix::Matrix;
use crate::parallel::{par_matvec, par_matvec_t, ParallelismCfg};

/// Convergence report for a [`cgls`] solve.
#[derive(Debug, Clone)]
pub struct CglsResult {
    /// The approximate minimizer.
    pub w: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final squared norm of the normal-equation residual `‖Aᵀr − λw‖²`.
    pub normal_residual_sq: f64,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Solves `min_w ‖A·w − y‖² + λ‖w‖²` with CGLS.
///
/// `tol` bounds the relative normal-equation residual
/// `‖Aᵀr − λw‖ / ‖Aᵀy‖`; `max_iter` caps the iteration count.
///
/// # Panics
/// Panics if `y.len() != a.nrows()` or `λ < 0`.
pub fn cgls(
    cfg: ParallelismCfg,
    a: &Matrix,
    y: &[f64],
    lambda: f64,
    tol: f64,
    max_iter: usize,
) -> CglsResult {
    assert_eq!(y.len(), a.nrows(), "cgls: y dim mismatch");
    assert!(lambda >= 0.0, "cgls: negative ridge parameter");
    let n = a.nrows();
    let d = a.ncols();

    let mut w = vec![0.0; d];
    // r = y − A·w = y at w = 0.
    let mut r = y.to_vec();
    // s = Aᵀr − λw.
    let mut s = vec![0.0; d];
    par_matvec_t(cfg, a, &r, &mut s);
    let s0_sq = dense::norm2_sq(&s);
    if s0_sq == 0.0 {
        return CglsResult {
            w,
            iterations: 0,
            normal_residual_sq: 0.0,
            converged: true,
        };
    }
    let mut p = s.clone();
    let mut gamma = s0_sq;
    let threshold = tol * tol * s0_sq;

    let mut q = vec![0.0; n];
    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..max_iter {
        iterations += 1;
        // q = A·p
        par_matvec(cfg, a, &p, &mut q);
        let denom = dense::norm2_sq(&q) + lambda * dense::norm2_sq(&p);
        if denom == 0.0 {
            break;
        }
        let alpha = gamma / denom;
        dense::axpy(alpha, &p, &mut w);
        dense::axpy(-alpha, &q, &mut r);
        // s = Aᵀr − λw
        par_matvec_t(cfg, a, &r, &mut s);
        dense::axpy(-lambda, &w, &mut s);
        let gamma_new = dense::norm2_sq(&s);
        if gamma_new <= threshold {
            gamma = gamma_new;
            converged = true;
            break;
        }
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        // p = s + β p
        for i in 0..d {
            p[i] = s[i] + beta * p[i];
        }
    }
    CglsResult {
        w,
        iterations,
        normal_residual_sq: gamma,
        converged,
    }
}

/// Convenience wrapper: the minimal value of `‖A·w − y‖² + λ‖w‖²` as found
/// by [`cgls`] with tight tolerance. Used to anchor convergence traces.
pub fn least_squares_optimum(cfg: ParallelismCfg, a: &Matrix, y: &[f64], lambda: f64) -> f64 {
    let sol = cgls(cfg, a, y, lambda, 1e-12, 10 * a.ncols().max(100));
    let mut pred = vec![0.0; a.nrows()];
    par_matvec(cfg, a, &sol.w, &mut pred);
    let mut resid = 0.0;
    for i in 0..pred.len() {
        let e = pred[i] - y[i];
        resid += e * e;
    }
    resid + lambda * dense::norm2_sq(&sol.w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::dense_mat::DenseMatrix;

    #[test]
    fn solves_identity_system() {
        // A = I₃, y = [1,2,3] → w = y exactly.
        let a = Matrix::Sparse(
            CsrMatrix::from_triplets(&[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)], 3, 3).unwrap(),
        );
        let res = cgls(
            ParallelismCfg::sequential(),
            &a,
            &[1.0, 2.0, 3.0],
            0.0,
            1e-12,
            50,
        );
        assert!(res.converged);
        for (wi, yi) in res.w.iter().zip([1.0, 2.0, 3.0]) {
            assert!((wi - yi).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_overdetermined_system() {
        // Least squares fit of y = 2x + 1 on points x = 0..5 (columns [x, 1]).
        let rows: Vec<Vec<f64>> = (0..5).map(|x| vec![x as f64, 1.0]).collect();
        let a = Matrix::Dense(DenseMatrix::from_rows(&rows).unwrap());
        let y: Vec<f64> = (0..5).map(|x| 2.0 * x as f64 + 1.0).collect();
        let res = cgls(ParallelismCfg::sequential(), &a, &y, 0.0, 1e-12, 100);
        assert!(res.converged);
        assert!((res.w[0] - 2.0).abs() < 1e-8, "slope {}", res.w[0]);
        assert!((res.w[1] - 1.0).abs() < 1e-8, "intercept {}", res.w[1]);
    }

    #[test]
    fn ridge_shrinks_solution() {
        let rows: Vec<Vec<f64>> = (0..8).map(|x| vec![x as f64 + 1.0]).collect();
        let a = Matrix::Dense(DenseMatrix::from_rows(&rows).unwrap());
        let y: Vec<f64> = (0..8).map(|x| 3.0 * (x as f64 + 1.0)).collect();
        let plain = cgls(ParallelismCfg::sequential(), &a, &y, 0.0, 1e-12, 100);
        let ridge = cgls(ParallelismCfg::sequential(), &a, &y, 50.0, 1e-12, 100);
        assert!(ridge.w[0] < plain.w[0]);
        assert!(ridge.w[0] > 0.0);
    }

    #[test]
    fn optimum_is_lower_bound() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|x| vec![x as f64, 1.0, (x * x) as f64])
            .collect();
        let a = Matrix::Dense(DenseMatrix::from_rows(&rows).unwrap());
        let y = vec![1.0, 2.0, 2.0, 3.0, 5.0, 8.0];
        let best = least_squares_optimum(ParallelismCfg::sequential(), &a, &y, 0.0);
        // Any other w must do no better.
        let w_zero_obj: f64 = y.iter().map(|v| v * v).sum();
        assert!(best <= w_zero_obj + 1e-9);
        assert!(best >= -1e-9);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = Matrix::Dense(DenseMatrix::zeros(3, 2));
        let res = cgls(ParallelismCfg::sequential(), &a, &[0.0; 3], 0.0, 1e-10, 10);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(res.w, vec![0.0; 2]);
    }
}
