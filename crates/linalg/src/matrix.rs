//! Storage-agnostic matrix wrapper.
//!
//! Optimization code operates on [`Matrix`] so the same gradient kernels run
//! on dense (mnist8m/epsilon-like) and sparse (rcv1-like) datasets.

use crate::csr::CsrMatrix;
use crate::dense_mat::DenseMatrix;

/// Either a dense row-major matrix or a CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum Matrix {
    /// Dense row-major storage.
    Dense(DenseMatrix),
    /// Compressed sparse row storage.
    Sparse(CsrMatrix),
}

impl Matrix {
    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.nrows(),
            Matrix::Sparse(m) => m.nrows(),
        }
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.ncols(),
            Matrix::Sparse(m) => m.ncols(),
        }
    }

    /// Number of stored entries (dense: `nrows*ncols`).
    #[inline]
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.nrows() * m.ncols(),
            Matrix::Sparse(m) => m.nnz(),
        }
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        match self {
            Matrix::Dense(m) => m.ncols(),
            Matrix::Sparse(m) => m.row_nnz(i),
        }
    }

    /// `xᵢᵀw` for row `i`.
    #[inline]
    pub fn row_dot(&self, i: usize, w: &[f64]) -> f64 {
        match self {
            Matrix::Dense(m) => crate::dense::dot(m.row(i), w),
            Matrix::Sparse(m) => m.row_dot(i, w),
        }
    }

    /// Batched scoring: margins `⟨xᵣ, w⟩` for each row in `rows`, appended
    /// into `out` after clearing it — the serving read path's kernel.
    /// Allocation-free once `out`'s capacity covers the batch; dispatches
    /// to the CSR fast path for sparse storage.
    pub fn rows_dot_into(&self, rows: &[u32], w: &[f64], out: &mut Vec<f64>) {
        match self {
            Matrix::Dense(m) => {
                out.clear();
                out.extend(
                    rows.iter()
                        .map(|&r| crate::dense::dot(m.row(r as usize), w)),
                );
            }
            Matrix::Sparse(m) => m.rows_dot_into(rows, w, out),
        }
    }

    /// Full-matrix scoring: margins `⟨xᵢ, w⟩` for every row, written into
    /// `out` after clearing and resizing it. The growable-buffer twin of
    /// [`Matrix::matvec`] for callers that recycle one margin buffer
    /// across batches of different sizes.
    pub fn matvec_into(&self, w: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.nrows(), 0.0);
        self.matvec(w, out);
    }

    /// `out += a * xᵢ` for row `i`.
    #[inline]
    pub fn row_axpy(&self, i: usize, a: f64, out: &mut [f64]) {
        match self {
            Matrix::Dense(m) => crate::dense::axpy(a, m.row(i), out),
            Matrix::Sparse(m) => m.row_axpy(i, a, out),
        }
    }

    /// Squared Euclidean norm of row `i`.
    #[inline]
    pub fn row_norm2_sq(&self, i: usize) -> f64 {
        match self {
            Matrix::Dense(m) => crate::dense::norm2_sq(m.row(i)),
            Matrix::Sparse(m) => m.row_norm2_sq(i),
        }
    }

    /// `out = A·x`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        match self {
            Matrix::Dense(m) => m.matvec(x, out),
            Matrix::Sparse(m) => m.matvec(x, out),
        }
    }

    /// `out += Aᵀ·y`.
    pub fn matvec_t_acc(&self, y: &[f64], out: &mut [f64]) {
        match self {
            Matrix::Dense(m) => m.matvec_t_acc(y, out),
            Matrix::Sparse(m) => m.matvec_t_acc(y, out),
        }
    }

    /// Extracts rows `[start, end)` as an owned matrix of the same storage.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.slice_rows(start, end)),
            Matrix::Sparse(m) => Matrix::Sparse(m.slice_rows(start, end)),
        }
    }

    /// Total stored entries across the given rows — the work-unit count of
    /// one mini-batch gradient over them (dense rows count all `ncols`).
    pub fn rows_nnz(&self, rows: &[u32]) -> u64 {
        match self {
            Matrix::Dense(m) => (rows.len() * m.ncols()) as u64,
            Matrix::Sparse(m) => m.rows_nnz(rows),
        }
    }

    /// Rebuilds as dense row-major storage (copies even if already dense).
    pub fn densified(&self) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.clone()),
            Matrix::Sparse(m) => Matrix::Dense(m.to_dense()),
        }
    }

    /// Rebuilds as CSR storage, dropping exact zeros (copies even if
    /// already sparse). With [`Matrix::densified`] this lets one logical
    /// dataset run through both gradient paths for comparison.
    pub fn sparsified(&self) -> Matrix {
        match self {
            Matrix::Sparse(m) => Matrix::Sparse(m.clone()),
            Matrix::Dense(m) => {
                let mut triplets = Vec::new();
                for i in 0..m.nrows() {
                    for (j, &v) in m.row(i).iter().enumerate() {
                        if v != 0.0 {
                            triplets.push((i, j as u32, v));
                        }
                    }
                }
                Matrix::Sparse(
                    CsrMatrix::from_triplets(&triplets, m.nrows(), m.ncols())
                        .expect("dense matrix yields valid triplets"),
                )
            }
        }
    }

    /// Approximate in-memory footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        match self {
            Matrix::Dense(m) => m.bytes(),
            Matrix::Sparse(m) => m.bytes(),
        }
    }

    /// True if stored as CSR.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self, Matrix::Sparse(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> (Matrix, Matrix) {
        let sparse =
            CsrMatrix::from_triplets(&[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)], 2, 3).unwrap();
        let dense = sparse.to_dense();
        (Matrix::Sparse(sparse), Matrix::Dense(dense))
    }

    #[test]
    fn row_ops_agree_across_storage() {
        let (s, d) = both();
        let w = [1.0, 2.0, 3.0];
        for i in 0..2 {
            assert!((s.row_dot(i, &w) - d.row_dot(i, &w)).abs() < 1e-15);
            assert!((s.row_norm2_sq(i) - d.row_norm2_sq(i)).abs() < 1e-15);
            let mut a = [0.0; 3];
            let mut b = [0.0; 3];
            s.row_axpy(i, 2.0, &mut a);
            d.row_axpy(i, 2.0, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn matvec_agrees_across_storage() {
        let (s, d) = both();
        let x = [1.0, -1.0, 0.5];
        let mut so = [0.0; 2];
        let mut dd = [0.0; 2];
        s.matvec(&x, &mut so);
        d.matvec(&x, &mut dd);
        assert_eq!(so, dd);
    }

    #[test]
    fn storage_conversions_round_trip() {
        let (s, d) = both();
        let s2 = d.sparsified();
        assert!(s2.is_sparse());
        assert_eq!(s2.nnz(), s.nnz());
        let d2 = s.densified();
        assert!(!d2.is_sparse());
        let w = [1.0, 2.0, 3.0];
        for i in 0..2 {
            assert!((s2.row_dot(i, &w) - s.row_dot(i, &w)).abs() < 1e-15);
            assert!((d2.row_dot(i, &w) - d.row_dot(i, &w)).abs() < 1e-15);
        }
    }

    #[test]
    fn rows_dot_into_matches_row_dot_on_both_storages() {
        let (s, d) = both();
        let w = [1.0, 2.0, 3.0];
        let mut out = Vec::new();
        for m in [&s, &d] {
            m.rows_dot_into(&[1, 0, 1], &w, &mut out);
            assert_eq!(
                out,
                vec![m.row_dot(1, &w), m.row_dot(0, &w), m.row_dot(1, &w)],
                "batch margins must equal per-row dots"
            );
        }
        // The buffer is cleared, not appended to, across calls.
        s.rows_dot_into(&[0], &w, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn matvec_into_resizes_and_matches_matvec() {
        let (s, _) = both();
        let w = [1.0, 2.0, 3.0];
        let mut grown = vec![7.0; 9]; // wrong size + stale content
        s.matvec_into(&w, &mut grown);
        let mut exact = vec![0.0; s.nrows()];
        s.matvec(&w, &mut exact);
        assert_eq!(grown, exact);
    }

    #[test]
    fn rows_nnz_counts_batch_work() {
        let (s, d) = both();
        assert_eq!(s.rows_nnz(&[0, 1]), 3);
        assert_eq!(s.rows_nnz(&[0, 0]), 4);
        assert_eq!(d.rows_nnz(&[0, 1]), 6);
    }

    #[test]
    fn shape_reporting() {
        let (s, d) = both();
        assert_eq!(s.nnz(), 3);
        assert_eq!(d.nnz(), 6);
        assert_eq!(s.nrows(), d.nrows());
        assert!(s.is_sparse());
        assert!(!d.is_sparse());
    }
}
