//! Level-1 dense kernels over `&[f64]` slices.
//!
//! These are the hot inner loops of every optimization step. They are written
//! as plain indexed loops over equal-length slices so LLVM can vectorize them;
//! debug builds keep the bounds checks, release builds elide them after the
//! explicit length asserts.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Four-way unrolled accumulation: breaks the sequential FP dependency
    // chain, which matters for long vectors (d up to ~47k in rcv1-like data).
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc0 += x[b] * y[b];
        acc1 += x[b + 1] * y[b + 1];
        acc2 += x[b + 2] * y[b + 2];
        acc3 += x[b + 3] * y[b + 3];
    }
    let mut tail = chunks * 4;
    let mut rest = 0.0;
    while tail < x.len() {
        rest += x[tail] * y[tail];
        tail += 1;
    }
    (acc0 + acc1) + (acc2 + acc3) + rest
}

/// `y += a * x` (BLAS `axpy`).
///
/// Processed in width-4 `chunks_exact` blocks so release builds see
/// constant-trip inner loops with no tail bounds checks; the scalar
/// remainder handles the last `len % 4` entries. Elementwise order is
/// unchanged, so results are bit-identical to the naive loop.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yb, xb) in (&mut yc).zip(&mut xc) {
        yb[0] += a * xb[0];
        yb[1] += a * xb[1];
        yb[2] += a * xb[2];
        yb[3] += a * xb[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += a * *xi;
    }
}

/// `x *= a` (BLAS `scal`), blocked like [`axpy`].
#[inline]
pub fn scal(a: f64, x: &mut [f64]) {
    let mut xc = x.chunks_exact_mut(4);
    for xb in &mut xc {
        xb[0] *= a;
        xb[1] *= a;
        xb[2] *= a;
        xb[3] *= a;
    }
    for xi in xc.into_remainder() {
        *xi *= a;
    }
}

/// Elementwise `y = x` copy.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// `y += x`, blocked like [`axpy`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    assert_eq!(x.len(), y.len(), "add_assign: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yb, xb) in (&mut yc).zip(&mut xc) {
        yb[0] += xb[0];
        yb[1] += xb[1];
        yb[2] += xb[2];
        yb[3] += xb[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += *xi;
    }
}

/// `y -= x`, blocked like [`axpy`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sub_assign(y: &mut [f64], x: &[f64]) {
    assert_eq!(x.len(), y.len(), "sub_assign: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yb, xb) in (&mut yc).zip(&mut xc) {
        yb[0] -= xb[0];
        yb[1] -= xb[1];
        yb[2] -= xb[2];
        yb[3] -= xb[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi -= *xi;
    }
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖²`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    let mut acc = 0.0;
    for (xi, yi) in x.iter().zip(y.iter()) {
        let d = *xi - *yi;
        acc += d * d;
    }
    acc
}

/// Fill `x` with zeros.
#[inline]
pub fn zero(x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// `out = a*x + b*y`, overwriting `out`; blocked like [`axpy`].
///
/// # Panics
/// Panics if any slice length differs.
#[inline]
pub fn lincomb(a: f64, x: &[f64], b: f64, y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "lincomb: length mismatch");
    assert_eq!(x.len(), out.len(), "lincomb: output length mismatch");
    let mut oc = out.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for ((ob, xb), yb) in (&mut oc).zip(&mut xc).zip(&mut yc) {
        ob[0] = a * xb[0] + b * yb[0];
        ob[1] = a * xb[1] + b * yb[1];
        ob[2] = a * xb[2] + b * yb[2];
        ob[3] = a * xb[3] + b * yb[3];
    }
    for ((oi, xi), yi) in oc
        .into_remainder()
        .iter_mut()
        .zip(xc.remainder())
        .zip(yc.remainder())
    {
        *oi = a * *xi + b * *yi;
    }
}

/// Maximum absolute entry (`‖x‖∞`); 0 for the empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Arithmetic mean of the entries; 0 for the empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i * 2) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0, 4.0];
        scal(-0.5, &mut x);
        assert_eq!(x, [-0.5, 1.0, -2.0]);
    }

    #[test]
    fn norms_agree() {
        let x = [3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert!((norm2_sq(&x) - 25.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn dist2_sq_is_norm_of_difference() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.0, 0.0, 0.0];
        assert!((dist2_sq(&x, &y) - 14.0).abs() < 1e-15);
    }

    #[test]
    fn lincomb_combines() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        let mut out = [0.0; 2];
        lincomb(2.0, &x, 3.0, &y, &mut out);
        assert_eq!(out, [2.0, 3.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.5, 0.5];
        let mut y = [1.0, 1.0, 1.0];
        add_assign(&mut y, &x);
        sub_assign(&mut y, &x);
        assert_eq!(y, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn blocked_kernels_match_naive_on_all_tail_lengths() {
        // chunks_exact blocking must be bit-identical to the scalar loop
        // for every remainder length 0..4.
        for n in 0..13usize {
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 1.0).collect();
            let y0: Vec<f64> = (0..n).map(|i| 2.0 - (i as f64) * 0.7).collect();
            let a = -1.75;
            let mut got = y0.clone();
            axpy(a, &x, &mut got);
            let want: Vec<f64> = y0.iter().zip(&x).map(|(yi, xi)| yi + a * xi).collect();
            assert_eq!(got, want, "axpy n={n}");

            let mut got = x.clone();
            scal(a, &mut got);
            let want: Vec<f64> = x.iter().map(|xi| xi * a).collect();
            assert_eq!(got, want, "scal n={n}");

            let mut got = y0.clone();
            add_assign(&mut got, &x);
            let want: Vec<f64> = y0.iter().zip(&x).map(|(yi, xi)| yi + xi).collect();
            assert_eq!(got, want, "add_assign n={n}");

            let mut got = y0.clone();
            sub_assign(&mut got, &x);
            let want: Vec<f64> = y0.iter().zip(&x).map(|(yi, xi)| yi - xi).collect();
            assert_eq!(got, want, "sub_assign n={n}");

            let mut got = vec![0.0; n];
            lincomb(a, &x, 0.5, &y0, &mut got);
            let want: Vec<f64> = x
                .iter()
                .zip(&y0)
                .map(|(xi, yi)| a * xi + 0.5 * yi)
                .collect();
            assert_eq!(got, want, "lincomb n={n}");
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-15);
    }
}
