//! The [`ShardPool`]: a persistent thread pool for coordinate-sharded
//! server work.
//!
//! The parameter-server side of the engine applies every model update as a
//! handful of dense passes over the model vector (ridge shrink, gradient
//! scatter, snapshot memcpy). Those passes are embarrassingly parallel
//! over *contiguous coordinate shards* ([`crate::parallel::split_ranges`]),
//! but spawning OS threads per pass — the `crossbeam::scope` pattern the
//! driver-side evaluation kernels use — costs far more than the pass
//! itself at server-update granularity. The [`ShardPool`] instead keeps
//! its threads alive for its whole life: dispatching a wave of shard jobs
//! is a condvar wake plus an atomic claim loop, and performs **zero heap
//! allocations** once constructed (the property the batched-wave arm of
//! `async-optim`'s `alloc_zero` suite verifies).
//!
//! Determinism contract: [`ShardPool::for_each`] runs `f(i, &mut items[i])`
//! exactly once per item, and shard kernels over *disjoint* coordinate
//! ranges perform the same per-coordinate f64 operations the serial loop
//! would — so a sharded apply is **bit-identical** to the serial apply
//! regardless of thread count or claim order.
//!
//! Ownership rules:
//!
//! * the pool owns its threads; dropping it shuts them down (joining);
//! * a wave borrows `items` and `f` only until `for_each` returns — the
//!   completion wait is what makes the lifetime erasure inside sound;
//! * disjoint mutable shard views of one vector are carved through
//!   [`DisjointSlices`], whose safety contract is that concurrently used
//!   ranges never overlap.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One wave of shard jobs, shared between the caller and the pool threads.
///
/// The closure travels as a lifetime-erased raw pointer; it is only ever
/// dereferenced for a successfully claimed index `i < len`, which implies
/// the installing `for_each` call is still blocked in its completion wait
/// (so the closure is alive). A worker that claims `i >= len` exits
/// without touching the pointer.
struct Cell {
    /// Lifetime-erased wave closure (`None` between waves).
    job: Option<*const (dyn Fn(usize) + Sync)>,
    /// Items in the current wave.
    len: usize,
    /// Wave sequence number; workers run each wave at most... (they may
    /// re-enter the claim loop, but every claim is unique).
    generation: u64,
    /// Pool threads currently inside the claim loop. A new wave is only
    /// installed once this returns to zero, so a slow thread can never
    /// claim indices of a later wave through a stale counter.
    claimers: usize,
    /// Set to request thread shutdown (pool drop).
    shutdown: bool,
}

// SAFETY: the raw closure pointer is only dereferenced under the claim
// protocol described on [`Cell`]; all other fields are plain data guarded
// by the mutex.
unsafe impl Send for Cell {}

struct Shared {
    cell: Mutex<Cell>,
    /// Wakes pool threads when a wave is installed (or shutdown).
    work_cv: Condvar,
    /// Wakes the caller when the wave completes or a claimer retires.
    done_cv: Condvar,
    /// Next unclaimed item index of the current wave.
    next: AtomicUsize,
    /// Items completed in the current wave.
    done: AtomicUsize,
    /// A wave job panicked (re-thrown on the caller).
    poisoned: AtomicBool,
}

impl Shared {
    /// The claim loop: executes wave items until none remain. `job`/`len`
    /// were read under the lock for the generation being run. The raw
    /// closure pointer is dereferenced only *after* a successful claim —
    /// a thread that arrives once every index is taken (possibly after
    /// the installing `for_each` already returned and the closure died)
    /// never materializes a reference to it.
    fn drain(&self, job: *const (dyn Fn(usize) + Sync), len: usize) {
        loop {
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= len {
                return;
            }
            // SAFETY: a successful claim means this item has not completed,
            // so `done < len` holds until we finish it — the installing
            // `for_each` is still blocked in its completion wait and the
            // closure it erased is alive.
            let job = unsafe { &*job };
            if catch_unwind(AssertUnwindSafe(|| job(i))).is_err() {
                self.poisoned.store(true, Ordering::SeqCst);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == len {
                // Lock before notifying so the caller's condition check
                // and wait are atomic with respect to this signal.
                let _guard = self.cell.lock().expect("shard pool poisoned");
                self.done_cv.notify_all();
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let (job, len) = {
            let mut cell = shared.cell.lock().expect("shard pool poisoned");
            loop {
                if cell.shutdown {
                    return;
                }
                if cell.generation != seen {
                    if let Some(job) = cell.job {
                        seen = cell.generation;
                        cell.claimers += 1;
                        break (job, cell.len);
                    }
                }
                cell = shared.work_cv.wait(cell).expect("shard pool poisoned");
            }
        };
        // `job` was installed for the generation this thread is registered
        // on as a claimer; `drain` dereferences it only after claiming an
        // index `< len`, which can only happen while the installing
        // `for_each` is still blocked on completion.
        shared.drain(job, len);
        let mut cell = shared.cell.lock().expect("shard pool poisoned");
        cell.claimers -= 1;
        if cell.claimers == 0 {
            shared.done_cv.notify_all();
        }
        drop(cell);
    }
}

/// A persistent pool of shard-worker threads. See the module docs.
pub struct ShardPool {
    shared: Arc<Shared>,
    /// Serializes whole waves: `for_each` takes `&self` (so the pool can
    /// be shared), but the claim counters support exactly one wave at a
    /// time — a second concurrent caller parks here until the first wave
    /// fully completes. Consequence: `for_each` must not be re-entered
    /// from within a wave job (it would deadlock on this gate).
    wave_gate: Mutex<()>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ShardPool {
    /// A pool with `threads` total participants (clamped to at least 1):
    /// the calling thread plus `threads − 1` persistent workers. With
    /// `threads == 1` no threads are spawned and every wave runs inline on
    /// the caller, in item order — the serial code path, byte for byte.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            cell: Mutex::new(Cell {
                job: None,
                len: 0,
                generation: 0,
                claimers: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("shard-{k}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning shard pool thread")
            })
            .collect();
        Self {
            shared,
            wave_gate: Mutex::new(()),
            threads,
            workers,
        }
    }

    /// Total participants (caller included) a wave may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i, &mut items[i])` exactly once for every item, spread
    /// across the pool's threads (the caller participates), and returns
    /// when all items completed. With one participant — or one item — the
    /// wave runs inline in index order. Waves are serialized: concurrent
    /// callers on a shared pool queue behind one another (and calling
    /// `for_each` from *inside* a wave job deadlocks — don't).
    ///
    /// # Panics
    /// Panics if any wave job panicked (the panic is surfaced on the
    /// caller after the wave drains).
    pub fn for_each<T: Send, F: Fn(usize, &mut T) + Sync>(&self, items: &mut [T], f: F) {
        let len = items.len();
        if self.workers.is_empty() || len <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        // One wave at a time: the claim counters and the installed job
        // are single-wave state, so a concurrent caller must not reset
        // them mid-drain (exactly-once would break and its completion
        // wait could be satisfied by the other wave's counts). The gate
        // guards no data, and a poisoning panic (the wave-job re-throw
        // below unwinds while holding it) happens only after its wave
        // fully completed — so poison is safe to clear.
        let _wave = self
            .wave_gate
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let base = items.as_mut_ptr() as usize;
        let call = move |i: usize| {
            // SAFETY: the claim protocol hands each index to exactly one
            // participant, so this is the only live `&mut` to item `i`.
            let item = unsafe { &mut *(base as *mut T).add(i) };
            f(i, item);
        };
        let erased: &(dyn Fn(usize) + Sync) = &call;
        // SAFETY: the pointer is only dereferenced for claimed indices,
        // and every claimable index completes before this function
        // returns — `call` outlives all uses.
        let erased = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        };
        {
            let mut cell = self.shared.cell.lock().expect("shard pool poisoned");
            // A thread still draining a *previous* wave would otherwise
            // race the counter reset below and claim fresh indices with
            // its stale closure.
            while cell.claimers > 0 {
                cell = self.shared.done_cv.wait(cell).expect("shard pool poisoned");
            }
            self.shared.next.store(0, Ordering::SeqCst);
            self.shared.done.store(0, Ordering::SeqCst);
            self.shared.poisoned.store(false, Ordering::SeqCst);
            cell.job = Some(erased as *const (dyn Fn(usize) + Sync));
            cell.len = len;
            cell.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The caller is a participant too: it drains alongside the pool
        // threads, then waits for stragglers.
        self.shared
            .drain(erased as *const (dyn Fn(usize) + Sync), len);
        let mut cell = self.shared.cell.lock().expect("shard pool poisoned");
        while self.shared.done.load(Ordering::SeqCst) < len {
            cell = self.shared.done_cv.wait(cell).expect("shard pool poisoned");
        }
        cell.job = None;
        drop(cell);
        if self.shared.poisoned.load(Ordering::SeqCst) {
            panic!("shard pool: a wave job panicked");
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut cell = self.shared.cell.lock().expect("shard pool poisoned");
            cell.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A lifetime-carrying base pointer for handing *disjoint* ranges of one
/// `&mut [f64]` to concurrent shard jobs.
///
/// The borrow checker cannot see that coordinate shards are disjoint when
/// the shard index arrives through a shared closure; this wrapper moves
/// that proof obligation into one documented `unsafe` method instead of
/// scattering raw-pointer arithmetic through the solvers.
pub struct DisjointSlices<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: the wrapper only hands out ranges under `range`'s disjointness
// contract; the underlying buffer is plain `f64` data.
unsafe impl Send for DisjointSlices<'_> {}
unsafe impl Sync for DisjointSlices<'_> {}

impl<'a> DisjointSlices<'a> {
    /// Wraps `v` for disjoint shard access. The wrapper holds the unique
    /// borrow for its lifetime.
    pub fn new(v: &'a mut [f64]) -> Self {
        Self {
            ptr: v.as_mut_ptr(),
            len: v.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Total length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mutable sub-slice covering `range`.
    ///
    /// # Safety
    /// Callers must guarantee that ranges used concurrently (or while any
    /// earlier returned slice is still live) never overlap, and that
    /// `range` is in bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range(&self, range: Range<usize>) -> &mut [f64] {
        debug_assert!(range.end <= self.len, "DisjointSlices: range out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::split_ranges;

    #[test]
    fn for_each_visits_every_item_once() {
        for threads in [1usize, 2, 4, 7] {
            let pool = ShardPool::new(threads);
            let mut items: Vec<u64> = vec![0; 33];
            pool.for_each(&mut items, |i, it| *it += i as u64 + 1);
            let want: Vec<u64> = (0..33).map(|i| i + 1).collect();
            assert_eq!(items, want, "threads={threads}");
            // A second wave reuses the same machinery.
            pool.for_each(&mut items, |_, it| *it *= 2);
            assert_eq!(items[0], 2);
            assert_eq!(items[32], 66);
        }
    }

    #[test]
    fn sharded_axpy_is_bit_identical_to_serial() {
        let n = 1003;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut serial: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let sharded = serial.clone();
        crate::dense::axpy(0.37, &x, &mut serial);
        for threads in [2usize, 3, 8] {
            let pool = ShardPool::new(threads);
            let mut got = sharded.clone();
            let mut ranges = split_ranges(n, threads);
            {
                let view = DisjointSlices::new(&mut got);
                pool.for_each(&mut ranges, |_, r| {
                    // SAFETY: split_ranges yields disjoint ranges.
                    let chunk = unsafe { view.range(r.clone()) };
                    crate::dense::axpy(0.37, &x[r.clone()], chunk);
                });
            }
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn concurrent_callers_serialize_into_exact_waves() {
        // Two threads hammering for_each on one shared pool: the wave
        // gate must keep every wave exactly-once (no lost or doubled
        // increments across 2 × 100 waves).
        let pool = std::sync::Arc::new(ShardPool::new(3));
        let totals: Vec<std::sync::Mutex<Vec<u64>>> = (0..2)
            .map(|_| std::sync::Mutex::new(vec![0u64; 24]))
            .collect();
        let totals = std::sync::Arc::new(totals);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let pool = std::sync::Arc::clone(&pool);
                let totals = std::sync::Arc::clone(&totals);
                s.spawn(move || {
                    for _ in 0..100 {
                        let mut items = totals[t].lock().unwrap();
                        pool.for_each(&mut items, |_, x| *x += 1);
                    }
                });
            }
        });
        for t in 0..2 {
            let items = totals[t].lock().unwrap();
            assert!(items.iter().all(|&x| x == 100), "caller {t}: {items:?}");
        }
    }

    #[test]
    fn many_waves_stay_consistent() {
        let pool = ShardPool::new(4);
        let mut acc = vec![0u64; 16];
        for wave in 0..200u64 {
            pool.for_each(&mut acc, |_, a| *a += wave);
        }
        let want: u64 = (0..200).sum();
        assert!(acc.iter().all(|&a| a == want), "{acc:?}");
    }

    #[test]
    fn single_item_wave_runs_inline() {
        let pool = ShardPool::new(4);
        let mut one = [0u32];
        pool.for_each(&mut one, |i, it| *it = i as u32 + 7);
        assert_eq!(one[0], 7);
        let mut none: [u32; 0] = [];
        pool.for_each(&mut none, |_, _| unreachable!());
    }

    #[test]
    fn wave_panic_surfaces_on_the_caller() {
        let pool = ShardPool::new(3);
        let mut items = vec![0u8; 8];
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(&mut items, |i, _| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "job panic must re-throw on the caller");
        // The pool survives a poisoned wave.
        pool.for_each(&mut items, |_, it| *it = 1);
        assert!(items.iter().all(|&b| b == 1));
    }
}
