//! Compressed sparse row (CSR) matrices.
//!
//! CSR blocks are the storage format for sparse datasets (rcv1-like): the
//! whole partition's rows live in three contiguous arrays, which keeps
//! per-mini-batch gradient evaluation cache-friendly.

use crate::dense;
use crate::sparse::SparseVec;
use crate::{Error, Result};

/// A CSR matrix: row `i` occupies `indices[indptr[i]..indptr[i+1]]` /
/// `data[indptr[i]..indptr[i+1]]`, with column indices strictly increasing
/// within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
    nrows: usize,
    ncols: usize,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    pub fn new(
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
        nrows: usize,
        ncols: usize,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(Error::InvalidStructure(format!(
                "indptr length {} != nrows+1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indptr.first() != Some(&0) || *indptr.last().expect("nonempty indptr") != indices.len() {
            return Err(Error::InvalidStructure(
                "indptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if indices.len() != data.len() {
            return Err(Error::InvalidStructure(format!(
                "indices/data length mismatch: {} vs {}",
                indices.len(),
                data.len()
            )));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(Error::InvalidStructure(
                    "indptr must be nondecreasing".to_string(),
                ));
            }
        }
        for r in 0..nrows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(Error::InvalidStructure(format!(
                        "row {r}: column indices not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= ncols {
                    return Err(Error::InvalidStructure(format!(
                        "row {r}: column {last} out of range for ncols {ncols}"
                    )));
                }
            }
        }
        Ok(Self {
            indptr,
            indices,
            data,
            nrows,
            ncols,
        })
    }

    /// Builds from a list of sparse rows, all with dimension `ncols`.
    pub fn from_rows(rows: &[SparseVec], ncols: usize) -> Result<Self> {
        let nnz: usize = rows.iter().map(SparseVec::nnz).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        indptr.push(0);
        for (i, r) in rows.iter().enumerate() {
            if r.dim() != ncols {
                return Err(Error::DimensionMismatch {
                    op: "CsrMatrix::from_rows",
                    expected: ncols,
                    got: r.dim(),
                });
            }
            let _ = i;
            indices.extend_from_slice(r.indices());
            data.extend_from_slice(r.values());
            indptr.push(indices.len());
        }
        Self::new(indptr, indices, data, rows.len(), ncols)
    }

    /// Builds from `(row, col, value)` triplets; duplicates are summed.
    pub fn from_triplets(
        triplets: &[(usize, u32, f64)],
        nrows: usize,
        ncols: usize,
    ) -> Result<Self> {
        let mut per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nrows];
        for &(r, c, v) in triplets {
            if r >= nrows {
                return Err(Error::InvalidStructure(format!(
                    "triplet row {r} out of range"
                )));
            }
            per_row[r].push((c, v));
        }
        let rows = per_row
            .into_iter()
            .map(|p| SparseVec::from_pairs(p, ncols))
            .collect::<Result<Vec<_>>>()?;
        Self::from_rows(&rows, ncols)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        assert!(i < self.nrows, "row {i} out of range ({} rows)", self.nrows);
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Dot product of row `i` with a dense vector `w` (`xᵢᵀw`).
    ///
    /// # Panics
    /// Panics if `w.len() != ncols`.
    #[inline]
    pub fn row_dot(&self, i: usize, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.ncols, "row_dot: dim mismatch");
        let (idx, val) = self.row(i);
        let mut acc = 0.0;
        for (c, v) in idx.iter().zip(val.iter()) {
            acc += *v * w[*c as usize];
        }
        acc
    }

    /// `out += a * rowᵢ`, scattered into a dense buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != ncols`.
    #[inline]
    pub fn row_axpy(&self, i: usize, a: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.ncols, "row_axpy: dim mismatch");
        let (idx, val) = self.row(i);
        for (c, v) in idx.iter().zip(val.iter()) {
            out[*c as usize] += a * *v;
        }
    }

    /// `out = A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x dim mismatch");
        assert_eq!(out.len(), self.nrows, "matvec: out dim mismatch");
        for i in 0..self.nrows {
            out[i] = self.row_dot(i, x);
        }
    }

    /// `out += Aᵀ·y`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_t_acc(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.nrows, "matvec_t: y dim mismatch");
        assert_eq!(out.len(), self.ncols, "matvec_t: out dim mismatch");
        for i in 0..self.nrows {
            self.row_axpy(i, y[i], out);
        }
    }

    /// Mini-batch margin kernel: `out[k] = x_{rows[k]}ᵀ·w` for each sampled
    /// row, in one pass over the CSR arrays. This is the forward half of a
    /// mini-batch gradient evaluation.
    ///
    /// # Panics
    /// Panics if `w.len() != ncols` or any row index is out of range.
    pub fn rows_dot(&self, rows: &[u32], w: &[f64]) -> Vec<f64> {
        assert_eq!(w.len(), self.ncols, "rows_dot: dim mismatch");
        rows.iter().map(|&r| self.row_dot(r as usize, w)).collect()
    }

    /// Mini-batch gather kernel: `Σₖ coefs[k] · x_{rows[k]}` as a
    /// [`SparseVec`] over the union of the sampled rows' supports — the
    /// backward half of a mini-batch gradient, computed without ever
    /// materializing a dense `ncols`-length buffer. Cost is
    /// `O(B·log B)` in the total sampled nonzeros `B`, independent of
    /// `ncols` — the fast path for rcv1-shaped data (47k dims, ~73 nnz).
    ///
    /// # Panics
    /// Panics if `rows.len() != coefs.len()` or any row is out of range.
    pub fn gather_axpy(&self, rows: &[u32], coefs: &[f64]) -> SparseVec {
        assert_eq!(
            rows.len(),
            coefs.len(),
            "gather_axpy: rows/coefs length mismatch"
        );
        let total: usize = rows.iter().map(|&r| self.row_nnz(r as usize)).sum();
        let mut pairs = Vec::with_capacity(total);
        for (&r, &a) in rows.iter().zip(coefs.iter()) {
            let (idx, val) = self.row(r as usize);
            for (c, v) in idx.iter().zip(val.iter()) {
                pairs.push((*c, a * *v));
            }
        }
        SparseVec::from_pairs(pairs, self.ncols)
            .expect("gather_axpy: CSR invariants guarantee valid pairs")
    }

    /// [`CsrMatrix::rows_dot`] into a caller-owned buffer: `out` is cleared
    /// and refilled, so a warm buffer makes the margin kernel
    /// allocation-free. Values are identical to `rows_dot`.
    ///
    /// # Panics
    /// Panics if `w.len() != ncols` or any row index is out of range.
    pub fn rows_dot_into(&self, rows: &[u32], w: &[f64], out: &mut Vec<f64>) {
        assert_eq!(w.len(), self.ncols, "rows_dot_into: dim mismatch");
        out.clear();
        out.extend(rows.iter().map(|&r| self.row_dot(r as usize, w)));
    }

    /// [`CsrMatrix::gather_axpy`] into caller-owned buffers: `pairs` is the
    /// gather scratch, `out_idx`/`out_val` receive the merged result with
    /// strictly increasing indices. All three are cleared and refilled, so
    /// warm buffers make the gather kernel allocation-free. The pair
    /// collection order, the unstable sort, and the duplicate-sum order are
    /// exactly those of `gather_axpy`, so the values are bit-identical.
    ///
    /// # Panics
    /// Panics if `rows.len() != coefs.len()` or any row is out of range.
    pub fn gather_axpy_into(
        &self,
        rows: &[u32],
        coefs: &[f64],
        pairs: &mut Vec<(u32, f64)>,
        out_idx: &mut Vec<u32>,
        out_val: &mut Vec<f64>,
    ) {
        assert_eq!(
            rows.len(),
            coefs.len(),
            "gather_axpy_into: rows/coefs length mismatch"
        );
        pairs.clear();
        for (&r, &a) in rows.iter().zip(coefs.iter()) {
            let (idx, val) = self.row(r as usize);
            for (c, v) in idx.iter().zip(val.iter()) {
                pairs.push((*c, a * *v));
            }
        }
        pairs.sort_unstable_by_key(|p| p.0);
        out_idx.clear();
        out_val.clear();
        for &(i, v) in pairs.iter() {
            if out_idx.last() == Some(&i) {
                *out_val.last_mut().expect("parallel to out_idx") += v;
            } else {
                out_idx.push(i);
                out_val.push(v);
            }
        }
    }

    /// Total stored nonzeros across the given rows — the work-unit count of
    /// one sparse mini-batch gradient over them.
    pub fn rows_nnz(&self, rows: &[u32]) -> u64 {
        rows.iter().map(|&r| self.row_nnz(r as usize) as u64).sum()
    }

    /// Extracts rows `[start, end)` into a new owned CSR block.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> CsrMatrix {
        assert!(
            start <= end && end <= self.nrows,
            "slice_rows: bad range {start}..{end}"
        );
        let lo = self.indptr[start];
        let hi = self.indptr[end];
        let indptr = self.indptr[start..=end].iter().map(|p| p - lo).collect();
        CsrMatrix {
            indptr,
            indices: self.indices[lo..hi].to_vec(),
            data: self.data[lo..hi].to_vec(),
            nrows: end - start,
            ncols: self.ncols,
        }
    }

    /// Densifies into a [`crate::DenseMatrix`]; intended for tests.
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut flat = vec![0.0; self.nrows * self.ncols];
        for i in 0..self.nrows {
            let (idx, val) = self.row(i);
            for (c, v) in idx.iter().zip(val.iter()) {
                flat[i * self.ncols + *c as usize] = *v;
            }
        }
        crate::DenseMatrix::from_flat(flat, self.nrows, self.ncols)
            .expect("densified buffer has exact size")
    }

    /// Squared Euclidean norm of row `i`.
    #[inline]
    pub fn row_norm2_sq(&self, i: usize) -> f64 {
        let (_, val) = self.row(i);
        dense::norm2_sq(val)
    }

    /// Approximate in-memory footprint in bytes (all three arrays).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.data.len() * std::mem::size_of::<f64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_triplets(&[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)], 3, 3)
            .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(CsrMatrix::new(vec![0, 1], vec![0], vec![1.0], 2, 3).is_err()); // bad indptr len
        assert!(CsrMatrix::new(vec![0, 2], vec![1, 0], vec![1.0, 1.0], 1, 3).is_err()); // unsorted
        assert!(CsrMatrix::new(vec![0, 1], vec![5], vec![1.0], 1, 3).is_err()); // col range
        assert!(CsrMatrix::new(vec![0, 1], vec![0], vec![1.0], 1, 3).is_ok());
    }

    #[test]
    fn rows_and_nnz() {
        let a = sample();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row_nnz(1), 0);
        let (idx, val) = a.row(2);
        assert_eq!(idx, &[0, 1]);
        assert_eq!(val, &[3.0, 4.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        a.matvec(&x, &mut out);
        let dense_a = a.to_dense();
        let mut out_d = [0.0; 3];
        dense_a.matvec(&x, &mut out_d);
        assert_eq!(out, out_d);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let a = sample();
        let y = [1.0, 5.0, -1.0];
        let mut out = [0.0; 3];
        a.matvec_t_acc(&y, &mut out);
        let mut out_d = [0.0; 3];
        a.to_dense().matvec_t_acc(&y, &mut out_d);
        assert_eq!(out, out_d);
    }

    #[test]
    fn slice_rows_preserves_content() {
        let a = sample();
        let s = a.slice_rows(1, 3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.row_nnz(0), 0);
        let (idx, val) = s.row(1);
        assert_eq!(idx, &[0, 1]);
        assert_eq!(val, &[3.0, 4.0]);
    }

    #[test]
    fn row_dot_and_axpy() {
        let a = sample();
        let w = [1.0, 1.0, 1.0];
        assert_eq!(a.row_dot(0, &w), 3.0);
        let mut acc = [0.0; 3];
        a.row_axpy(0, 2.0, &mut acc);
        assert_eq!(acc, [2.0, 0.0, 4.0]);
    }

    #[test]
    fn gather_axpy_matches_dense_reference() {
        let a = sample();
        let rows = [0u32, 2, 0];
        let coefs = [2.0, -1.0, 0.5];
        let got = a.gather_axpy(&rows, &coefs);
        let mut want = vec![0.0; 3];
        for (&r, &c) in rows.iter().zip(coefs.iter()) {
            a.row_axpy(r as usize, c, &mut want);
        }
        assert_eq!(got.to_dense(), want);
        assert_eq!(a.rows_nnz(&rows), 2 + 2 + 2);
    }

    #[test]
    fn gather_axpy_of_empty_batch_is_empty() {
        let a = sample();
        let g = a.gather_axpy(&[], &[]);
        assert_eq!(g.nnz(), 0);
        assert_eq!(g.dim(), 3);
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        let a = sample();
        let rows = [0u32, 2, 0, 2];
        let coefs = [2.0, -1.0, 0.5, 0.25];
        let w = [1.0, -2.0, 3.0];
        let mut margins = Vec::new();
        a.rows_dot_into(&rows, &w, &mut margins);
        assert_eq!(margins, a.rows_dot(&rows, &w));
        let (mut pairs, mut idx, mut val) = (Vec::new(), Vec::new(), Vec::new());
        // Run twice so the second pass exercises warm (reused) buffers.
        for _ in 0..2 {
            a.gather_axpy_into(&rows, &coefs, &mut pairs, &mut idx, &mut val);
            let reference = a.gather_axpy(&rows, &coefs);
            assert_eq!(idx.as_slice(), reference.indices());
            assert_eq!(val.as_slice(), reference.values());
        }
        // Empty batch clears the outputs.
        a.gather_axpy_into(&[], &[], &mut pairs, &mut idx, &mut val);
        assert!(idx.is_empty() && val.is_empty());
    }

    #[test]
    fn rows_dot_matches_per_row_dots() {
        let a = sample();
        let w = [1.0, -2.0, 3.0];
        let z = a.rows_dot(&[2, 0], &w);
        assert_eq!(z, vec![a.row_dot(2, &w), a.row_dot(0, &w)]);
    }

    #[test]
    fn empty_rows_matrix() {
        let a = CsrMatrix::from_rows(&[], 7).unwrap();
        assert_eq!(a.nrows(), 0);
        assert_eq!(a.nnz(), 0);
    }
}
