//! Property-based tests for the linear-algebra kernels.

use async_linalg::dense;
use async_linalg::parallel::{self, ParallelismCfg};
use async_linalg::{CsrMatrix, Matrix, SparseVec};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0..100.0f64, len)
}

fn sparse_triplets(nrows: usize, ncols: usize) -> impl Strategy<Value = Vec<(usize, u32, f64)>> {
    proptest::collection::vec(
        (0..nrows, 0..ncols as u32, -10.0..10.0f64),
        0..(nrows * ncols).min(64),
    )
}

proptest! {
    #[test]
    fn dot_is_commutative(n in 0usize..64) {
        let strat = (finite_vec(n), finite_vec(n));
        proptest!(|((x, y) in strat)| {
            let a = dense::dot(&x, &y);
            let b = dense::dot(&y, &x);
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
        });
    }

    #[test]
    fn axpy_is_linear(x in finite_vec(16), y in finite_vec(16), a in -5.0..5.0f64) {
        // axpy(a,x,y) == y + a*x elementwise
        let mut got = y.clone();
        dense::axpy(a, &x, &mut got);
        for i in 0..16 {
            prop_assert!((got[i] - (y[i] + a * x[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_triangle_inequality(x in finite_vec(24), y in finite_vec(24)) {
        let mut sum = x.clone();
        dense::add_assign(&mut sum, &y);
        let lhs = dense::norm2(&sum);
        let rhs = dense::norm2(&x) + dense::norm2(&y);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn csr_round_trips_via_dense(trips in sparse_triplets(8, 6)) {
        let csr = CsrMatrix::from_triplets(&trips, 8, 6).unwrap();
        let dense_m = csr.to_dense();
        // Every kernel must agree between the two storages.
        let w: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        for i in 0..8 {
            let a = csr.row_dot(i, &w);
            let b = dense::dot(dense_m.row(i), &w);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_matvec_t_is_adjoint(trips in sparse_triplets(8, 6), x in finite_vec(6), y in finite_vec(8)) {
        // <A x, y> == <x, Aᵀ y>
        let csr = CsrMatrix::from_triplets(&trips, 8, 6).unwrap();
        let mut ax = vec![0.0; 8];
        csr.matvec(&x, &mut ax);
        let mut aty = vec![0.0; 6];
        csr.matvec_t_acc(&y, &mut aty);
        let lhs = dense::dot(&ax, &y);
        let rhs = dense::dot(&x, &aty);
        prop_assert!((lhs - rhs).abs() <= 1e-7 * (1.0 + lhs.abs()));
    }

    #[test]
    fn sparse_vec_dot_matches_dense(pairs in proptest::collection::vec((0u32..32, -10.0..10.0f64), 0..20), w in finite_vec(32)) {
        let sv = SparseVec::from_pairs(pairs, 32).unwrap();
        let dense_v = sv.to_dense();
        let a = sv.dot_dense(&w);
        let b = dense::dot(&dense_v, &w);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn gather_axpy_matches_dense_reference(
        trips in sparse_triplets(10, 12),
        rows in proptest::collection::vec(0u32..10, 0..16),
        coefs_seed in -5.0..5.0f64,
    ) {
        // The CSR mini-batch gather kernel must equal the dense
        // scatter-accumulate reference on every batch, including repeated
        // rows and empty batches.
        let csr = CsrMatrix::from_triplets(&trips, 10, 12).unwrap();
        let coefs: Vec<f64> = (0..rows.len())
            .map(|k| coefs_seed + k as f64 * 0.25)
            .collect();
        let got = csr.gather_axpy(&rows, &coefs);
        let mut want = vec![0.0; 12];
        for (&r, &a) in rows.iter().zip(coefs.iter()) {
            csr.row_axpy(r as usize, a, &mut want);
        }
        let got_dense = got.to_dense();
        for i in 0..12 {
            prop_assert!((got_dense[i] - want[i]).abs() < 1e-9,
                "coord {i}: {} vs {}", got_dense[i], want[i]);
        }
        // The kernel's support never exceeds the batch's stored entries.
        prop_assert!(got.nnz() as u64 <= csr.rows_nnz(&rows));
    }

    #[test]
    fn rows_dot_matches_dense_margins(
        trips in sparse_triplets(8, 6),
        rows in proptest::collection::vec(0u32..8, 0..12),
        w in finite_vec(6),
    ) {
        let csr = CsrMatrix::from_triplets(&trips, 8, 6).unwrap();
        let dense_m = csr.to_dense();
        let got = csr.rows_dot(&rows, &w);
        for (k, &r) in rows.iter().enumerate() {
            let want = dense::dot(dense_m.row(r as usize), &w);
            prop_assert!((got[k] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_axpy_matches_dense_axpy(
        xs in proptest::collection::vec((0u32..24, -10.0..10.0f64), 0..12),
        ys in proptest::collection::vec((0u32..24, -10.0..10.0f64), 0..12),
        a in -4.0..4.0f64,
    ) {
        // In-place sparse-sparse merge vs the dense reference.
        let mut x = SparseVec::from_pairs(xs, 24).unwrap();
        let y = SparseVec::from_pairs(ys, 24).unwrap();
        let mut dense_ref = x.to_dense();
        y.axpy_into_dense(a, &mut dense_ref);
        x.axpy(a, &y);
        let got = x.to_dense();
        for i in 0..24 {
            prop_assert!((got[i] - dense_ref[i]).abs() < 1e-9);
        }
        // Result indices stay strictly increasing (SparseVec invariant).
        let reconstructed = SparseVec::new(
            x.indices().to_vec(), x.values().to_vec(), 24);
        prop_assert!(reconstructed.is_ok());
    }

    #[test]
    fn grad_delta_apply_agrees_across_arms(
        pairs in proptest::collection::vec((0u32..16, -10.0..10.0f64), 0..10),
        base in finite_vec(16),
        a in -3.0..3.0f64,
    ) {
        use async_linalg::GradDelta;
        let sv = SparseVec::from_pairs(pairs, 16).unwrap();
        let dense_arm = GradDelta::Dense(sv.to_dense());
        let sparse_arm = GradDelta::Sparse(sv);
        let mut out_d = base.clone();
        let mut out_s = base.clone();
        dense_arm.axpy_into(a, &mut out_d);
        sparse_arm.axpy_into(a, &mut out_s);
        for i in 0..16 {
            prop_assert!((out_d[i] - out_s[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_reduce_matches_serial(n in 0usize..500, threads in 1usize..9) {
        let serial: u64 = (0..n as u64).map(|i| i * i).sum();
        let par = parallel::par_map_reduce(
            ParallelismCfg::with_threads(threads),
            n,
            0u64,
            |r| r.map(|i| (i as u64) * (i as u64)).sum(),
            |a, b| a + b,
        );
        prop_assert_eq!(serial, par);
    }

    #[test]
    fn parallel_matvec_matches_serial(trips in sparse_triplets(12, 5), threads in 1usize..5) {
        let m = Matrix::Sparse(CsrMatrix::from_triplets(&trips, 12, 5).unwrap());
        let w = vec![0.5; 5];
        let mut serial = vec![0.0; 12];
        m.matvec(&w, &mut serial);
        let mut par = vec![0.0; 12];
        parallel::par_matvec(ParallelismCfg::with_threads(threads), &m, &w, &mut par);
        prop_assert_eq!(serial, par);
    }

    #[test]
    fn split_ranges_partition_property(len in 0usize..200, parts in 1usize..17) {
        let rs = parallel::split_ranges(len, parts);
        let covered: usize = rs.iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, len);
        for w in rs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
            // Balanced to within one element.
            prop_assert!(w[0].len().abs_diff(w[1].len()) <= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cgls_recovers_planted_solution(seed in 0u64..50) {
        // Plant w*, build consistent y = A w*, and require near-zero residual.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let nrows = 20;
        let ncols = 6;
        let rows: Vec<Vec<f64>> =
            (0..nrows).map(|_| (0..ncols).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let a = Matrix::Dense(async_linalg::DenseMatrix::from_rows(&rows).unwrap());
        let w_star: Vec<f64> = (0..ncols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut y = vec![0.0; nrows];
        a.matvec(&w_star, &mut y);
        let res = async_linalg::solve::cgls(
            ParallelismCfg::sequential(), &a, &y, 0.0, 1e-12, 200);
        let mut pred = vec![0.0; nrows];
        a.matvec(&res.w, &mut pred);
        let resid: f64 = pred.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum();
        prop_assert!(resid < 1e-8, "residual {resid}");
    }
}
