//! The `ASYNCcontext` (§4.2, §5 Table 1): the user-facing coordinator.
//!
//! [`AsyncContext`] owns a [`sparklet::Driver`] and layers the paper's
//! asynchronous programming model on top of its low-level submission API:
//!
//! * **Submission** ([`AsyncContext::async_reduce`],
//!   [`AsyncContext::async_aggregate`]): one task per worker admitted by a
//!   [`BarrierFilter`] over the current `STAT` snapshot — the
//!   `ASYNCscheduler`'s barrier control (§4.4). Each admitted worker runs
//!   the task on one of the partitions it owns, cycling through them as its
//!   clock advances.
//! * **The result pump** (§4.2): every completion the driver surfaces is
//!   tagged with [`TaskAttrs`] — worker id, staleness (model updates since
//!   issue), and mini-batch size — and the per-worker `STAT` table
//!   (availability, task clock, average completion time) is updated before
//!   the result is exposed. Failures are folded into `STAT` as dead
//!   workers, exactly like the coordinator's bookkeeping.
//! * **Consumption** ([`AsyncContext::collect`],
//!   [`AsyncContext::collect_all`], [`AsyncContext::has_next`]): the
//!   paper's `ASYNCcollect` / `ASYNCcollectAll` / `AC.hasNext()`.
//! * **History broadcast** ([`AsyncContext::async_broadcast`]): allocates
//!   an [`AsyncBcast`] (§4.3) with a context-unique id.
//!
//! The server's **model version** is explicit:
//! [`AsyncContext::advance_version`] is called by the optimizer after each
//! model update, and staleness is measured against it. This is the paper's
//! "number of updates to the model since the task was issued".
//!
//! The context assumes it is the only submitter on its driver; mixing
//! direct `Driver::submit_raw` calls with a live context desynchronizes
//! `STAT` from the engine.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use async_cluster::{ClusterSpec, VDur, VTime, WorkerId};
use sparklet::rdd::Data;
use sparklet::{
    BcastCharge, Completion, DecodeError, Driver, Payload, Rdd, TaskFn, WireTask, WorkerCtx,
};

use crate::barrier::BarrierFilter;
use crate::broadcast::AsyncBcast;
use crate::stat::{StatSnapshot, StatTable};

/// The worker attributes the coordinator attaches to every result (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAttrs {
    /// Worker that executed the task.
    pub worker: WorkerId,
    /// Partition the task ran over.
    pub partition: usize,
    /// Model updates applied between task issue and result consumption —
    /// the paper's staleness, what bounded-staleness step rules read.
    pub staleness: u64,
    /// Mini-batch size declared at submission.
    pub minibatch: u64,
    /// Model version the task was issued (and computed) at.
    pub issued_version: u64,
    /// Submission instant.
    pub issued_at: VTime,
    /// Result-arrival instant.
    pub finished_at: VTime,
    /// Modelled service time (dispatch → result arrival).
    pub service_time: VDur,
}

/// A task result paired with its [`TaskAttrs`].
#[derive(Debug)]
pub struct Tagged<R> {
    /// The task closure's output.
    pub value: R,
    /// Coordinator-attached worker attributes.
    pub attrs: TaskAttrs,
}

/// Per-submission knobs for [`AsyncContext::async_reduce`] /
/// [`AsyncContext::async_aggregate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOpts<'a> {
    /// Classic broadcasts the task closure captures (first-use transfer is
    /// billed per worker).
    pub uses: &'a [BcastCharge],
    /// Extra task payload bytes (e.g. history-broadcast version IDs).
    pub extra_bytes: u64,
    /// Multiplies the RDD cost hints; `0.0` is treated as `1.0` so
    /// `SubmitOpts::default()` does the expected thing.
    pub cost_scale: f64,
    /// Mini-batch size recorded in the task's bookkeeping.
    pub minibatch: u64,
}

impl SubmitOpts<'_> {
    fn effective_cost_scale(&self) -> f64 {
        if self.cost_scale == 0.0 {
            1.0
        } else {
            self.cost_scale
        }
    }
}

/// The wire form of a submission family, for networked engines: a routine
/// id registered in the worker binary, a request builder that runs
/// **driver-side** against the worker's cache mirror (resolving broadcast
/// versions into [`crate::broadcast::WirePlan`]s and serializing the task's
/// inputs), and a response decoder for the bytes the worker sends back.
/// In-process engines ignore it and run the submission's closure as usual —
/// one `async_reduce_wired` call site drives all three backends.
#[derive(Clone)]
pub struct RemoteRoutine {
    /// Routine id resolved by the worker's `RoutineRegistry`.
    pub routine: u32,
    /// Builds the request bytes for one partition (`&mut WorkerCtx` is the
    /// driver-side mirror of the target worker's cache).
    #[allow(clippy::type_complexity)]
    pub build: Arc<dyn Fn(&mut WorkerCtx, usize) -> Vec<u8> + Send + Sync>,
    /// Decodes the worker's response bytes into the task output consumed
    /// by [`AsyncContext::collect`].
    #[allow(clippy::type_complexity)]
    pub decode: Arc<dyn Fn(&[u8]) -> Result<Box<dyn Any + Send>, DecodeError> + Send + Sync>,
}

/// How the coordinator degrades when worker deaths shrink the alive set
/// mid-run — the policy consulted (through
/// [`AsyncContext::degrade_directive`]) wherever the pre-supervision code
/// gave up unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DegradePolicy {
    /// Any observed worker death halts the run at the next wave boundary.
    FailFast,
    /// Proceed while at least `ceil(frac × workers)` rows are alive
    /// (clamped to `[1, workers]`); below quorum, wait for a scheduled
    /// recovery when the engine has one, halt otherwise.
    Quorum(f64),
    /// Keep going with whoever is alive; only a fully dead cluster with no
    /// scheduled recovery halts the run. The default — identical to the
    /// pre-supervision behavior whenever at least one worker survives.
    #[default]
    BestEffort,
}

/// What a [`DegradePolicy`] tells the caller to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveDirective {
    /// The alive set satisfies the policy: submit the next wave.
    Proceed,
    /// The policy is violated but the engine has a scheduled membership
    /// event (e.g. a supervised respawn): wait for it
    /// ([`AsyncContext::await_recovery`]) instead of giving up.
    Wait,
    /// The policy is violated and no recovery is scheduled: stop.
    Halt,
}

/// Rebuilds a lost task's run closure for re-submission. Stored `Arc`'d so
/// one ticket can be replayed on every retry attempt.
type ReplayFn = Arc<dyn Fn() -> TaskFn + Send + Sync>;

/// Everything needed to re-submit one in-flight task if its worker dies:
/// captured at submission (only when retries are enabled), discarded on
/// normal completion, moved to the retry queue on [`Completion::Lost`].
struct RetryTicket {
    /// Worker currently running (or last assigned) this task.
    worker: WorkerId,
    /// Engine tag — the partition index, echoed back in completions.
    tag: u64,
    cost: f64,
    extra_bytes: u64,
    uses: Vec<BcastCharge>,
    minibatch: u64,
    /// The model version of the *original* submission: retries keep it so
    /// staleness stays honest and the pin taken at first submission is
    /// consumed exactly once, by whichever incarnation finally lands.
    issued_version: u64,
    /// Re-submissions so far (bounded by the context's `retry_max`).
    attempts: u32,
    replay: ReplayFn,
    wire: Option<RemoteRoutine>,
}

/// The ASYNC coordinator. See the module docs.
pub struct AsyncContext {
    driver: Driver,
    stat: StatTable,
    version: u64,
    ready: VecDeque<Tagged<Box<dyn Any + Send>>>,
    next_bcast_id: u64,
    degrade: DegradePolicy,
    retry_max: u32,
    /// Replay tickets for in-flight tasks (empty unless retries are on).
    tickets: Vec<RetryTicket>,
    /// Lost tasks awaiting re-submission to a surviving worker.
    retry_queue: VecDeque<RetryTicket>,
    lost_tasks: u64,
    retried_tasks: u64,
}

impl AsyncContext {
    /// Wraps a driver. The `STAT` table starts with every engine worker
    /// alive and available.
    pub fn new(driver: Driver) -> Self {
        let n = driver.workers();
        Self {
            driver,
            stat: StatTable::new(n),
            version: 0,
            ready: VecDeque::new(),
            next_bcast_id: 0,
            degrade: DegradePolicy::default(),
            retry_max: 0,
            tickets: Vec::new(),
            retry_queue: VecDeque::new(),
            lost_tasks: 0,
            retried_tasks: 0,
        }
    }

    /// A context over the deterministic simulated engine.
    pub fn sim(spec: ClusterSpec) -> Self {
        Self::new(Driver::sim(spec))
    }

    /// A context over the real-thread engine.
    pub fn threaded(spec: ClusterSpec, time_scale: f64) -> Self {
        Self::new(Driver::threaded(spec, time_scale))
    }

    /// The underlying driver (byte/task accounting, wait recorder).
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// Mutable driver access for cluster control (scheduled failures,
    /// recorder resets). Do not submit tasks through it directly.
    pub fn driver_mut(&mut self) -> &mut Driver {
        &mut self.driver
    }

    /// Total workers, dead or alive.
    pub fn workers(&self) -> usize {
        self.driver.workers()
    }

    /// Current engine time.
    pub fn now(&self) -> VTime {
        self.driver.now()
    }

    /// Current server model version (count of applied updates).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Records one model update and returns the new version. Called by the
    /// optimizer after folding a collected gradient into the model; all
    /// staleness accounting is relative to this counter.
    pub fn advance_version(&mut self) -> u64 {
        self.version += 1;
        self.version
    }

    /// Re-seats the model version counter at `version` — the durable-resume
    /// path: a solver restoring a checkpoint taken at model version `v`
    /// continues numbering (and seeding per-task RNG streams) from `v`
    /// instead of restarting at 0. Only legal while nothing is in flight;
    /// in-flight tasks carry their issued version, so re-seating under them
    /// would corrupt staleness accounting.
    ///
    /// # Panics
    /// Panics if any task is in flight.
    pub fn reseat_version(&mut self, version: u64) {
        assert_eq!(
            self.pending(),
            0,
            "reseat_version: context has in-flight tasks"
        );
        self.version = version;
    }

    /// Installs the [`DegradePolicy`] consulted by
    /// [`AsyncContext::degrade_directive`]. The default
    /// ([`DegradePolicy::BestEffort`]) reproduces the pre-supervision
    /// behavior.
    pub fn set_degrade_policy(&mut self, policy: DegradePolicy) {
        self.degrade = policy;
    }

    /// The installed [`DegradePolicy`].
    pub fn degrade_policy(&self) -> DegradePolicy {
        self.degrade
    }

    /// Enables task retry: a task surfacing as [`Completion::Lost`] is
    /// re-submitted to a surviving worker (at its *original* model version)
    /// up to `max_attempts` times before it is abandoned and counted in
    /// [`AsyncContext::lost_tasks`]. `0` (the default) disables retries —
    /// no replay state is captured at submission and losses surface
    /// exactly as before.
    pub fn set_retry_lost(&mut self, max_attempts: u32) {
        self.retry_max = max_attempts;
    }

    /// The configured retry bound (0 = retries off).
    pub fn retry_lost(&self) -> u32 {
        self.retry_max
    }

    /// Tasks abandoned to worker failures: every [`Completion::Lost`] that
    /// was not (or could no longer be) retried.
    pub fn lost_tasks(&self) -> u64 {
        self.lost_tasks
    }

    /// Successful re-submissions of lost tasks.
    pub fn retried_tasks(&self) -> u64 {
        self.retried_tasks
    }

    /// Lost tasks currently queued for re-submission (no surviving worker
    /// has had capacity yet).
    pub fn retries_pending(&self) -> usize {
        self.retry_queue.len()
    }

    /// Abandons every queued retry (counting each in
    /// [`AsyncContext::lost_tasks`]) and returns how many were dropped.
    /// Called when a run winds down so end-of-run drains don't re-issue
    /// work nobody will consume.
    pub fn cancel_retries(&mut self) -> usize {
        let n = self.retry_queue.len();
        self.lost_tasks += n as u64;
        self.retry_queue.clear();
        n
    }

    /// What the installed [`DegradePolicy`] says about the current alive
    /// set. Callers consult this at wave boundaries — most usefully when a
    /// collect came back empty (the pre-supervision "give up" points).
    /// "Recovery is scheduled" is read from
    /// [`sparklet::Driver::next_event_at`], so supervised respawns and
    /// scripted chaos revivals both count.
    pub fn degrade_directive(&self) -> WaveDirective {
        let snap = self.stat.snapshot(self.driver.now(), self.version);
        let total = snap.workers.len();
        let alive = snap.alive_count();
        let recovery = self.driver.next_event_at().is_some();
        match self.degrade {
            DegradePolicy::FailFast => {
                if alive == total {
                    WaveDirective::Proceed
                } else {
                    WaveDirective::Halt
                }
            }
            DegradePolicy::Quorum(frac) => {
                let need = ((frac * total as f64).ceil() as usize).clamp(1, total.max(1));
                if alive >= need {
                    WaveDirective::Proceed
                } else if recovery {
                    WaveDirective::Wait
                } else {
                    WaveDirective::Halt
                }
            }
            DegradePolicy::BestEffort => {
                if alive > 0 {
                    WaveDirective::Proceed
                } else if recovery {
                    WaveDirective::Wait
                } else {
                    WaveDirective::Halt
                }
            }
        }
    }

    /// Blocks until the alive set *grows* — a supervised respawn, scripted
    /// revival, or mid-run join surfacing as [`Completion::WorkerUp`] —
    /// and returns `true`; returns `false` when the engine has nothing
    /// scheduled that could ever grow it. Results absorbed while waiting
    /// land in the ready queue as usual, and queued retries are flushed as
    /// soon as the newcomer appears.
    ///
    /// On the simulated engine the completion pump itself advances time to
    /// the next scheduled event. Wall-clock engines return `None` from the
    /// pump when nothing is in flight even with a revival scheduled, so
    /// this sleeps toward [`sparklet::Driver::next_event_at`] and re-polls.
    pub fn await_recovery(&mut self) -> bool {
        let baseline = self
            .stat
            .snapshot(self.driver.now(), self.version)
            .alive_count();
        loop {
            if let Some(c) = self.driver.next_completion() {
                self.absorb(c);
                self.flush_retries();
                let alive = self
                    .stat
                    .snapshot(self.driver.now(), self.version)
                    .alive_count();
                if alive > baseline {
                    return true;
                }
                continue;
            }
            let Some(at) = self.driver.next_event_at() else {
                return false;
            };
            let wait = at.saturating_since(self.driver.now()).as_micros();
            // Cap each nap: wall-clock engines may scale virtual time, and
            // chaos fronts can move as faults land, so re-poll frequently.
            std::thread::sleep(std::time::Duration::from_micros(wait.clamp(100, 5_000)));
        }
    }

    /// Re-submits queued retries to idle alive workers (first-fit over the
    /// `STAT` table, engine-gated). Tickets that cannot be placed stay
    /// queued for the next flush. No-op (and allocation-free) when the
    /// queue is empty — i.e. always, unless retries are enabled and a task
    /// was lost.
    fn flush_retries(&mut self) {
        while !self.retry_queue.is_empty() {
            let target = {
                let snap = self.stat.snapshot(self.driver.now(), self.version);
                snap.workers.iter().enumerate().find_map(|(w, row)| {
                    (row.alive && row.available && self.driver.available(w)).then_some(w)
                })
            };
            let Some(w) = target else { break };
            let mut t = self
                .retry_queue
                .pop_front()
                .expect("queue checked non-empty");
            let part = t.tag as usize;
            let wire = t.wire.as_ref().map(|r| {
                let build = Arc::clone(&r.build);
                let decode = Arc::clone(&r.decode);
                WireTask {
                    routine: r.routine,
                    build: Box::new(move |mirror: &mut WorkerCtx| build(mirror, part)),
                    decode: Box::new(move |bytes: &[u8]| decode(bytes)),
                }
            });
            let issued_at = self.driver.now();
            if self
                .driver
                .submit_raw_wired(w, t.tag, t.cost, t.extra_bytes, &t.uses, (t.replay)(), wire)
                .is_ok()
            {
                self.stat
                    .task_issued(w, t.issued_version, issued_at, t.minibatch);
                t.worker = w;
                t.attempts += 1;
                self.retried_tasks += 1;
                self.tickets.push(t);
            } else {
                self.retry_queue.push_front(t);
                break;
            }
        }
    }

    /// The paper's `AC.STAT`: a read-only snapshot of the worker table at
    /// the current instant and model version.
    ///
    /// # Example
    /// ```
    /// use async_cluster::{ClusterSpec, DelayModel};
    /// use async_core::AsyncContext;
    ///
    /// let ctx = AsyncContext::sim(ClusterSpec::homogeneous(3, DelayModel::None));
    /// let snap = ctx.stat();
    /// assert_eq!(snap.alive_count(), 3);
    /// assert_eq!(snap.available_workers(), vec![0, 1, 2]);
    /// assert_eq!(snap.max_staleness(), 0);
    /// ```
    pub fn stat(&self) -> StatSnapshot {
        self.stat.snapshot(self.driver.now(), self.version)
    }

    /// Creates a history broadcast (§4.3) with a context-unique id.
    /// `n_indices` is the sample universe size (see [`AsyncBcast::new`]).
    ///
    /// # Example
    /// ```
    /// use async_cluster::{ClusterSpec, DelayModel};
    /// use async_core::AsyncContext;
    ///
    /// let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(2, DelayModel::None));
    /// // A model history over a universe of 100 samples: only 8-byte
    /// // version IDs travel with tasks, values are fetched and cached.
    /// let w_br = ctx.async_broadcast(vec![0.0f64; 4], 100);
    /// assert_eq!(w_br.latest_version(), 0);
    /// assert_eq!(w_br.push(vec![1.0f64; 4]), 1);
    /// // Sample 7 has never been recorded, so it still references w₀.
    /// assert_eq!(w_br.version_for_index(7), 0);
    /// ```
    pub fn async_broadcast<T: Payload + Send + Sync + 'static>(
        &mut self,
        initial: T,
        n_indices: u64,
    ) -> AsyncBcast<T> {
        self.async_broadcast_at(initial, n_indices, 0)
    }

    /// Like [`AsyncContext::async_broadcast`], but seats the history's
    /// initial value at version `base` instead of 0 (see
    /// [`AsyncBcast::new_at`]) — used together with
    /// [`AsyncContext::reseat_version`] when resuming a checkpointed run,
    /// so broadcast version IDs continue the crashed run's numbering.
    pub fn async_broadcast_at<T: Payload + Send + Sync + 'static>(
        &mut self,
        initial: T,
        n_indices: u64,
        base: u64,
    ) -> AsyncBcast<T> {
        let id = self.next_bcast_id;
        self.next_bcast_id += 1;
        AsyncBcast::new_at(id, initial, n_indices, base)
    }

    /// Creates a classic Spark-style broadcast on the driver registry.
    pub fn broadcast<T: Payload>(&mut self, value: T) -> sparklet::Broadcast<T> {
        self.driver.broadcast(value)
    }

    /// The paper's `ASYNCreduce(f, AC)`: submits `f` as one task per worker
    /// admitted by `filter` over the current `STAT` snapshot. Each admitted
    /// worker runs `f` over one partition it owns (cycling with its clock);
    /// the per-partition result is consumed later through
    /// [`AsyncContext::collect`] with matching type `R`.
    ///
    /// Returns the workers that actually received tasks (empty when the
    /// barrier admits no one, e.g. BSP mid-round).
    ///
    /// # Example
    /// ```
    /// use async_cluster::{ClusterSpec, DelayModel};
    /// use async_core::{AsyncContext, BarrierFilter, SubmitOpts};
    /// use sparklet::Rdd;
    ///
    /// let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(2, DelayModel::None));
    /// let rdd = Rdd::parallelize(vec![vec![1i64, 2], vec![3, 4]]);
    /// // ASP: every available worker gets a task over one of its partitions.
    /// let submitted = ctx.async_reduce(
    ///     &rdd,
    ///     &BarrierFilter::Asp,
    ///     SubmitOpts::default(),
    ///     |_wctx, data, _part| data.into_iter().sum::<i64>(),
    /// );
    /// assert_eq!(submitted, vec![0, 1]);
    /// let mut partials = Vec::new();
    /// while let Some(t) = ctx.collect::<i64>() {
    ///     partials.push(t.value);
    /// }
    /// partials.sort_unstable();
    /// assert_eq!(partials, vec![3, 7]);
    /// ```
    pub fn async_reduce<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        filter: &BarrierFilter,
        opts: SubmitOpts<'_>,
        f: F,
    ) -> Vec<WorkerId>
    where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + Clone + 'static,
    {
        self.async_reduce_wired(rdd, filter, opts, f, None)
    }

    /// [`AsyncContext::async_reduce`] with an optional wire form: when
    /// `remote` is `Some` and the driver's engine is networked, each
    /// submission additionally carries a [`WireTask`] built from the
    /// routine (request bytes assembled driver-side against the worker's
    /// cache mirror) and `f` is used for in-process bookkeeping only.
    /// In-process engines drop the wire form and run `f` — results,
    /// staleness accounting, and byte charges are identical either way.
    pub fn async_reduce_wired<T, R, F>(
        &mut self,
        rdd: &Rdd<T>,
        filter: &BarrierFilter,
        opts: SubmitOpts<'_>,
        f: F,
        remote: Option<&RemoteRoutine>,
    ) -> Vec<WorkerId>
    where
        T: Data,
        R: Send + 'static,
        F: Fn(&mut WorkerCtx, Vec<T>, usize) -> R + Send + Sync + Clone + 'static,
    {
        let nparts = rdd.num_partitions();
        if nparts == 0 {
            return Vec::new();
        }
        let snap = self.stat();
        let admitted = filter.select(&snap);
        let mut submitted = Vec::new();
        for w in admitted {
            let parts = self.driver.partitions_of(w, nparts);
            if parts.is_empty() {
                continue;
            }
            // Cycle through the worker's partitions as its clock advances,
            // so every partition is visited at the worker's own pace.
            let part = parts[(self.stat.get(w).clock as usize) % parts.len()];
            let ops = rdd.ops();
            let f_run = f.clone();
            let cost = rdd.cost_hint(part) * opts.effective_cost_scale();
            let run = Box::new(move |ctx: &mut WorkerCtx| {
                let data = ops.compute(part);
                Box::new(f_run(ctx, data, part)) as Box<dyn Any + Send>
            });
            let wire = remote.map(|r| {
                let build = Arc::clone(&r.build);
                let decode = Arc::clone(&r.decode);
                WireTask {
                    routine: r.routine,
                    build: Box::new(move |mirror: &mut WorkerCtx| build(mirror, part)),
                    decode: Box::new(move |bytes: &[u8]| decode(bytes)),
                }
            });
            let issued_at = self.driver.now();
            if self
                .driver
                .submit_raw_wired(w, part as u64, cost, opts.extra_bytes, opts.uses, run, wire)
                .is_ok()
            {
                self.stat
                    .task_issued(w, self.version, issued_at, opts.minibatch);
                // With retries on, capture everything needed to replay this
                // task if its worker dies. Off (the default), no state is
                // captured and losses surface exactly as before.
                if self.retry_max > 0 {
                    let ops = rdd.ops();
                    let f = f.clone();
                    let replay: ReplayFn = Arc::new(move || {
                        let ops = Arc::clone(&ops);
                        let f = f.clone();
                        Box::new(move |ctx: &mut WorkerCtx| {
                            let data = ops.compute(part);
                            Box::new(f(ctx, data, part)) as Box<dyn Any + Send>
                        })
                    });
                    self.tickets.push(RetryTicket {
                        worker: w,
                        tag: part as u64,
                        cost,
                        extra_bytes: opts.extra_bytes,
                        uses: opts.uses.to_vec(),
                        minibatch: opts.minibatch,
                        issued_version: self.version,
                        attempts: 0,
                        replay,
                        wire: remote.cloned(),
                    });
                }
                submitted.push(w);
            }
        }
        submitted
    }

    /// The paper's `ASYNCaggregate(zeroVal, seqOp, combOp, AC)`: like
    /// [`AsyncContext::async_reduce`], but each admitted worker folds its
    /// partition from `zero` with `seq_op`. The driver-side `combOp` is
    /// whatever the caller does with the collected partials.
    ///
    /// # Example
    /// ```
    /// use async_cluster::{ClusterSpec, DelayModel};
    /// use async_core::{AsyncContext, BarrierFilter, SubmitOpts};
    /// use sparklet::Rdd;
    ///
    /// let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(2, DelayModel::None));
    /// let rdd = Rdd::parallelize(vec![vec![1i64, 2, 3], vec![4, 5]]);
    /// ctx.async_aggregate(
    ///     &rdd,
    ///     &BarrierFilter::Asp,
    ///     SubmitOpts::default(),
    ///     0i64,
    ///     |acc, x| acc + x,
    /// );
    /// // Driver-side combOp: fold the collected partials.
    /// let mut total = 0;
    /// while let Some(t) = ctx.collect::<i64>() {
    ///     total += t.value;
    /// }
    /// assert_eq!(total, 15);
    /// ```
    pub fn async_aggregate<T, U, F>(
        &mut self,
        rdd: &Rdd<T>,
        filter: &BarrierFilter,
        opts: SubmitOpts<'_>,
        zero: U,
        seq_op: F,
    ) -> Vec<WorkerId>
    where
        T: Data,
        U: Send + Sync + Clone + 'static,
        F: Fn(U, &T) -> U + Send + Sync + Clone + 'static,
    {
        self.async_reduce(rdd, filter, opts, move |_ctx, data, _part| {
            data.iter().fold(zero.clone(), &seq_op)
        })
    }

    /// True while unconsumed results exist or tasks are in flight — the
    /// paper's `AC.hasNext()`.
    ///
    /// # Example
    /// ```
    /// use async_cluster::{ClusterSpec, DelayModel};
    /// use async_core::{AsyncContext, BarrierFilter, SubmitOpts};
    /// use sparklet::Rdd;
    ///
    /// let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(1, DelayModel::None));
    /// assert!(!ctx.has_next());
    /// let rdd = Rdd::parallelize(vec![vec![1i64]]);
    /// ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(),
    ///     |_w, d, _p| d[0]);
    /// // The canonical consumption loop: while AC.hasNext() { collect() }.
    /// while ctx.has_next() {
    ///     ctx.collect::<i64>();
    /// }
    /// assert!(!ctx.has_next());
    /// ```
    pub fn has_next(&self) -> bool {
        !self.ready.is_empty() || self.driver.pending() > 0 || !self.retry_queue.is_empty()
    }

    /// Tasks currently in flight.
    pub fn pending(&self) -> usize {
        self.driver.pending()
    }

    /// The paper's `ASYNCcollect()`: the earliest unconsumed result,
    /// blocking (and advancing virtual time) until one arrives. Returns
    /// `None` when nothing is ready or in flight.
    ///
    /// # Panics
    /// Panics if the next result's type is not `R` — one context pipeline
    /// must collect with the type it submitted.
    ///
    /// # Example
    /// ```
    /// use async_cluster::{ClusterSpec, DelayModel};
    /// use async_core::{AsyncContext, BarrierFilter, SubmitOpts};
    /// use sparklet::Rdd;
    ///
    /// let mut ctx = AsyncContext::sim(ClusterSpec::homogeneous(1, DelayModel::None));
    /// let rdd = Rdd::parallelize(vec![vec![21i64]]);
    /// ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(),
    ///     |_w, d, _p| 2 * d[0]);
    /// // Results arrive tagged with the coordinator's worker attributes.
    /// let t = ctx.collect::<i64>().expect("one result");
    /// assert_eq!(t.value, 42);
    /// assert_eq!(t.attrs.worker, 0);
    /// assert_eq!(t.attrs.staleness, 0);
    /// assert!(ctx.collect::<i64>().is_none());
    /// ```
    pub fn collect<R: Send + 'static>(&mut self) -> Option<Tagged<R>> {
        self.flush_retries();
        while self.ready.is_empty() {
            let c = self.driver.next_completion()?;
            self.absorb(c);
            // A loss absorbed just now may have queued a retry: re-issue
            // immediately so the pump keeps blocking on the replacement.
            self.flush_retries();
        }
        self.ready.pop_front().map(downcast_tagged)
    }

    /// The paper's `ASYNCcollectAll()`: every result the server has
    /// received *as of now*, without blocking or advancing time.
    ///
    /// # Panics
    /// Panics if any drained result's type is not `R`.
    pub fn collect_all<R: Send + 'static>(&mut self) -> Vec<Tagged<R>> {
        while let Some(c) = self.driver.try_next_completion() {
            self.absorb(c);
        }
        self.flush_retries();
        self.ready.drain(..).map(downcast_tagged).collect()
    }

    /// Batched collection for the sharded server's absorption waves:
    /// blocks for the first result exactly like [`AsyncContext::collect`],
    /// then drains — **without blocking or advancing time further** —
    /// whatever additional results have already arrived, up to `max`
    /// total, appending them to `out` in arrival order.
    ///
    /// Absorption ordering and `STAT` coherence: completions are pumped
    /// through the same §4.2 result path as `collect`, so per-worker rows
    /// (availability, clocks, completion times) update in completion order
    /// *before* any result of the wave is exposed, and every result's
    /// staleness is measured against the model version at wave start —
    /// the optimizer advances the version only between waves.
    ///
    /// With `max == 1` this is exactly one `collect` call; `out` is left
    /// untouched (and the wave is empty) only when nothing is ready or in
    /// flight.
    ///
    /// # Panics
    /// Panics if a drained result's type is not `R`.
    pub fn collect_up_to_into<R: Send + 'static>(&mut self, max: usize, out: &mut Vec<Tagged<R>>) {
        if max == 0 {
            return;
        }
        let Some(first) = self.collect::<R>() else {
            return;
        };
        out.push(first);
        while out.len() < max {
            if let Some(t) = self.ready.pop_front() {
                out.push(downcast_tagged(t));
                continue;
            }
            match self.driver.try_next_completion() {
                Some(c) => self.absorb(c),
                None => break,
            }
        }
    }

    /// The §4.2 result pump: folds one engine completion into `STAT` and,
    /// for successful tasks, tags the result with [`TaskAttrs`].
    fn absorb(&mut self, c: Completion) {
        match c {
            Completion::Done(d) => {
                let inflight = self
                    .stat
                    .task_completed(d.worker, d.finished_at, d.service_time)
                    .expect("coordinator: completion from a worker with no in-flight task");
                if !self.tickets.is_empty() {
                    if let Some(i) = self
                        .tickets
                        .iter()
                        .position(|t| t.worker == d.worker && t.tag == d.tag)
                    {
                        self.tickets.swap_remove(i);
                    }
                }
                let attrs = TaskAttrs {
                    worker: d.worker,
                    partition: d.tag as usize,
                    staleness: self.version.saturating_sub(inflight.issued_version),
                    minibatch: inflight.minibatch,
                    issued_version: inflight.issued_version,
                    issued_at: d.issued_at,
                    finished_at: d.finished_at,
                    service_time: d.service_time,
                };
                self.ready.push_back(Tagged {
                    value: d.output,
                    attrs,
                });
            }
            Completion::Lost { worker, tag } => {
                self.stat.worker_died(worker);
                match self
                    .tickets
                    .iter()
                    .position(|t| t.worker == worker && t.tag == tag)
                {
                    Some(i) => {
                        let t = self.tickets.swap_remove(i);
                        if t.attempts < self.retry_max {
                            self.retry_queue.push_back(t);
                        } else {
                            self.lost_tasks += 1;
                        }
                    }
                    None => self.lost_tasks += 1,
                }
            }
            Completion::WorkerDown { worker } => {
                self.stat.worker_died(worker);
            }
            Completion::WorkerUp { worker } => {
                // A revival or a mid-run join: the worker returns as a
                // fresh executor. Its `STAT` row is reset (revival) or
                // appended (join), clock-seeded at the minimum alive clock
                // so SSP/BSP predicates over the new alive set neither
                // stall incumbents nor starve the newcomer.
                self.stat.worker_up(worker);
            }
        }
    }
}

fn downcast_tagged<R: Send + 'static>(t: Tagged<Box<dyn Any + Send>>) -> Tagged<R> {
    let Tagged { value, attrs } = t;
    let value = *value.downcast::<R>().unwrap_or_else(|_| {
        panic!(
            "collect::<{}>: result type mismatch",
            std::any::type_name::<R>()
        )
    });
    Tagged { value, attrs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{CommModel, DelayModel};

    fn quiet_ctx(workers: usize, delay: DelayModel) -> AsyncContext {
        AsyncContext::sim(
            ClusterSpec::homogeneous(workers, delay)
                .with_comm(CommModel::free())
                .with_sched_overhead(VDur::ZERO),
        )
    }

    fn unit_rdd(nparts: usize) -> Rdd<i64> {
        // One element per partition, cost 2e8 = 1 virtual second each.
        Rdd::parallelize_with_cost(
            (0..nparts).map(|p| vec![p as i64]).collect(),
            vec![2e8; nparts],
        )
    }

    fn sum_task(_ctx: &mut WorkerCtx, data: Vec<i64>, _part: usize) -> i64 {
        data.into_iter().sum()
    }

    #[test]
    fn asp_submits_to_every_available_worker() {
        let mut ctx = quiet_ctx(3, DelayModel::None);
        let rdd = unit_rdd(3);
        let subs = ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        assert_eq!(subs, vec![0, 1, 2]);
        // Everyone is now busy: a second ASP wave admits no one.
        let again = ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        assert!(again.is_empty());
        assert!(ctx.has_next());
        let mut got = Vec::new();
        while let Some(t) = ctx.collect::<i64>() {
            got.push((t.attrs.worker, t.value));
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2)]);
        assert!(!ctx.has_next());
    }

    #[test]
    fn attrs_carry_staleness_and_minibatch() {
        let mut ctx = quiet_ctx(1, DelayModel::None);
        let rdd = unit_rdd(1);
        let opts = SubmitOpts {
            minibatch: 32,
            ..SubmitOpts::default()
        };
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, opts, sum_task);
        // Three model updates happen while the task is in flight.
        for _ in 0..3 {
            ctx.advance_version();
        }
        let t = ctx.collect::<i64>().expect("one result");
        assert_eq!(t.attrs.worker, 0);
        assert_eq!(t.attrs.minibatch, 32);
        assert_eq!(t.attrs.issued_version, 0);
        assert_eq!(t.attrs.staleness, 3);
        assert_eq!(t.attrs.service_time, VDur::from_micros(1_000_000));
        // STAT mirrors the completion.
        let snap = ctx.stat();
        assert_eq!(snap.workers[0].clock, 1);
        assert!(snap.workers[0].available);
    }

    #[test]
    fn bsp_holds_until_the_straggler_finishes() {
        // Worker 1 runs 2x slower; BSP admits new tasks only at full
        // barriers, so clocks stay in lockstep.
        let mut ctx = quiet_ctx(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 1.0,
            },
        );
        let rdd = unit_rdd(2);
        let mut completed = 0;
        ctx.async_reduce(&rdd, &BarrierFilter::Bsp, SubmitOpts::default(), sum_task);
        while completed < 6 {
            let t = ctx.collect::<i64>().expect("result");
            completed += 1;
            let subs = ctx.async_reduce(&rdd, &BarrierFilter::Bsp, SubmitOpts::default(), sum_task);
            if t.attrs.worker == 0 {
                // Fast worker finished first; straggler still running.
                assert!(subs.is_empty(), "BSP must not release mid-round");
            } else {
                assert_eq!(subs, vec![0, 1], "barrier reached: full round released");
            }
        }
        let snap = ctx.stat();
        assert_eq!(snap.workers[0].clock, 3);
        assert_eq!(snap.workers[1].clock, 3);
    }

    #[test]
    fn asp_lets_the_fast_worker_run_ahead() {
        let mut ctx = quiet_ctx(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 3.0,
            },
        );
        let rdd = unit_rdd(2);
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        for _ in 0..8 {
            let _ = ctx.collect::<i64>().expect("result");
            ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        }
        let snap = ctx.stat();
        assert!(
            snap.workers[0].clock > snap.workers[1].clock + 1,
            "fast worker should be several tasks ahead: {:?}",
            (snap.workers[0].clock, snap.workers[1].clock)
        );
        while ctx.collect::<i64>().is_some() {}
    }

    #[test]
    fn ssp_bounds_the_clock_gap() {
        let slack = 2u64;
        let mut ctx = quiet_ctx(
            2,
            DelayModel::ControlledDelay {
                worker: 1,
                intensity: 9.0,
            },
        );
        let rdd = unit_rdd(2);
        ctx.async_reduce(
            &rdd,
            &BarrierFilter::Ssp { slack },
            SubmitOpts::default(),
            sum_task,
        );
        for _ in 0..12 {
            let _ = ctx.collect::<i64>();
            ctx.async_reduce(
                &rdd,
                &BarrierFilter::Ssp { slack },
                SubmitOpts::default(),
                sum_task,
            );
            let snap = ctx.stat();
            let lead = snap.workers[0].clock.abs_diff(snap.workers[1].clock);
            // The leader may finish a task it was already granted, so the
            // observable gap is at most slack + 1.
            assert!(lead <= slack + 1, "clock gap {lead} exceeds slack bound");
        }
        while ctx.collect::<i64>().is_some() {}
    }

    #[test]
    fn collect_up_to_batches_ready_results_in_arrival_order() {
        let mut ctx = quiet_ctx(4, DelayModel::None);
        let rdd = unit_rdd(4);
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        // All four land at the same virtual instant; a wave capped at 3
        // takes three and leaves the fourth ready for the next wave.
        let mut wave = Vec::new();
        ctx.collect_up_to_into::<i64>(3, &mut wave);
        assert_eq!(wave.len(), 3);
        let mut second = Vec::new();
        ctx.collect_up_to_into::<i64>(3, &mut second);
        assert_eq!(second.len(), 1);
        assert!(!ctx.has_next());
        // STAT absorbed every completion of the wave.
        let snap = ctx.stat();
        assert!(snap.workers.iter().all(|w| w.clock == 1));
        // Empty cluster state: the wave comes back empty.
        let mut empty = Vec::new();
        ctx.collect_up_to_into::<i64>(4, &mut empty);
        assert!(empty.is_empty());
        ctx.collect_up_to_into::<i64>(0, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn collect_all_drains_ready_results_without_blocking() {
        let mut ctx = quiet_ctx(4, DelayModel::None);
        let rdd = unit_rdd(4);
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        // Nothing has completed at time zero.
        assert!(ctx.collect_all::<i64>().is_empty());
        // Block for the first; the remaining three land at the same virtual
        // instant and drain together.
        let first = ctx.collect::<i64>().expect("first");
        let rest = ctx.collect_all::<i64>();
        assert_eq!(rest.len(), 3);
        let mut workers: Vec<_> = std::iter::once(first.attrs.worker)
            .chain(rest.iter().map(|t| t.attrs.worker))
            .collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        assert!(!ctx.has_next());
    }

    #[test]
    fn worker_failure_updates_stat_and_filters() {
        let mut ctx = quiet_ctx(3, DelayModel::None);
        let rdd = unit_rdd(3);
        ctx.driver_mut().schedule_failure(2, VTime::from_micros(10));
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        // Two surviving results; the lost task is not resubmitted by the
        // async layer (the optimizer just keeps iterating).
        let mut n = 0;
        while let Some(t) = ctx.collect::<i64>() {
            assert_ne!(t.attrs.worker, 2);
            n += 1;
        }
        assert_eq!(n, 2);
        let snap = ctx.stat();
        assert!(!snap.workers[2].alive);
        assert_eq!(snap.alive_count(), 2);
        // Barrier filters only admit survivors.
        let subs = ctx.async_reduce(&rdd, &BarrierFilter::Bsp, SubmitOpts::default(), sum_task);
        assert_eq!(subs, vec![0, 1]);
        while ctx.collect::<i64>().is_some() {}
    }

    #[test]
    fn revival_and_join_flow_into_stat_and_submission() {
        let mut ctx = quiet_ctx(2, DelayModel::None);
        let rdd = unit_rdd(4);
        // Kill worker 1, drain, and check the alive set shrank.
        ctx.driver_mut().kill_worker(1);
        while ctx.collect::<i64>().is_some() {}
        assert_eq!(ctx.stat().alive_count(), 1);
        // Revive it and add a third worker: both surface through the
        // result pump and re-enter the STAT table as fresh rows.
        ctx.driver_mut().revive_worker(1).unwrap();
        ctx.driver_mut().add_worker();
        while ctx.collect::<i64>().is_some() {}
        let snap = ctx.stat();
        assert_eq!(snap.alive_count(), 3);
        assert_eq!(snap.available_workers(), vec![0, 1, 2]);
        // The next ASP wave admits all three, and partitions rebalance
        // over the grown alive set.
        let subs = ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        assert_eq!(subs, vec![0, 1, 2]);
        let mut seen = std::collections::HashSet::new();
        while let Some(t) = ctx.collect::<i64>() {
            seen.insert(t.attrs.worker);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn revived_worker_resyncs_history_broadcast() {
        use crate::broadcast::AsyncBcast;
        let mut ctx = quiet_ctx(2, DelayModel::None);
        let rdd = unit_rdd(2);
        let bcast: AsyncBcast<Vec<f64>> = ctx.async_broadcast(vec![1.0, 2.0], 0);
        let handle = bcast.handle();
        let read_model = move |wctx: &mut WorkerCtx, _data: Vec<i64>, _part: usize| -> f64 {
            handle.value(wctx)[0]
        };
        ctx.async_reduce(
            &rdd,
            &BarrierFilter::Asp,
            SubmitOpts::default(),
            read_model.clone(),
        );
        while ctx.collect::<f64>().is_some() {}
        assert_eq!(bcast.stats().fetches, 2, "one cold fetch per worker");
        // Kill + revive worker 1: its cache is gone, so its first task
        // must pull the model again — the broadcast re-sync.
        ctx.driver_mut().kill_worker(1);
        while ctx.collect::<f64>().is_some() {}
        ctx.driver_mut().revive_worker(1).unwrap();
        while ctx.collect::<f64>().is_some() {}
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), read_model);
        let mut vals = Vec::new();
        while let Some(t) = ctx.collect::<f64>() {
            vals.push(t.value);
        }
        assert_eq!(vals, vec![1.0, 1.0], "both workers read the model");
        assert_eq!(
            bcast.stats().fetches,
            3,
            "the revived worker re-fetched; the survivor hit its cache"
        );
    }

    #[test]
    fn async_aggregate_folds_partitions() {
        let mut ctx = quiet_ctx(2, DelayModel::None);
        let rdd = Rdd::parallelize(vec![vec![1i64, 2, 3], vec![4, 5]]);
        ctx.async_aggregate(
            &rdd,
            &BarrierFilter::Asp,
            SubmitOpts::default(),
            0i64,
            |acc, x| acc + x,
        );
        let mut partials = Vec::new();
        while let Some(t) = ctx.collect::<i64>() {
            partials.push(t.value);
        }
        partials.sort_unstable();
        assert_eq!(partials, vec![6, 9]);
    }

    #[test]
    fn workers_cycle_through_their_partitions() {
        // 1 worker owning 3 partitions: successive tasks walk p0, p1, p2.
        let mut ctx = quiet_ctx(1, DelayModel::None);
        let rdd = unit_rdd(3);
        let mut seen = Vec::new();
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        for _ in 0..6 {
            let t = ctx.collect::<i64>().expect("result");
            seen.push(t.attrs.partition);
            ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        }
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
        while ctx.collect::<i64>().is_some() {}
    }

    #[test]
    fn broadcast_ids_are_unique() {
        let mut ctx = quiet_ctx(1, DelayModel::None);
        let a = ctx.async_broadcast(vec![0.0f64; 4], 10);
        let b = ctx.async_broadcast(vec![1.0f64; 4], 10);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "result type mismatch")]
    fn collect_with_wrong_type_panics() {
        let mut ctx = quiet_ctx(1, DelayModel::None);
        let rdd = unit_rdd(1);
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        let _ = ctx.collect::<String>();
    }

    #[test]
    fn defaults_leave_losses_unretried_but_counted() {
        let mut ctx = quiet_ctx(3, DelayModel::None);
        assert_eq!(ctx.degrade_policy(), DegradePolicy::BestEffort);
        assert_eq!(ctx.retry_lost(), 0);
        let rdd = unit_rdd(3);
        ctx.driver_mut().schedule_failure(2, VTime::from_micros(10));
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        let mut n = 0;
        while ctx.collect::<i64>().is_some() {
            n += 1;
        }
        assert_eq!(n, 2, "the lost task is not replayed by default");
        assert_eq!(ctx.lost_tasks(), 1);
        assert_eq!(ctx.retried_tasks(), 0);
        assert_eq!(ctx.retries_pending(), 0);
    }

    #[test]
    fn retry_reassigns_a_lost_task_to_a_survivor() {
        let mut ctx = quiet_ctx(2, DelayModel::None);
        ctx.set_retry_lost(2);
        let rdd = unit_rdd(2);
        // Worker 1 dies 10 µs in — its task (partition 1) is lost and must
        // resurface on worker 0 after worker 0 finishes its own task.
        ctx.driver_mut().schedule_failure(1, VTime::from_micros(10));
        let subs = ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        assert_eq!(subs, vec![0, 1]);
        let mut got = Vec::new();
        while let Some(t) = ctx.collect::<i64>() {
            got.push((t.attrs.worker, t.attrs.partition, t.value));
        }
        got.sort_unstable();
        // Both partitions complete, both on worker 0.
        assert_eq!(got, vec![(0, 0, 0), (0, 1, 1)]);
        assert_eq!(ctx.retried_tasks(), 1);
        assert_eq!(ctx.lost_tasks(), 0);
        assert!(!ctx.has_next());
    }

    #[test]
    fn retried_tasks_keep_their_original_issued_version() {
        let mut ctx = quiet_ctx(2, DelayModel::None);
        ctx.set_retry_lost(1);
        let rdd = unit_rdd(2);
        ctx.driver_mut().schedule_failure(1, VTime::from_micros(10));
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        // Model advances while the wave is in flight: the retried task
        // still reports staleness against its original submission version.
        ctx.advance_version();
        ctx.advance_version();
        let mut attrs = Vec::new();
        while let Some(t) = ctx.collect::<i64>() {
            attrs.push(t.attrs);
        }
        assert_eq!(attrs.len(), 2);
        for a in &attrs {
            assert_eq!(a.issued_version, 0);
            assert_eq!(a.staleness, 2);
        }
    }

    #[test]
    fn retry_attempts_are_bounded() {
        let mut ctx = quiet_ctx(2, DelayModel::None);
        ctx.set_retry_lost(1);
        let rdd = unit_rdd(2);
        // Worker 1 dies early; its task retries once onto worker 0 (after
        // worker 0's own 1 s task completes), and worker 0 dies mid-retry.
        ctx.driver_mut().schedule_failure(1, VTime::from_micros(10));
        ctx.driver_mut()
            .schedule_failure(0, VTime::from_micros(1_500_000));
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        let mut n = 0;
        while ctx.collect::<i64>().is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "only worker 0's own task completes");
        assert_eq!(ctx.retried_tasks(), 1);
        assert_eq!(ctx.lost_tasks(), 1, "the exhausted retry is abandoned");
        assert_eq!(ctx.retries_pending(), 0);
    }

    #[test]
    fn unplaceable_retries_queue_then_cancel() {
        let mut ctx = quiet_ctx(1, DelayModel::None);
        ctx.set_retry_lost(3);
        let rdd = unit_rdd(1);
        ctx.driver_mut().schedule_failure(0, VTime::from_micros(10));
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        assert!(ctx.collect::<i64>().is_none());
        // The sole worker is dead: the retry cannot be placed anywhere.
        assert_eq!(ctx.retries_pending(), 1);
        assert!(ctx.has_next(), "a queued retry keeps the pipeline open");
        assert_eq!(ctx.cancel_retries(), 1);
        assert_eq!(ctx.lost_tasks(), 1);
        assert!(!ctx.has_next());
    }

    #[test]
    fn degrade_directives_follow_the_alive_set() {
        let mut ctx = quiet_ctx(4, DelayModel::None);
        assert_eq!(ctx.degrade_directive(), WaveDirective::Proceed);
        ctx.set_degrade_policy(DegradePolicy::FailFast);
        assert_eq!(ctx.degrade_directive(), WaveDirective::Proceed);
        // One death: FailFast halts, Quorum(0.5) and BestEffort proceed.
        ctx.driver_mut().kill_worker(3);
        while ctx.collect::<i64>().is_some() {}
        assert_eq!(ctx.degrade_directive(), WaveDirective::Halt);
        ctx.set_degrade_policy(DegradePolicy::Quorum(0.5));
        assert_eq!(ctx.degrade_directive(), WaveDirective::Proceed);
        // Two more deaths: 1/4 alive is below quorum, and with no
        // scheduled recovery the directive is Halt.
        ctx.driver_mut().kill_worker(2);
        ctx.driver_mut().kill_worker(1);
        while ctx.collect::<i64>().is_some() {}
        assert_eq!(ctx.degrade_directive(), WaveDirective::Halt);
        ctx.set_degrade_policy(DegradePolicy::BestEffort);
        assert_eq!(ctx.degrade_directive(), WaveDirective::Proceed);
        // Full blackout without recovery: even BestEffort halts.
        ctx.driver_mut().kill_worker(0);
        while ctx.collect::<i64>().is_some() {}
        assert_eq!(ctx.degrade_directive(), WaveDirective::Halt);
        // A scheduled revival turns Halt into Wait, and awaiting it
        // restores Proceed.
        let at = ctx.now() + VDur::from_millis(5);
        ctx.driver_mut().schedule_revival(0, at);
        assert_eq!(ctx.degrade_directive(), WaveDirective::Wait);
        assert!(ctx.await_recovery());
        assert_eq!(ctx.stat().alive_count(), 1);
        assert_eq!(ctx.degrade_directive(), WaveDirective::Proceed);
    }

    #[test]
    fn await_recovery_flushes_queued_retries_onto_the_newcomer() {
        let mut ctx = quiet_ctx(1, DelayModel::None);
        ctx.set_retry_lost(2);
        let rdd = unit_rdd(1);
        ctx.driver_mut().schedule_failure(0, VTime::from_micros(10));
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), sum_task);
        assert!(ctx.collect::<i64>().is_none());
        assert_eq!(ctx.retries_pending(), 1);
        let at = ctx.now() + VDur::from_millis(2);
        ctx.driver_mut().schedule_revival(0, at);
        assert!(ctx.await_recovery());
        // The queued retry was re-issued onto the revived worker.
        assert_eq!(ctx.retries_pending(), 0);
        let t = ctx.collect::<i64>().expect("retried result");
        assert_eq!(t.value, 0);
        assert_eq!(ctx.retried_tasks(), 1);
        assert_eq!(ctx.lost_tasks(), 0);
    }
}
