//! The `STAT` table (§4.1).
//!
//! For each worker the server stores its most recent status: availability,
//! staleness, and average task-completion time. The table is maintained by
//! the coordinator (the result pump in [`crate::context::AsyncContext`])
//! and consumed by barrier-control filters through read-only
//! [`StatSnapshot`]s — the paper's `AC.STAT`.

use async_cluster::{VDur, VTime, WorkerId};

/// Information about a task currently executing on a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Model version (server update count) the task was issued at.
    pub issued_version: u64,
    /// Submission instant.
    pub issued_at: VTime,
    /// Mini-batch size declared at submission.
    pub minibatch: u64,
}

/// One worker's row of the `STAT` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStat {
    /// False once the worker has failed.
    pub alive: bool,
    /// True when the worker is not executing a task (§4.1: "a worker is
    /// available if it is not executing a task").
    pub available: bool,
    /// The worker's SSP clock: advances by one per completed task, and is
    /// *seeded* at the cluster's minimum alive clock on revival/join so
    /// slack predicates stay meaningful under churn.
    pub clock: u64,
    /// Tasks completed in this worker's current life. Unlike
    /// [`WorkerStat::clock`] this is never seeded, so it is the honest
    /// "does this worker have completion history" signal.
    pub completed: u64,
    /// Running average of task service times (submission → result arrival)
    /// over this life's completions.
    pub avg_completion: VDur,
    /// The in-flight task, if any.
    pub inflight: Option<InFlight>,
    /// When the worker last submitted a result.
    pub last_result_at: Option<VTime>,
}

impl WorkerStat {
    fn new() -> Self {
        Self {
            alive: true,
            available: true,
            clock: 0,
            completed: 0,
            avg_completion: VDur::ZERO,
            inflight: None,
            last_result_at: None,
        }
    }

    /// Staleness of this worker's in-flight task as of `version`: how many
    /// model updates have happened since the task was issued.
    pub fn inflight_staleness(&self, version: u64) -> Option<u64> {
        self.inflight
            .map(|f| version.saturating_sub(f.issued_version))
    }
}

/// The mutable `STAT` table owned by the context.
#[derive(Debug, Clone)]
pub struct StatTable {
    workers: Vec<WorkerStat>,
    completed_total: u64,
}

impl StatTable {
    /// A table for `n` workers, all idle and alive.
    pub fn new(n: usize) -> Self {
        Self {
            workers: vec![WorkerStat::new(); n],
            completed_total: 0,
        }
    }

    /// Number of workers (rows).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Row accessor.
    pub fn get(&self, w: WorkerId) -> &WorkerStat {
        &self.workers[w]
    }

    /// Marks `w` busy with a task issued now.
    pub fn task_issued(&mut self, w: WorkerId, version: u64, at: VTime, minibatch: u64) {
        let s = &mut self.workers[w];
        debug_assert!(s.alive && s.available, "issuing to unavailable worker {w}");
        s.available = false;
        s.inflight = Some(InFlight {
            issued_version: version,
            issued_at: at,
            minibatch,
        });
    }

    /// Marks `w` idle after a completion, folding `service` into its
    /// average completion time. Returns the in-flight info for attribute
    /// tagging.
    pub fn task_completed(&mut self, w: WorkerId, at: VTime, service: VDur) -> Option<InFlight> {
        let s = &mut self.workers[w];
        let inflight = s.inflight.take();
        s.available = true;
        s.last_result_at = Some(at);
        // Running mean: avg += (x − avg) / n, over this life's completions
        // (the clock may be seeded after a revival and would skew n).
        s.clock += 1;
        s.completed += 1;
        let n = s.completed;
        let delta = service.as_micros() as i64 - s.avg_completion.as_micros() as i64;
        let new_avg = s.avg_completion.as_micros() as i64 + delta / n as i64;
        s.avg_completion = VDur::from_micros(new_avg.max(0) as u64);
        self.completed_total += 1;
        inflight
    }

    /// Marks `w` dead (its in-flight task, if any, is forgotten).
    pub fn worker_died(&mut self, w: WorkerId) {
        let s = &mut self.workers[w];
        s.alive = false;
        s.available = false;
        s.inflight = None;
    }

    /// The minimum SSP clock over alive rows, excluding `except` — the
    /// clock a (re)joining worker is seeded with so SSP-style predicates
    /// neither stall the cluster behind a zeroed rejoiner nor block the
    /// rejoiner itself.
    fn join_clock(&self, except: Option<WorkerId>) -> u64 {
        self.workers
            .iter()
            .enumerate()
            .filter(|&(i, s)| s.alive && Some(i) != except)
            .map(|(_, s)| s.clock)
            .min()
            .unwrap_or(0)
    }

    /// Resets `w`'s row for a revival: the worker returns as a fresh
    /// executor (no in-flight task, no completion history), alive and
    /// available, with its clock seeded at the current minimum alive clock
    /// (see [`StatTable::add_worker`] for why).
    pub fn worker_revived(&mut self, w: WorkerId) {
        let clock = self.join_clock(Some(w));
        self.workers[w] = WorkerStat {
            clock,
            ..WorkerStat::new()
        };
    }

    /// Appends a row for a brand-new worker (a mid-run join), seeded at
    /// the minimum alive clock: seeding at 0 would make SSP's slack bound
    /// stall every incumbent behind the newcomer, while seeding at the
    /// minimum admits it immediately without letting it run ahead.
    /// Returns the new worker's id.
    pub fn add_worker(&mut self) -> WorkerId {
        let clock = self.join_clock(None);
        self.workers.push(WorkerStat {
            clock,
            ..WorkerStat::new()
        });
        self.workers.len() - 1
    }

    /// Folds a [`sparklet::Completion::WorkerUp`]-style notification into
    /// the table: ids beyond the table are joins (rows are appended up to
    /// and including `w`), known ids are revivals.
    pub fn worker_up(&mut self, w: WorkerId) {
        if w < self.workers.len() {
            self.worker_revived(w);
        } else {
            while self.workers.len() <= w {
                self.add_worker();
            }
        }
    }

    /// Total tasks completed across all workers.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// An immutable snapshot for barrier filters (the paper's `AC.STAT`).
    pub fn snapshot(&self, now: VTime, version: u64) -> StatSnapshot {
        StatSnapshot {
            now,
            version,
            workers: self.workers.clone(),
        }
    }
}

/// A read-only view of the `STAT` table at a moment in time.
#[derive(Debug, Clone)]
pub struct StatSnapshot {
    /// Engine time of the snapshot.
    pub now: VTime,
    /// Server model version (update count) at the snapshot.
    pub version: u64,
    /// Worker rows, indexed by worker id.
    pub workers: Vec<WorkerStat>,
}

impl StatSnapshot {
    /// Number of alive workers.
    pub fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Number of available workers (the paper stores this on the server).
    pub fn available_count(&self) -> usize {
        self.workers.iter().filter(|w| w.available).count()
    }

    /// Maximum staleness over in-flight tasks (the paper's
    /// "maximum overall worker staleness"); 0 when nothing is in flight.
    pub fn max_staleness(&self) -> u64 {
        self.workers
            .iter()
            .filter_map(|w| w.inflight_staleness(self.version))
            .max()
            .unwrap_or(0)
    }

    /// Minimum SSP clock over alive workers; `None` if none alive.
    pub fn min_clock(&self) -> Option<u64> {
        self.workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.clock)
            .min()
    }

    /// Median average-completion time over alive workers with completion
    /// history in their current life (revived workers start history-free).
    pub fn median_avg_completion(&self) -> Option<VDur> {
        let mut v: Vec<VDur> = self
            .workers
            .iter()
            .filter(|w| w.alive && w.completed > 0)
            .map(|w| w.avg_completion)
            .collect();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        Some(v[v.len() / 2])
    }

    /// Worker ids that are available (alive and idle).
    pub fn available_workers(&self) -> Vec<WorkerId> {
        (0..self.workers.len())
            .filter(|&w| self.workers[w].available)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_complete_cycle() {
        let mut t = StatTable::new(2);
        assert!(t.get(0).available);
        t.task_issued(0, 5, VTime::from_micros(10), 32);
        assert!(!t.get(0).available);
        let snap = t.snapshot(VTime::from_micros(10), 7);
        assert_eq!(snap.workers[0].inflight_staleness(7), Some(2));
        assert_eq!(snap.max_staleness(), 2);
        assert_eq!(snap.available_count(), 1);

        let inflight = t
            .task_completed(0, VTime::from_micros(50), VDur::from_micros(40))
            .unwrap();
        assert_eq!(inflight.issued_version, 5);
        assert_eq!(inflight.minibatch, 32);
        assert!(t.get(0).available);
        assert_eq!(t.get(0).clock, 1);
        assert_eq!(t.get(0).avg_completion, VDur::from_micros(40));
    }

    #[test]
    fn avg_completion_is_running_mean() {
        let mut t = StatTable::new(1);
        for (i, svc) in [100u64, 200, 300].iter().enumerate() {
            t.task_issued(0, i as u64, VTime::ZERO, 1);
            t.task_completed(0, VTime::from_micros(*svc), VDur::from_micros(*svc));
        }
        assert_eq!(t.get(0).avg_completion, VDur::from_micros(200));
        assert_eq!(t.completed_total(), 3);
    }

    #[test]
    fn death_clears_state() {
        let mut t = StatTable::new(2);
        t.task_issued(1, 0, VTime::ZERO, 1);
        t.worker_died(1);
        let s = t.snapshot(VTime::ZERO, 0);
        assert!(!s.workers[1].alive);
        assert!(!s.workers[1].available);
        assert_eq!(s.alive_count(), 1);
        assert_eq!(s.max_staleness(), 0);
    }

    #[test]
    fn snapshot_aggregates() {
        let mut t = StatTable::new(3);
        t.task_issued(0, 0, VTime::ZERO, 1);
        t.task_completed(0, VTime::from_micros(10), VDur::from_micros(10));
        t.task_issued(1, 1, VTime::ZERO, 1);
        t.task_completed(1, VTime::from_micros(30), VDur::from_micros(30));
        let s = t.snapshot(VTime::from_micros(30), 2);
        assert_eq!(s.min_clock(), Some(0)); // worker 2 has done nothing
        assert_eq!(s.median_avg_completion(), Some(VDur::from_micros(30)));
        assert_eq!(s.available_workers(), vec![0, 1, 2]);
    }

    #[test]
    fn revival_resets_the_row_cleanly() {
        let mut t = StatTable::new(2);
        // Worker 1 builds history, then dies mid-task.
        for v in 0..4 {
            t.task_issued(1, v, VTime::ZERO, 8);
            t.task_completed(1, VTime::from_micros(v + 1), VDur::from_micros(100));
        }
        t.task_issued(1, 4, VTime::from_micros(10), 8);
        t.worker_died(1);
        t.worker_revived(1);
        let s = t.get(1);
        assert!(s.alive && s.available);
        assert_eq!(s.inflight, None, "no ghost in-flight task");
        assert_eq!(s.avg_completion, VDur::ZERO, "completion history reset");
        assert_eq!(s.last_result_at, None);
        // Clock seeds at the minimum over the *other* alive workers —
        // worker 0 has clock 0, so the rejoiner restarts at 0 here.
        assert_eq!(s.clock, 0);
    }

    #[test]
    fn rejoiner_clock_seeds_at_min_alive() {
        let mut t = StatTable::new(3);
        for w in 0..2 {
            for v in 0..5 {
                t.task_issued(w, v, VTime::ZERO, 1);
                t.task_completed(w, VTime::from_micros(v + 1), VDur::from_micros(1));
            }
        }
        // Worker 2 (clock 0) dies; survivors are at clock 5.
        t.worker_died(2);
        t.worker_revived(2);
        assert_eq!(
            t.get(2).clock,
            5,
            "rejoiner seeds at min alive clock so SSP neither stalls nor races"
        );
        // A join does the same.
        let w = t.add_worker();
        assert_eq!(w, 3);
        assert_eq!(t.get(3).clock, 5);
        assert!(t.get(3).alive && t.get(3).available);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn worker_up_dispatches_revive_vs_join() {
        let mut t = StatTable::new(2);
        t.worker_died(0);
        t.worker_up(0); // revival
        assert!(t.get(0).alive);
        assert_eq!(t.len(), 2);
        t.worker_up(3); // join (grows through 2 and 3)
        assert_eq!(t.len(), 4);
        assert!(t.get(2).alive && t.get(3).alive);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(snap.alive_count(), 4);
        assert_eq!(snap.available_workers(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn alive_set_transitions_update_aggregates() {
        let mut t = StatTable::new(3);
        for v in 0..3 {
            t.task_issued(0, v, VTime::ZERO, 1);
            t.task_completed(0, VTime::from_micros(v + 1), VDur::from_micros(10));
        }
        // The only zero-clock workers die: min_clock must follow the
        // alive set (this is what un-wedges SSP when the slowest dies).
        t.worker_died(1);
        t.worker_died(2);
        let s = t.snapshot(VTime::from_micros(10), 3);
        assert_eq!(s.alive_count(), 1);
        assert_eq!(s.min_clock(), Some(3));
        t.worker_revived(1);
        let s = t.snapshot(VTime::from_micros(10), 3);
        assert_eq!(s.alive_count(), 2);
        assert_eq!(s.min_clock(), Some(3), "rejoiner seeded at min alive");
    }

    #[test]
    fn staleness_saturates() {
        let s = WorkerStat {
            alive: true,
            available: false,
            clock: 0,
            completed: 0,
            avg_completion: VDur::ZERO,
            inflight: Some(InFlight {
                issued_version: 9,
                issued_at: VTime::ZERO,
                minibatch: 1,
            }),
            last_result_at: None,
        };
        assert_eq!(
            s.inflight_staleness(4),
            Some(0),
            "future-issued tasks clamp to 0"
        );
    }
}
