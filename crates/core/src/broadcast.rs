//! The `ASYNCbroadcaster` (§4.3): history broadcast.
//!
//! Variance-reduced methods (SAGA/ASAGA) need, for every sampled row `j`,
//! the model parameters as they were when `j` was *last* sampled. Classic
//! Spark broadcast would have to ship an ever-growing table of past model
//! vectors with every task — the overhead the paper calls out as the reason
//! Mllib has no SAGA. The `ASYNCbroadcaster` instead:
//!
//! * keeps the *server-side* history of broadcast versions;
//! * ships only version **IDs** with each task (8 bytes per sample);
//! * lets workers resolve IDs against their local cache, fetching a missed
//!   version from the server once and caching it;
//! * reference-counts versions by the per-sample version map and prunes
//!   history that no sample can reference any more, bounding memory on the
//!   server and (via eviction watermarks) on the workers.
//!
//! [`AsyncBcast::push`] is the paper's `AC.ASYNCbroadcast(w)`;
//! [`HistoryHandle::value`] is `w_br.value` and
//! [`HistoryHandle::value_at`] is `w_br.value(index)` from Algorithm 4.
//!
//! # Incremental (version-diffed) broadcast
//!
//! With [`AsyncBcast::enable_incremental`] the server additionally keeps a
//! **bounded ring of per-version change supports**: for every pushed
//! version, the set of coordinates that version's update modified
//! (declared by the optimizer through
//! [`AsyncBcast::push_snapshot_diff`]). When a worker whose newest cached
//! model is version `v` resolves version `cur`, the server folds the
//! supports of `v+1..=cur` into one union and ships a **sparse patch** —
//! the changed coordinates with their *final* values at `cur` — instead of
//! the dense vector. The worker scatter-assigns the patch onto its cached
//! base, which reconstructs the server model **bit-exactly**: changed
//! coordinates receive the server's exact values, untouched coordinates
//! were by definition never modified. Resolution falls back to the full
//! dense snapshot when the gap outruns the ring, any spanned version
//! declared a dense (unknown-support) change, the worker has no cached
//! base (fresh executors, churn revivals), or the patch would not undercut
//! the dense wire size.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use async_linalg::{compress, sparse, GradDelta, Quant};
use parking_lot::RwLock;
use sparklet::{Payload, WorkerCtx};

/// Counters describing a history broadcast's traffic and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoryStats {
    /// Versions pushed so far.
    pub versions_pushed: u64,
    /// Versions currently retained on the server.
    pub versions_live: u64,
    /// Bytes currently retained on the server.
    pub live_bytes: u64,
    /// Worker cache misses served by the server.
    pub fetches: u64,
    /// Bytes shipped to workers for those misses.
    pub fetched_bytes: u64,
    /// Fetches served as version-diff patches instead of full snapshots.
    pub incremental_fetches: u64,
    /// Bytes shipped for those patches (included in `fetched_bytes`).
    pub incremental_bytes: u64,
    /// Snapshot buffers recycled from pruned versions by
    /// [`AsyncBcast::push_snapshot`] (a steady-state push performs a copy,
    /// not an allocation).
    pub recycled_buffers: u64,
    /// Patches shipped with quantized (int8/f16) values instead of full
    /// `f64`s (a subset of `incremental_fetches`).
    pub quantized_patches: u64,
    /// Bytes shipped for those quantized patches (included in both
    /// `fetched_bytes` and `incremental_bytes`).
    pub quantized_patch_bytes: u64,
}

struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    rc: u64,
    /// In-flight pins: tasks computing against this version hold a pin
    /// from submission to result consumption, so the version outlives the
    /// gap between issue and the `record_use` that references it.
    pins: u64,
}

/// The coordinates one pushed version changed relative to its predecessor.
enum ChangeSupport {
    /// Exactly these coordinates changed (strictly increasing).
    Sparse(Vec<u32>),
    /// Unknown or full-dimension change: any gap spanning this version
    /// must take the full-snapshot fallback.
    Dense,
}

struct VersionTable<T> {
    versions: Vec<Option<Entry<T>>>,
    index_version: HashMap<u64, u64>,
    /// Sample universe size: once every index has an explicit entry, the
    /// base version can no longer be implicitly referenced.
    n_indices: u64,
    /// Version number of `versions[0]`. Zero for a fresh broadcast; a
    /// resumed run re-seats the table at the checkpoint's model version
    /// ([`AsyncBcast::new_at`]) so version IDs keep counting from where
    /// the crashed run left off instead of restarting at zero.
    base: u64,
    min_live: u64,
    live_count: u64,
    live_bytes: u64,
    /// Bounded ring of `(version, change support)` for recent pushes; empty
    /// ring / zero capacity means incremental resolution is disabled.
    ring: VecDeque<(u64, ChangeSupport)>,
    ring_capacity: usize,
    /// Value quantization applied to shipped patches (`Exact` = today's
    /// bit-exact full-precision patches).
    patch_quant: Quant,
    /// Recycled storage: snapshot buffers reclaimed from pruned versions
    /// and support buffers reclaimed from evicted ring slots.
    free_snapshots: Vec<T>,
    free_supports: Vec<Vec<u32>>,
    recycled: u64,
}

impl<T> VersionTable<T> {
    /// Slot index of version `v` (versions are stored offset by `base`).
    fn idx(&self, v: u64) -> usize {
        debug_assert!(v >= self.base, "version {v} precedes table base");
        (v - self.base) as usize
    }

    fn latest(&self) -> u64 {
        self.base + (self.versions.len() - 1) as u64
    }

    fn base_pinned(&self) -> bool {
        (self.index_version.len() as u64) < self.n_indices
    }

    fn prunable(&self, v: u64) -> bool {
        if v == self.latest() {
            return false;
        }
        if v == self.base && self.base_pinned() {
            return false;
        }
        match &self.versions[self.idx(v)] {
            Some(e) => e.rc == 0 && e.pins == 0,
            None => false,
        }
    }

    fn try_prune(&mut self, v: u64) {
        if self.prunable(v) {
            let i = self.idx(v);
            if let Some(e) = self.versions[i].take() {
                self.live_count -= 1;
                self.live_bytes -= e.bytes;
                // Reclaim the snapshot buffer for a later `push_snapshot`
                // when nothing else still shares it.
                if self.free_snapshots.len() < 4 {
                    if let Ok(value) = Arc::try_unwrap(e.value) {
                        self.free_snapshots.push(value);
                    }
                }
            }
        }
        // Advance the live watermark past pruned slots.
        while ((self.min_live - self.base) as usize) < self.versions.len()
            && self.versions[(self.min_live - self.base) as usize].is_none()
        {
            self.min_live += 1;
        }
    }

    /// Records `support` for a freshly pushed `version` in the ring,
    /// evicting (and recycling) the oldest entry beyond capacity.
    fn ring_record(&mut self, version: u64, support: ChangeSupport) {
        if self.ring_capacity == 0 {
            return;
        }
        self.ring.push_back((version, support));
        while self.ring.len() > self.ring_capacity {
            if let Some((_, ChangeSupport::Sparse(buf))) = self.ring.pop_front() {
                if self.free_supports.len() < self.ring_capacity {
                    self.free_supports.push(buf);
                }
            }
        }
    }

    /// The sparse supports of versions `from..=to`, if every one of them is
    /// in the ring with a known sparse support.
    fn ring_supports(&self, from: u64, to: u64) -> Option<Vec<&[u32]>> {
        let &(lo, _) = self.ring.front()?;
        if from < lo || to < from {
            return None;
        }
        let mut out = Vec::with_capacity((to - from + 1) as usize);
        for v in from..=to {
            let idx = (v - lo) as usize;
            match self.ring.get(idx) {
                Some((rv, ChangeSupport::Sparse(s))) => {
                    debug_assert_eq!(*rv, v, "ring versions are contiguous");
                    out.push(s.as_slice());
                }
                _ => return None,
            }
        }
        Some(out)
    }
}

/// Shared traffic counters of one history broadcast.
struct Counters {
    fetches: AtomicU64,
    fetched_bytes: AtomicU64,
    pushed: AtomicU64,
    incremental_fetches: AtomicU64,
    incremental_bytes: AtomicU64,
    quantized_patches: AtomicU64,
    quantized_patch_bytes: AtomicU64,
}

/// Reusable scratch for assembling version-diff patches. Scratches live in
/// a checkout/return pool (see [`ScratchStore`]) so concurrent incremental
/// fetches on the threaded engine never serialize on one buffer, while
/// steady-state patch assembly still performs no allocations.
#[derive(Default)]
struct PatchScratch {
    union: Vec<u32>,
    tmp: Vec<u32>,
    values: Vec<f64>,
}

/// Pool of patch scratches: the lock is held only for the pop/push, never
/// across patch assembly.
#[derive(Default)]
struct ScratchStore {
    free: RwLock<Vec<PatchScratch>>,
}

impl ScratchStore {
    fn checkout(&self) -> PatchScratch {
        self.free.write().pop().unwrap_or_default()
    }

    fn give_back(&self, s: PatchScratch) {
        self.free.write().push(s);
    }
}

/// A versioned history broadcast. Cheap to clone; clones share the store.
pub struct AsyncBcast<T: Payload + Send + Sync + 'static> {
    id: u64,
    table: Arc<RwLock<VersionTable<T>>>,
    counters: Arc<Counters>,
    patch_scratch: Arc<ScratchStore>,
}

impl<T: Payload + Send + Sync + 'static> Clone for AsyncBcast<T> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            table: Arc::clone(&self.table),
            counters: Arc::clone(&self.counters),
            patch_scratch: Arc::clone(&self.patch_scratch),
        }
    }
}

impl<T: Payload + Send + Sync + 'static> AsyncBcast<T> {
    /// Creates the broadcast with its base value (version 0). `n_indices`
    /// is the sample universe size (`n` in SAGA): it controls when version
    /// 0 stops being implicitly referenced by never-sampled rows.
    pub fn new(id: u64, initial: T, n_indices: u64) -> Self {
        Self::new_at(id, initial, n_indices, 0)
    }

    /// Creates the broadcast with its base value seated at version `base`
    /// instead of 0 — the resume path: a solver restoring a checkpoint
    /// taken at model version `v` re-seats its broadcast at `base = v`, so
    /// pushed versions continue the crashed run's numbering and samples
    /// whose history was never recorded implicitly reference the restored
    /// model. With `base = 0` this is exactly [`AsyncBcast::new`].
    pub fn new_at(id: u64, initial: T, n_indices: u64, base: u64) -> Self {
        let bytes = initial.encoded_len();
        let table = VersionTable {
            versions: vec![Some(Entry {
                value: Arc::new(initial),
                bytes,
                rc: 0,
                pins: 0,
            })],
            index_version: HashMap::new(),
            n_indices,
            base,
            min_live: base,
            live_count: 1,
            live_bytes: bytes,
            ring: VecDeque::new(),
            ring_capacity: 0,
            patch_quant: Quant::Exact,
            free_snapshots: Vec::new(),
            free_supports: Vec::new(),
            recycled: 0,
        };
        Self {
            id,
            table: Arc::new(RwLock::new(table)),
            counters: Arc::new(Counters {
                fetches: AtomicU64::new(0),
                fetched_bytes: AtomicU64::new(0),
                pushed: AtomicU64::new(1),
                incremental_fetches: AtomicU64::new(0),
                incremental_bytes: AtomicU64::new(0),
                quantized_patches: AtomicU64::new(0),
                quantized_patch_bytes: AtomicU64::new(0),
            }),
            patch_scratch: Arc::new(ScratchStore::default()),
        }
    }

    /// Turns on incremental (version-diffed) resolution with a ring of
    /// `ring_capacity` recent per-version change supports. See the module
    /// docs; with capacity 0 the broadcast behaves exactly as before.
    pub fn enable_incremental(&self, ring_capacity: usize) {
        self.table.write().ring_capacity = ring_capacity;
    }

    /// Quantizes shipped patch values to `quant` codes (int8 or IEEE half)
    /// against a per-patch scale. The codes carry the **difference**
    /// between the target version and the worker's cached base at each
    /// changed coordinate, so the scale is update-sized and the
    /// per-coordinate error is bounded by one quantization step of that
    /// difference — never a fraction of the model's largest weight — and
    /// re-quantizing against the fresh base on the next patch keeps it
    /// from accumulating. `Quant::Exact` (the default) restores today's
    /// bit-exact patches. Only meaningful together with
    /// [`AsyncBcast::enable_incremental`].
    pub fn set_patch_quant(&self, quant: Quant) {
        self.table.write().patch_quant = quant;
    }

    /// This broadcast's id (unique within one context).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Publishes a new version of the value; returns its version number.
    /// Only the 8-byte version ID travels with subsequent tasks. With
    /// incremental resolution enabled, a version pushed this way records a
    /// dense (unknown) change support: gaps spanning it fall back to full
    /// snapshots. Use [`AsyncBcast::push_snapshot_diff`] to declare the
    /// changed coordinates.
    pub fn push(&self, value: T) -> u64 {
        let bytes = value.encoded_len();
        let mut t = self.table.write();
        let prev_latest = t.latest();
        t.versions.push(Some(Entry {
            value: Arc::new(value),
            bytes,
            rc: 0,
            pins: 0,
        }));
        t.live_count += 1;
        t.live_bytes += bytes;
        let v = t.latest();
        t.ring_record(v, ChangeSupport::Dense);
        // The previous latest loses its "latest" pin; prune if unreferenced.
        t.try_prune(prev_latest);
        self.counters.pushed.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Latest version number.
    pub fn latest_version(&self) -> u64 {
        self.table.read().latest()
    }

    /// The version sample `idx` last saw (the table's base version — 0 for
    /// a fresh run — if never recorded) — the paper's "ID of the
    /// previously broadcast variable for the specified index".
    pub fn version_for_index(&self, idx: u64) -> u64 {
        let t = self.table.read();
        t.index_version.get(&idx).copied().unwrap_or(t.base)
    }

    /// Records that samples `indices` have now been processed at `version`
    /// (SAGA's `update table` step), updating reference counts and pruning
    /// versions that no sample references any more.
    pub fn record_use(&self, indices: &[u64], version: u64) {
        let mut t = self.table.write();
        debug_assert!(
            version >= t.base && t.idx(version) < t.versions.len(),
            "recording unknown version"
        );
        for &idx in indices {
            debug_assert!(idx < t.n_indices, "index {idx} out of declared universe");
            let old = t.index_version.insert(idx, version);
            let i = t.idx(version);
            if let Some(e) = t.versions[i].as_mut() {
                e.rc += 1;
            }
            match old {
                Some(o) => {
                    let oi = t.idx(o);
                    if let Some(e) = t.versions[oi].as_mut() {
                        e.rc -= 1;
                    }
                    t.try_prune(o);
                }
                None => {
                    // The index previously referenced the base version
                    // implicitly; once the whole universe is explicit,
                    // the base may go.
                    if !t.base_pinned() {
                        let b = t.base;
                        t.try_prune(b);
                    }
                }
            }
        }
    }

    /// Pins `version` against pruning while a task computed at it is in
    /// flight. Call at submission; pair with [`AsyncBcast::unpin`] when the
    /// task's result is consumed (or known lost).
    ///
    /// # Panics
    /// Panics if `version` is unknown or already pruned.
    pub fn pin(&self, version: u64) {
        let mut t = self.table.write();
        let i = t.idx(version);
        t.versions[i]
            .as_mut()
            .unwrap_or_else(|| panic!("pin: history version {version} already pruned"))
            .pins += 1;
    }

    /// Releases one pin on `version`, pruning it if nothing references it
    /// any more.
    pub fn unpin(&self, version: u64) {
        let mut t = self.table.write();
        let i = t.idx(version);
        if let Some(e) = t.versions[i].as_mut() {
            debug_assert!(
                e.pins > 0,
                "unpin without matching pin on version {version}"
            );
            e.pins = e.pins.saturating_sub(1);
        }
        t.try_prune(version);
    }

    /// Bytes of version-ID metadata shipped with a task carrying `samples`
    /// sampled rows (one 8-byte ID each, plus the current version ID).
    pub fn id_ship_bytes(samples: usize) -> u64 {
        8 * (samples as u64 + 1)
    }

    /// A handle capturing the latest version and the live watermark, for
    /// capture in task closures.
    pub fn handle(&self) -> HistoryHandle<T> {
        let t = self.table.read();
        HistoryHandle {
            bcast_id: self.id,
            version: t.latest(),
            min_live: t.min_live,
            table: Arc::clone(&self.table),
            counters: Arc::clone(&self.counters),
            patch_scratch: Arc::clone(&self.patch_scratch),
        }
    }

    /// Pins the **latest** version for a reader and returns a [`ReadPin`]
    /// guard resolving to its value — the serving-side read primitive.
    ///
    /// Version resolution and the pin increment happen under one table
    /// lock, so the returned version can never be pruned (nor its snapshot
    /// buffer recycled) between "pick latest" and "pin it". Unlike
    /// [`HistoryHandle::value_at`], this touches no worker cache and has no
    /// eviction side effects: it is safe to call from reader threads that
    /// are not part of the cluster at all. The pin is released when the
    /// guard drops.
    pub fn pin_read(&self) -> ReadPin<T> {
        let mut t = self.table.write();
        let version = t.latest();
        let i = t.idx(version);
        let e = t.versions[i]
            .as_mut()
            .expect("latest version is always live");
        e.pins += 1;
        let value = Some(Arc::clone(&e.value));
        ReadPin {
            version,
            value,
            table: Arc::clone(&self.table),
        }
    }

    /// Pins a **specific** version for a reader, if it is still live.
    /// Returns `None` when `version` is unknown or already pruned — the
    /// non-panicking twin of [`AsyncBcast::pin`] for read paths that race
    /// the pruner.
    pub fn try_pin_read_at(&self, version: u64) -> Option<ReadPin<T>> {
        let mut t = self.table.write();
        if version < t.base || (version - t.base) as usize >= t.versions.len() {
            return None;
        }
        let i = t.idx(version);
        let e = t.versions[i].as_mut()?;
        e.pins += 1;
        let value = Some(Arc::clone(&e.value));
        Some(ReadPin {
            version,
            value,
            table: Arc::clone(&self.table),
        })
    }

    /// Current traffic/memory counters.
    pub fn stats(&self) -> HistoryStats {
        let t = self.table.read();
        HistoryStats {
            versions_pushed: self.counters.pushed.load(Ordering::Relaxed),
            versions_live: t.live_count,
            live_bytes: t.live_bytes,
            fetches: self.counters.fetches.load(Ordering::Relaxed),
            fetched_bytes: self.counters.fetched_bytes.load(Ordering::Relaxed),
            incremental_fetches: self.counters.incremental_fetches.load(Ordering::Relaxed),
            incremental_bytes: self.counters.incremental_bytes.load(Ordering::Relaxed),
            recycled_buffers: t.recycled,
            quantized_patches: self.counters.quantized_patches.load(Ordering::Relaxed),
            quantized_patch_bytes: self.counters.quantized_patch_bytes.load(Ordering::Relaxed),
        }
    }
}

/// RAII read lease on one broadcast version, handed out by
/// [`AsyncBcast::pin_read`] / [`AsyncBcast::try_pin_read_at`].
///
/// While the guard lives, the pinned version cannot be pruned (its `pins`
/// count blocks the version table's prunability check) and its snapshot
/// buffer cannot
/// be recycled into the free pool (the guard's `Arc` clone keeps
/// `Arc::try_unwrap` failing). Dropping the guard releases the pin and
/// immediately re-attempts the prune, so an abandoned old version is
/// reclaimed the moment its last reader leaves.
///
/// The guard derefs to the snapshot value itself; reads are lock-free
/// after construction.
pub struct ReadPin<T: Payload + Send + Sync + 'static> {
    version: u64,
    /// `Some` for the guard's whole life; taken in `drop` *before* the
    /// prune attempt so the last reader's clone doesn't block snapshot
    /// buffer recycling.
    value: Option<Arc<T>>,
    table: Arc<RwLock<VersionTable<T>>>,
}

impl<T: Payload + Send + Sync + 'static> ReadPin<T> {
    /// The pinned version number.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The pinned snapshot value (same as `Deref`).
    pub fn value(&self) -> &T {
        self.value.as_ref().expect("ReadPin value lives until drop")
    }
}

impl<T: Payload + Send + Sync + 'static> std::ops::Deref for ReadPin<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value()
    }
}

impl<T: Payload + Send + Sync + 'static> std::fmt::Debug for ReadPin<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadPin")
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

impl<T: Payload + Send + Sync + 'static> Drop for ReadPin<T> {
    fn drop(&mut self) {
        // Release our share of the snapshot first: if we are the last
        // reader, the prune below can then reclaim the buffer into the
        // free pool instead of merely freeing it.
        drop(self.value.take());
        let mut t = self.table.write();
        let i = t.idx(self.version);
        if let Some(e) = t.versions[i].as_mut() {
            debug_assert!(e.pins > 0, "ReadPin drop without matching pin");
            e.pins = e.pins.saturating_sub(1);
        }
        t.try_prune(self.version);
    }
}

impl AsyncBcast<Vec<f64>> {
    /// Publishes a new version by *copying* `w` into a snapshot buffer —
    /// recycling the buffer of a pruned version when one is free, so a
    /// steady-state push is a `memcpy`, not an allocation. Identical
    /// version/pruning semantics (and identical values) to
    /// `push(w.to_vec())`.
    pub fn push_snapshot(&self, w: &[f64]) -> u64 {
        self.push_snapshot_inner(w, None, None)
    }

    /// Like [`AsyncBcast::push_snapshot`], additionally declaring which
    /// coordinates this version's update changed: the support of `changed`
    /// enters the incremental ring, making the version spannable by
    /// version-diff patches.
    ///
    /// **Contract:** every coordinate where the new model differs from the
    /// previous version must be in `changed`'s support (a dense `changed`
    /// records an unknown support, forcing the snapshot fallback). The
    /// optimizer upholds this by passing exactly the update it applied.
    pub fn push_snapshot_diff(&self, w: &[f64], changed: &GradDelta) -> u64 {
        let sparse_support = match changed {
            GradDelta::Sparse(s) => Some(s.indices()),
            GradDelta::Dense(_) => None,
        };
        self.push_snapshot_inner(w, sparse_support, None)
    }

    /// Like [`AsyncBcast::push_snapshot_diff`], but the change support
    /// arrives as a bare sorted index slice — the shape the sharded
    /// server's batched absorption produces (the concatenation of its
    /// per-shard fold supports). `None` declares a dense (unknown) change.
    pub fn push_snapshot_with_support(&self, w: &[f64], support: Option<&[u32]>) -> u64 {
        self.push_snapshot_inner(w, support, None)
    }

    /// The shard-parallel variant of [`AsyncBcast::push_snapshot_with_support`]:
    /// the snapshot memcpy is spread over `pool`'s persistent threads in
    /// contiguous chunks. Byte accounting, recycling, ring bookkeeping and
    /// the stored values are identical to the serial push — a copy is a
    /// copy — so the two variants are interchangeable bit for bit.
    pub fn push_snapshot_sharded(
        &self,
        w: &[f64],
        support: Option<&[u32]>,
        pool: &async_linalg::ShardPool,
    ) -> u64 {
        if pool.threads() <= 1 {
            return self.push_snapshot_inner(w, support, None);
        }
        self.push_snapshot_inner(w, support, Some(pool))
    }

    fn push_snapshot_inner(
        &self,
        w: &[f64],
        sparse_support: Option<&[u32]>,
        pool: Option<&async_linalg::ShardPool>,
    ) -> u64 {
        let bytes = w.encoded_len();
        let mut t = self.table.write();
        let prev_latest = t.latest();
        let value = match t.free_snapshots.pop() {
            Some(mut buf) => {
                buf.clear();
                copy_into(w, &mut buf, pool);
                t.recycled += 1;
                buf
            }
            None => {
                let mut buf = Vec::new();
                copy_into(w, &mut buf, pool);
                buf
            }
        };
        t.versions.push(Some(Entry {
            value: Arc::new(value),
            bytes,
            rc: 0,
            pins: 0,
        }));
        t.live_count += 1;
        t.live_bytes += bytes;
        let v = t.latest();
        // The support is only copied when the ring will actually keep it:
        // with incremental resolution disabled a diff push costs exactly
        // what a plain snapshot push costs.
        if t.ring_capacity > 0 {
            let support = match sparse_support {
                Some(s) => {
                    let mut buf = t.free_supports.pop().unwrap_or_default();
                    buf.clear();
                    buf.extend_from_slice(s);
                    ChangeSupport::Sparse(buf)
                }
                None => ChangeSupport::Dense,
            };
            t.ring_record(v, support);
        }
        t.try_prune(prev_latest);
        self.counters.pushed.fetch_add(1, Ordering::Relaxed);
        v
    }
}

/// Fills the cleared `buf` with a copy of `w` — serially, or chunked over
/// a shard pool's threads when one is supplied (the uninitialized spare
/// capacity is written through `MaybeUninit`, so the parallel arm performs
/// one pass, not a zero-fill plus a copy).
fn copy_into(w: &[f64], buf: &mut Vec<f64>, pool: Option<&async_linalg::ShardPool>) {
    debug_assert!(buf.is_empty(), "copy_into expects a cleared buffer");
    let Some(pool) = pool else {
        buf.extend_from_slice(w);
        return;
    };
    buf.reserve(w.len());
    let spare = &mut buf.spare_capacity_mut()[..w.len()];
    // Carve (destination, source) chunk pairs, one per pool thread. One
    // small O(threads) chunk-descriptor Vec is allocated per sharded
    // push (the descriptors borrow `buf`, so they cannot persist across
    // pushes); the split_ranges arithmetic is inlined only to avoid
    // allocating a second range Vec on top of it.
    let parts = pool.threads();
    let (base, extra) = (w.len() / parts, w.len() % parts);
    let mut chunks: Vec<(&mut [std::mem::MaybeUninit<f64>], &[f64])> = Vec::with_capacity(parts);
    let (mut rest_dst, mut rest_src) = (spare, w);
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            continue;
        }
        let (dst, dtail) = rest_dst.split_at_mut(sz);
        let (src, stail) = rest_src.split_at(sz);
        rest_dst = dtail;
        rest_src = stail;
        chunks.push((dst, src));
    }
    pool.for_each(&mut chunks, |_, (dst, src)| {
        for (d, s) in dst.iter_mut().zip(*src) {
            d.write(*s);
        }
    });
    // SAFETY: every element of the first `w.len()` spare slots was just
    // initialized by exactly one chunk job.
    unsafe { buf.set_len(w.len()) };
}

/// A worker-side view of an [`AsyncBcast`] at a fixed version, captured in
/// task closures. Resolution order: local cache, then a (charged) fetch
/// from the server store.
pub struct HistoryHandle<T: Payload + Send + Sync + 'static> {
    bcast_id: u64,
    version: u64,
    min_live: u64,
    table: Arc<RwLock<VersionTable<T>>>,
    counters: Arc<Counters>,
    patch_scratch: Arc<ScratchStore>,
}

impl<T: Payload + Send + Sync + 'static> Clone for HistoryHandle<T> {
    fn clone(&self) -> Self {
        Self {
            bcast_id: self.bcast_id,
            version: self.version,
            min_live: self.min_live,
            table: Arc::clone(&self.table),
            counters: Arc::clone(&self.counters),
            patch_scratch: Arc::clone(&self.patch_scratch),
        }
    }
}

impl<T: Payload + Send + Sync + 'static> HistoryHandle<T> {
    /// The version this handle was created at (the task's model version).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The owning broadcast's id — the worker-cache namespace every
    /// resolution of this handle reads and writes.
    pub fn id(&self) -> u64 {
        self.bcast_id
    }

    /// Resolves the handle's own version — `w_br.value` in Algorithm 4.
    pub fn value(&self, ctx: &mut WorkerCtx) -> Arc<T> {
        self.value_at(ctx, self.version)
    }

    /// Resolves an arbitrary historical `version` — `w_br.value(index)`
    /// in Algorithm 4, with the version looked up by the server at task
    /// submission.
    ///
    /// # Panics
    /// Panics if `version` was pruned, which means the caller failed to
    /// keep it referenced through [`AsyncBcast::record_use`].
    pub fn value_at(&self, ctx: &mut WorkerCtx, version: u64) -> Arc<T> {
        // Honour the server's watermark: cached versions below it can never
        // be requested again.
        ctx.cache_evict_below(self.bcast_id, self.min_live);
        let key = (self.bcast_id, version);
        if let Some(any) = ctx.cache_get(key) {
            return any.downcast::<T>().expect("history cache type mismatch");
        }
        let (value, bytes) = {
            let t = self.table.read();
            let entry = t.versions[t.idx(version)]
                .as_ref()
                .unwrap_or_else(|| panic!("history version {version} was pruned while in use"));
            (Arc::clone(&entry.value), entry.bytes)
        };
        self.counters.fetches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fetched_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        ctx.cache_put_fetched(
            key,
            value.clone() as Arc<dyn std::any::Any + Send + Sync>,
            bytes,
        );
        value
    }
}

/// Wire size of a sparse patch with `nnz` entries: the `SparseVec` wire
/// shape, `(len, dim)` header plus a 4-byte index and 8-byte value each.
fn patch_wire_bytes(nnz: usize) -> u64 {
    16 + 12 * nnz as u64
}

/// Wire size of a patch whose values ship as `quant` codes: the `(len,
/// dim)` header, plus a scale and 1- or 2-byte codes for the quantized
/// forms (a 4-byte index per entry in every form).
fn qpatch_wire_bytes(quant: Quant, nnz: usize) -> u64 {
    match quant {
        Quant::Exact => patch_wire_bytes(nnz),
        Quant::I8 => 24 + 5 * nnz as u64,
        Quant::F16 => 24 + 6 * nnz as u64,
    }
}

/// Quantize-dequantize one patch diff `d` against `scale` (callers never
/// pass `Quant::Exact`).
#[inline]
fn quantize_diff(d: f64, scale: f64, quant: Quant) -> f64 {
    match quant {
        Quant::I8 => compress::dequantize_i8(compress::quantize_i8(d, scale), scale),
        Quant::F16 => compress::dequantize_f16(compress::quantize_f16(d, scale), scale),
        Quant::Exact => d,
    }
}

impl HistoryHandle<Vec<f64>> {
    /// Resolves the handle's version like [`HistoryHandle::value`], but —
    /// when the broadcast has incremental resolution enabled and the
    /// worker's cache holds an older model — ships a **version-diff patch**
    /// (the union of the gap's change supports with their final values)
    /// instead of the dense snapshot, scatter-assigning it onto the cached
    /// base. The reconstruction is bit-exact (see the module docs); only
    /// the charged wire bytes differ. Falls back to the full snapshot when
    /// the gap outruns the ring, a spanned version has an unknown support,
    /// no cached base exists, or the patch would not be smaller.
    pub fn value_incremental(&self, ctx: &mut WorkerCtx) -> Arc<Vec<f64>> {
        if self.table.read().ring_capacity == 0 {
            // Ring disabled: behave exactly like `value`, watermark
            // eviction included.
            return self.value(ctx);
        }
        let version = self.version;
        // Unlike the watermark eviction of `value_at`, the worker keeps its
        // *newest* cached model even when the server pruned that version —
        // patching reads only the gap's supports (in the ring) and the
        // target's values, never the server-side base. Everything older is
        // evicted, bounding the cache at one model per broadcast.
        if let Some(newest) = ctx.cache_newest_version(self.bcast_id) {
            ctx.cache_evict_below(self.bcast_id, newest);
        }
        let key = (self.bcast_id, version);
        if let Some(any) = ctx.cache_get(key) {
            return any
                .downcast::<Vec<f64>>()
                .expect("history cache type mismatch");
        }
        // A usable base is the worker's newest cached version *below* the
        // requested one (per-worker versions are nondecreasing, so this is
        // the common steady-state shape).
        let base_version = match ctx.cache_newest_version(self.bcast_id) {
            Some(v) if v < version => v,
            _ => return self.value_at(ctx, version),
        };
        // Assemble the patch under the table read lock: union the change
        // supports of the gap, bail to the snapshot fallback if any is
        // missing/dense or the patch would not undercut the dense wire.
        // The scratch is checked out of a pool (not locked for the whole
        // assembly), so concurrent fetches on other workers proceed.
        let mut scratch = self.patch_scratch.checkout();
        let PatchScratch { union, tmp, values } = &mut scratch;
        let (patch_bytes, patch_quant) = {
            let t = self.table.read();
            let Some(supports) = t.ring_supports(base_version + 1, version) else {
                drop(t);
                self.patch_scratch.give_back(scratch);
                return self.value_at(ctx, version);
            };
            union.clear();
            for s in supports {
                if union.is_empty() {
                    union.extend_from_slice(s);
                } else {
                    sparse::merge_union_u32(union, s, tmp);
                    std::mem::swap(union, tmp);
                }
            }
            let entry = t.versions[t.idx(version)]
                .as_ref()
                .unwrap_or_else(|| panic!("history version {version} was pruned while in use"));
            let bytes = qpatch_wire_bytes(t.patch_quant, union.len());
            if bytes >= entry.bytes {
                drop(t);
                self.patch_scratch.give_back(scratch);
                return self.value_at(ctx, version);
            }
            // The patch carries the coordinates' *final* values at the
            // target version — scatter-assign reconstructs it exactly.
            let target = &entry.value;
            values.clear();
            values.extend(union.iter().map(|&i| target[i as usize]));
            (bytes, t.patch_quant)
        };
        // Take the base out of the worker cache and patch it forward —
        // in place when the worker is the only owner, else via one copy.
        let base_any = ctx
            .cache_remove((self.bcast_id, base_version))
            .expect("newest cached version is present");
        let base = base_any
            .downcast::<Vec<f64>>()
            .expect("history cache type mismatch");
        let mut w = match Arc::try_unwrap(base) {
            Ok(owned) => owned,
            Err(shared) => shared.as_ref().clone(),
        };
        if patch_quant == Quant::Exact {
            sparse::scatter_assign(union, values, &mut w);
        } else {
            // Quantized patch: each changed coordinate moves by the
            // dequantized code of its target−base difference, against a
            // per-patch scale of the largest such difference — exactly
            // the value a remote worker reconstructs from the shipped
            // codes (`WirePlan::QPatch`).
            let mut scale = 0.0f64;
            for (&i, &tv) in union.iter().zip(values.iter()) {
                scale = scale.max((tv - w[i as usize]).abs());
            }
            for (&i, &tv) in union.iter().zip(values.iter()) {
                let wi = &mut w[i as usize];
                *wi += quantize_diff(tv - *wi, scale, patch_quant);
            }
            self.counters
                .quantized_patches
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .quantized_patch_bytes
                .fetch_add(patch_bytes, Ordering::Relaxed);
        }
        self.patch_scratch.give_back(scratch);
        let value = Arc::new(w);
        self.counters.fetches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fetched_bytes
            .fetch_add(patch_bytes, Ordering::Relaxed);
        self.counters
            .incremental_fetches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .incremental_bytes
            .fetch_add(patch_bytes, Ordering::Relaxed);
        ctx.cache_put_fetched(
            key,
            value.clone() as Arc<dyn std::any::Any + Send + Sync>,
            patch_bytes,
        );
        value
    }

    /// Plans how to materialize this handle's version on a **networked**
    /// worker whose cache the driver tracks through `mirror`: the exact
    /// decision [`HistoryHandle::value_incremental`] would take on that
    /// worker, reified as a shippable [`WirePlan`] instead of executed in
    /// process. The mirror receives the same cache bookkeeping (watermark
    /// evictions, fetched-entry insertions, byte charges) a real resolution
    /// performs, and the broadcast's traffic counters advance identically —
    /// so a remote run reports the same fetch/patch statistics as the
    /// simulator, and the next plan for the same worker sees the cache
    /// state this one left behind. The worker applies the plan with
    /// [`WirePlan::apply`], which reproduces the resolved value bit-exactly.
    pub fn wire_plan(&self, mirror: &mut WorkerCtx) -> WirePlan {
        if self.table.read().ring_capacity == 0 {
            return self.wire_plan_at(mirror, self.version);
        }
        let version = self.version;
        // Keep the newest cached model, evict everything older — the same
        // bound `value_incremental` enforces. The plan carries the
        // watermark so the worker's cache evicts in lockstep.
        let evict_below = match mirror.cache_newest_version(self.bcast_id) {
            Some(newest) => {
                mirror.cache_evict_below(self.bcast_id, newest);
                newest
            }
            None => 0,
        };
        let key = (self.bcast_id, version);
        if mirror.cache_get(key).is_some() {
            return WirePlan::Cached {
                version,
                evict_below,
            };
        }
        let base_version = match mirror.cache_newest_version(self.bcast_id) {
            Some(v) if v < version => v,
            _ => return self.wire_plan_at(mirror, version),
        };
        let mut scratch = self.patch_scratch.checkout();
        let PatchScratch { union, tmp, values } = &mut scratch;
        let (patch_bytes, patch_quant, target) = {
            let t = self.table.read();
            let Some(supports) = t.ring_supports(base_version + 1, version) else {
                drop(t);
                self.patch_scratch.give_back(scratch);
                return self.wire_plan_at(mirror, version);
            };
            union.clear();
            for s in supports {
                if union.is_empty() {
                    union.extend_from_slice(s);
                } else {
                    sparse::merge_union_u32(union, s, tmp);
                    std::mem::swap(union, tmp);
                }
            }
            let entry = t.versions[t.idx(version)]
                .as_ref()
                .unwrap_or_else(|| panic!("history version {version} was pruned while in use"));
            let bytes = qpatch_wire_bytes(t.patch_quant, union.len());
            if bytes >= entry.bytes {
                drop(t);
                self.patch_scratch.give_back(scratch);
                return self.wire_plan_at(mirror, version);
            }
            let target = Arc::clone(&entry.value);
            values.clear();
            values.extend(union.iter().map(|&i| target[i as usize]));
            (bytes, t.patch_quant, target)
        };
        let indices = union.clone();
        let patch_values = values.clone();
        self.patch_scratch.give_back(scratch);
        let base_any = mirror
            .cache_remove((self.bcast_id, base_version))
            .expect("newest cached version is present");
        self.counters.fetches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fetched_bytes
            .fetch_add(patch_bytes, Ordering::Relaxed);
        self.counters
            .incremental_fetches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .incremental_bytes
            .fetch_add(patch_bytes, Ordering::Relaxed);
        if patch_quant == Quant::Exact {
            // The patched result *is* the target version: mirror it directly
            // instead of re-running the scatter driver-side.
            mirror.cache_put_fetched(
                key,
                target as Arc<dyn std::any::Any + Send + Sync>,
                patch_bytes,
            );
            return WirePlan::Patch {
                base: base_version,
                version,
                indices,
                values: patch_values,
                evict_below,
            };
        }
        // Quantized patch: codes are computed against the *mirror's* cached
        // base (which carries the worker's accumulated quantization error,
        // not the exact history), so the worker's dequantized apply lands on
        // exactly the vector cached here — driver and worker stay bitwise in
        // lockstep even though neither holds the exact target.
        let base_vec = base_any
            .downcast::<Vec<f64>>()
            .expect("history cache type mismatch");
        let mut w = match Arc::try_unwrap(base_vec) {
            Ok(owned) => owned,
            Err(shared) => shared.as_ref().clone(),
        };
        let mut scale = 0.0f64;
        for (&i, &tv) in indices.iter().zip(patch_values.iter()) {
            scale = scale.max((tv - w[i as usize]).abs());
        }
        let codes = match patch_quant {
            Quant::I8 => {
                let mut codes = Vec::with_capacity(indices.len());
                for (&i, &tv) in indices.iter().zip(patch_values.iter()) {
                    let wi = &mut w[i as usize];
                    let code = compress::quantize_i8(tv - *wi, scale);
                    *wi += compress::dequantize_i8(code, scale);
                    codes.push(code);
                }
                PatchCodes::I8(codes)
            }
            Quant::F16 => {
                let mut codes = Vec::with_capacity(indices.len());
                for (&i, &tv) in indices.iter().zip(patch_values.iter()) {
                    let wi = &mut w[i as usize];
                    let code = compress::quantize_f16(tv - *wi, scale);
                    *wi += compress::dequantize_f16(code, scale);
                    codes.push(code);
                }
                PatchCodes::F16(codes)
            }
            Quant::Exact => unreachable!("exact patches returned above"),
        };
        self.counters
            .quantized_patches
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .quantized_patch_bytes
            .fetch_add(patch_bytes, Ordering::Relaxed);
        mirror.cache_put_fetched(
            key,
            Arc::new(w) as Arc<dyn std::any::Any + Send + Sync>,
            patch_bytes,
        );
        WirePlan::QPatch {
            base: base_version,
            version,
            indices,
            scale,
            codes,
            evict_below,
        }
    }

    /// Plans the materialization of an arbitrary historical `version` on a
    /// networked worker — the wire form of [`HistoryHandle::value_at`],
    /// with the same mirror bookkeeping contract as
    /// [`HistoryHandle::wire_plan`].
    ///
    /// # Panics
    /// Panics if `version` was pruned (see [`HistoryHandle::value_at`]).
    pub fn wire_plan_at(&self, mirror: &mut WorkerCtx, version: u64) -> WirePlan {
        mirror.cache_evict_below(self.bcast_id, self.min_live);
        let key = (self.bcast_id, version);
        if mirror.cache_get(key).is_some() {
            return WirePlan::Cached {
                version,
                evict_below: self.min_live,
            };
        }
        let (value, bytes) = {
            let t = self.table.read();
            let entry = t.versions[t.idx(version)]
                .as_ref()
                .unwrap_or_else(|| panic!("history version {version} was pruned while in use"));
            (Arc::clone(&entry.value), entry.bytes)
        };
        self.counters.fetches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .fetched_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        mirror.cache_put_fetched(
            key,
            value.clone() as Arc<dyn std::any::Any + Send + Sync>,
            bytes,
        );
        WirePlan::Snapshot {
            version,
            values: value,
            evict_below: self.min_live,
        }
    }
}

/// How a networked worker materializes one history-broadcast version: the
/// driver resolves each version against its per-worker cache **mirror**
/// ([`HistoryHandle::wire_plan`]) and ships the resulting plan inside the
/// task request; the worker replays it with [`WirePlan::apply`]. Because
/// the plan is chosen against the mirror, `Cached` never misses on the
/// worker and `Patch` always finds its base — as long as driver and worker
/// process the same task stream, which the remote engine's epoch guard
/// enforces (a reconnected worker gets a fresh mirror, so its first plans
/// are `Snapshot`s).
#[derive(Debug, Clone, PartialEq)]
pub enum WirePlan {
    /// The worker already holds `version`; nothing crosses the wire.
    Cached {
        /// Version to resolve from the worker's cache.
        version: u64,
        /// Evict cached versions below this before resolving.
        evict_below: u64,
    },
    /// Full dense snapshot of `version`.
    Snapshot {
        /// Version the values belong to.
        version: u64,
        /// The complete model vector.
        values: Arc<Vec<f64>>,
        /// Evict cached versions below this before inserting.
        evict_below: u64,
    },
    /// Version-diff patch: scatter `indices`/`values` onto the cached
    /// `base` to reconstruct `version` bit-exactly.
    Patch {
        /// Cached version the patch applies on top of.
        base: u64,
        /// Version the patched vector becomes.
        version: u64,
        /// Changed coordinates (strictly increasing).
        indices: Vec<u32>,
        /// Final values of those coordinates at `version`.
        values: Vec<f64>,
        /// Evict cached versions below this before patching.
        evict_below: u64,
    },
    /// Quantized version-diff patch (see [`AsyncBcast::set_patch_quant`]):
    /// each changed coordinate moves by the dequantized `code · scale`
    /// difference instead of jumping to its exact target value. The driver
    /// computed the codes against its mirror of this worker's cache, so the
    /// apply reproduces the driver-side mirror entry bit-exactly.
    QPatch {
        /// Cached version the patch applies on top of.
        base: u64,
        /// Version the patched vector becomes.
        version: u64,
        /// Changed coordinates (strictly increasing).
        indices: Vec<u32>,
        /// Per-patch normalization: the largest `|target − base|` diff.
        scale: f64,
        /// Quantized diff codes, one per index.
        codes: PatchCodes,
        /// Evict cached versions below this before patching.
        evict_below: u64,
    },
}

/// The quantized diff codes carried by a [`WirePlan::QPatch`], in the wire
/// format chosen via [`AsyncBcast::set_patch_quant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchCodes {
    /// 1-byte codes: `diff ≈ code · scale / 127`.
    I8(Vec<i8>),
    /// IEEE-754 half-precision bit patterns: `diff ≈ f16(code) · scale`.
    F16(Vec<u16>),
}

impl PatchCodes {
    /// Number of codes (equals the patch's index count).
    pub fn len(&self) -> usize {
        match self {
            PatchCodes::I8(c) => c.len(),
            PatchCodes::F16(c) => c.len(),
        }
    }

    /// True when the patch carries no codes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wire format these codes use.
    pub fn quant(&self) -> Quant {
        match self {
            PatchCodes::I8(_) => Quant::I8,
            PatchCodes::F16(_) => Quant::F16,
        }
    }
}

impl WirePlan {
    /// The version this plan materializes.
    pub fn version(&self) -> u64 {
        match *self {
            WirePlan::Cached { version, .. }
            | WirePlan::Snapshot { version, .. }
            | WirePlan::Patch { version, .. }
            | WirePlan::QPatch { version, .. } => version,
        }
    }

    /// Executes the plan against a worker's local cache, returning the
    /// materialized model vector and caching it for later plans.
    ///
    /// # Panics
    /// Panics if the cache diverged from the driver's mirror (a `Cached`
    /// miss or a missing `Patch` base) — with the remote engine's
    /// epoch-guarded task stream that indicates a protocol bug, not a
    /// recoverable condition.
    pub fn apply(self, ctx: &mut WorkerCtx, bcast_id: u64) -> Arc<Vec<f64>> {
        match self {
            WirePlan::Cached {
                version,
                evict_below,
            } => {
                ctx.cache_evict_below(bcast_id, evict_below);
                ctx.cache_get((bcast_id, version))
                    .unwrap_or_else(|| {
                        panic!("wire plan expected version {version} cached on the worker")
                    })
                    .downcast::<Vec<f64>>()
                    .expect("history cache type mismatch")
            }
            WirePlan::Snapshot {
                version,
                values,
                evict_below,
            } => {
                ctx.cache_evict_below(bcast_id, evict_below);
                let bytes = values.encoded_len();
                ctx.cache_put_fetched(
                    (bcast_id, version),
                    values.clone() as Arc<dyn std::any::Any + Send + Sync>,
                    bytes,
                );
                values
            }
            WirePlan::Patch {
                base,
                version,
                indices,
                values,
                evict_below,
            } => {
                ctx.cache_evict_below(bcast_id, evict_below);
                let base_any = ctx.cache_remove((bcast_id, base)).unwrap_or_else(|| {
                    panic!("wire plan expected patch base {base} cached on the worker")
                });
                let base_vec = base_any
                    .downcast::<Vec<f64>>()
                    .expect("history cache type mismatch");
                let mut w = match Arc::try_unwrap(base_vec) {
                    Ok(owned) => owned,
                    Err(shared) => shared.as_ref().clone(),
                };
                sparse::scatter_assign(&indices, &values, &mut w);
                let value = Arc::new(w);
                ctx.cache_put_fetched(
                    (bcast_id, version),
                    value.clone() as Arc<dyn std::any::Any + Send + Sync>,
                    patch_wire_bytes(indices.len()),
                );
                value
            }
            WirePlan::QPatch {
                base,
                version,
                indices,
                scale,
                codes,
                evict_below,
            } => {
                ctx.cache_evict_below(bcast_id, evict_below);
                let base_any = ctx.cache_remove((bcast_id, base)).unwrap_or_else(|| {
                    panic!("wire plan expected patch base {base} cached on the worker")
                });
                let base_vec = base_any
                    .downcast::<Vec<f64>>()
                    .expect("history cache type mismatch");
                let mut w = match Arc::try_unwrap(base_vec) {
                    Ok(owned) => owned,
                    Err(shared) => shared.as_ref().clone(),
                };
                let bytes = qpatch_wire_bytes(codes.quant(), indices.len());
                match &codes {
                    PatchCodes::I8(c) => {
                        for (&i, &code) in indices.iter().zip(c.iter()) {
                            w[i as usize] += compress::dequantize_i8(code, scale);
                        }
                    }
                    PatchCodes::F16(c) => {
                        for (&i, &code) in indices.iter().zip(c.iter()) {
                            w[i as usize] += compress::dequantize_f16(code, scale);
                        }
                    }
                }
                let value = Arc::new(w);
                ctx.cache_put_fetched(
                    (bcast_id, version),
                    value.clone() as Arc<dyn std::any::Any + Send + Sync>,
                    bytes,
                );
                value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bcast(n: u64) -> AsyncBcast<Vec<f64>> {
        AsyncBcast::new(0, vec![0.0; 4], n)
    }

    #[test]
    fn push_advances_versions() {
        let b = bcast(10);
        assert_eq!(b.latest_version(), 0);
        assert_eq!(b.push(vec![1.0; 4]), 1);
        assert_eq!(b.push(vec![2.0; 4]), 2);
        assert_eq!(b.latest_version(), 2);
        assert_eq!(b.stats().versions_pushed, 3);
    }

    #[test]
    fn index_versions_default_to_base() {
        let b = bcast(10);
        assert_eq!(b.version_for_index(7), 0);
        b.push(vec![1.0; 4]);
        b.record_use(&[7], 1);
        assert_eq!(b.version_for_index(7), 1);
        assert_eq!(b.version_for_index(3), 0);
    }

    #[test]
    fn worker_cache_hit_after_first_fetch() {
        let b = bcast(10);
        b.push(vec![1.0; 4]);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        let v1 = h.value(&mut ctx);
        assert_eq!(v1[0], 1.0);
        assert_eq!(b.stats().fetches, 1);
        let _v2 = h.value(&mut ctx);
        assert_eq!(
            b.stats().fetches,
            1,
            "second access must hit the worker cache"
        );
        let (charged, _) = ctx.take_charges();
        assert_eq!(charged, (vec![1.0f64; 4]).encoded_len());
    }

    #[test]
    fn historical_versions_resolvable_until_released() {
        let b = bcast(4);
        b.push(vec![1.0; 4]); // v1
        b.record_use(&[0, 1], 1);
        b.push(vec![2.0; 4]); // v2
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        // Sample 0 last saw v1; sample 2 still implicitly at v0.
        assert_eq!(h.value_at(&mut ctx, b.version_for_index(0))[0], 1.0);
        assert_eq!(h.value_at(&mut ctx, b.version_for_index(2))[0], 0.0);
    }

    #[test]
    fn pruning_drops_unreferenced_versions() {
        let b = bcast(2);
        b.push(vec![1.0; 4]); // v1
        b.record_use(&[0, 1], 1); // all indices explicit: v0 released
        assert_eq!(b.stats().versions_live, 1, "only v1 lives: {:?}", b.stats());
        b.push(vec![2.0; 4]); // v2
                              // v1 still referenced by both indices.
        assert_eq!(b.stats().versions_live, 2);
        b.record_use(&[0], 2);
        // v1 still referenced by index 1.
        assert_eq!(b.stats().versions_live, 2);
        b.record_use(&[1], 2);
        // Now v1 unreferenced and not latest: pruned.
        assert_eq!(b.stats().versions_live, 1);
    }

    #[test]
    fn base_stays_pinned_while_universe_incomplete() {
        let b = bcast(3);
        b.push(vec![1.0; 4]);
        b.record_use(&[0, 1], 1); // index 2 never recorded: v0 pinned
        assert_eq!(b.stats().versions_live, 2);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        assert_eq!(h.value_at(&mut ctx, 0)[0], 0.0);
    }

    #[test]
    fn latest_is_never_pruned() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        for i in 0..5 {
            let v = b.push(vec![i as f64; 4]);
            b.record_use(&[0], v);
            let s = b.stats();
            assert_eq!(s.versions_live, 1, "only latest should live");
        }
    }

    #[test]
    fn eviction_watermark_trims_worker_caches() {
        let b = bcast(1);
        let mut ctx = WorkerCtx::new(0);
        // Fetch v0 into the cache.
        b.handle().value_at(&mut ctx, 0);
        assert_eq!(ctx.cache_len(), 1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.record_use(&[0], v1); // v0 pruned on the server
                                // A new handle carries the advanced watermark; resolving evicts v0.
        let h = b.handle();
        h.value(&mut ctx);
        assert_eq!(ctx.cache_len(), 1, "stale v0 evicted, v1 cached");
    }

    #[test]
    fn pins_protect_inflight_versions() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.pin(v1);
        b.record_use(&[0], v1);
        let v2 = b.push(vec![2.0; 4]);
        // Index 0 moves on to v2: v1's rc drops to 0, but the pin keeps it.
        b.record_use(&[0], v2);
        assert_eq!(b.stats().versions_live, 2, "pinned v1 must survive");
        b.unpin(v1);
        assert_eq!(b.stats().versions_live, 1, "unpinning releases v1");
    }

    #[test]
    fn read_pin_resolves_latest_without_fetch_side_effects() {
        let b = bcast(1);
        b.push(vec![1.0; 4]);
        let pin = b.pin_read();
        assert_eq!(pin.version(), 1);
        assert_eq!(pin[0], 1.0, "guard derefs to the snapshot");
        assert_eq!(pin.value()[3], 1.0);
        let s = b.stats();
        assert_eq!(
            s.fetches, 0,
            "pin_read is server-side: no worker fetch, no cache traffic"
        );
    }

    #[test]
    fn pinned_read_version_never_recycled_while_training_advances() {
        // The serving contract: a reader pins a version, then training
        // pushes many new versions and retires all sample references to
        // the pinned one. The reader's snapshot must stay live and
        // bit-identical until the guard drops.
        let b = bcast(1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.record_use(&[0], v1);
        let pin = b.pin_read();
        assert_eq!(pin.version(), v1);
        for i in 2..30 {
            let v = b.push(vec![i as f64; 4]);
            b.record_use(&[0], v); // rc on v1 long gone; only the pin holds it
            assert_eq!(
                b.stats().versions_live,
                2,
                "pinned v1 + latest must both live at step {i}"
            );
            assert_eq!(*pin.value(), vec![1.0; 4], "snapshot bit-identical");
        }
        drop(pin);
        assert_eq!(
            b.stats().versions_live,
            1,
            "dropping the last reader reclaims the version at once"
        );
        // And the reclaimed buffer is recyclable: the next snapshot push
        // reuses it instead of allocating.
        let before = b.stats().recycled_buffers;
        b.push_snapshot(&[9.0; 4]);
        assert_eq!(b.stats().recycled_buffers, before + 1);
    }

    #[test]
    fn try_pin_read_at_rejects_pruned_and_unknown_versions() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.record_use(&[0], v1);
        let v2 = b.push(vec![2.0; 4]);
        b.record_use(&[0], v2); // v1 pruned
        assert!(b.try_pin_read_at(v1).is_none(), "pruned version");
        assert!(b.try_pin_read_at(99).is_none(), "unknown version");
        let pin = b.try_pin_read_at(v2).expect("latest is live");
        assert_eq!(pin[0], 2.0);
    }

    #[test]
    fn concurrent_read_pins_share_a_version_safely() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.record_use(&[0], v1);
        let p1 = b.pin_read();
        let p2 = b.try_pin_read_at(v1).expect("pinned version stays live");
        let v2 = b.push(vec![2.0; 4]);
        b.record_use(&[0], v2);
        drop(p1);
        assert_eq!(b.stats().versions_live, 2, "second pin still holds v1");
        assert_eq!(p2[0], 1.0);
        drop(p2);
        assert_eq!(b.stats().versions_live, 1);
    }

    #[test]
    fn id_ship_bytes_is_linear_in_batch() {
        assert_eq!(AsyncBcast::<Vec<f64>>::id_ship_bytes(0), 8);
        assert_eq!(AsyncBcast::<Vec<f64>>::id_ship_bytes(100), 808);
    }

    #[test]
    fn history_broadcast_ships_sparse_deltas() {
        // Broadcast payloads can carry sparse gradient deltas: the charged
        // fetch is the delta's sparse wire size (Payload::encoded_len),
        // not the embedding dimension.
        use async_linalg::{GradDelta, SparseVec};
        let sv = SparseVec::from_pairs(vec![(2, 1.0), (40, -2.0), (900, 0.5)], 1000).unwrap();
        let delta = GradDelta::Sparse(sv);
        let wire = delta.encoded_len();
        let b: AsyncBcast<GradDelta> = AsyncBcast::new(0, delta, 1);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        let v = h.value(&mut ctx);
        assert!(v.is_sparse());
        assert_eq!(v.nnz(), 3);
        let s = b.stats();
        assert_eq!(s.fetched_bytes, wire);
        assert!(
            s.fetched_bytes < 8 * 1000 / 10,
            "sparse payload ({} B) must undercut the dense encoding",
            s.fetched_bytes
        );
    }

    fn sparse_delta(pairs: &[(u32, f64)], dim: usize) -> GradDelta {
        GradDelta::Sparse(
            async_linalg::SparseVec::from_pairs(pairs.to_vec(), dim).expect("valid pairs"),
        )
    }

    /// An incremental model broadcast over `dim` dense coordinates with a
    /// ring of `cap` supports, pre-warmed into `ctx`'s cache at version 0.
    fn incr_bcast(dim: usize, cap: usize, ctx: &mut WorkerCtx) -> AsyncBcast<Vec<f64>> {
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(7, vec![0.0; dim], 0);
        b.enable_incremental(cap);
        b.handle().value_incremental(ctx); // cold full fetch of v0
        b
    }

    #[test]
    fn incremental_fetch_ships_patch_and_reconstructs_exactly() {
        let dim = 100;
        let mut ctx = WorkerCtx::new(0);
        let b = incr_bcast(dim, 8, &mut ctx);
        let dense_bytes = (vec![0.0f64; dim]).encoded_len();
        assert_eq!(b.stats().fetched_bytes, dense_bytes);
        // Three sparse updates; the worker skips two versions.
        let mut w = vec![0.0; dim];
        let updates = [
            sparse_delta(&[(3, 1.5), (40, -2.0)], dim),
            sparse_delta(&[(3, 0.25), (77, 9.0)], dim),
            sparse_delta(&[(12, -1.0)], dim),
        ];
        for u in &updates {
            u.axpy_into(1.0, &mut w);
            b.push_snapshot_diff(&w, u);
        }
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice(), "bit-exact reconstruction");
        let s = b.stats();
        assert_eq!(s.incremental_fetches, 1);
        // Union support {3, 12, 40, 77} -> 4 entries.
        assert_eq!(s.incremental_bytes, 16 + 12 * 4);
        assert_eq!(s.fetched_bytes, dense_bytes + 16 + 12 * 4);
        // The patched value is cached: resolving again is free.
        b.handle().value_incremental(&mut ctx);
        assert_eq!(b.stats().fetches, 2);
    }

    #[test]
    fn fresh_worker_takes_the_full_snapshot_fallback() {
        let dim = 50;
        let mut warm = WorkerCtx::new(0);
        let b = incr_bcast(dim, 8, &mut warm);
        b.push_snapshot_diff(&vec![1.0; dim], &sparse_delta(&[(0, 1.0)], dim));
        // A worker with an empty cache (a churn revival) has no base.
        let mut fresh = WorkerCtx::new(1);
        let v = b.handle().value_incremental(&mut fresh);
        assert_eq!(v[1], 1.0);
        assert_eq!(b.stats().incremental_fetches, 0);
    }

    #[test]
    fn gap_beyond_ring_falls_back_to_snapshot() {
        let dim = 50;
        let mut ctx = WorkerCtx::new(0);
        let b = incr_bcast(dim, 2, &mut ctx);
        let mut w = vec![0.0; dim];
        for k in 0..5u32 {
            let u = sparse_delta(&[(k, 1.0)], dim);
            u.axpy_into(1.0, &mut w);
            b.push_snapshot_diff(&w, &u);
        }
        // Gap 0 -> 5 spans versions 1..=5 but the ring only holds {4, 5}.
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice());
        assert_eq!(b.stats().incremental_fetches, 0);
        // From the now-cached v5, a one-step gap patches incrementally.
        let u = sparse_delta(&[(9, 2.0)], dim);
        u.axpy_into(1.0, &mut w);
        b.push_snapshot_diff(&w, &u);
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice());
        assert_eq!(b.stats().incremental_fetches, 1);
    }

    #[test]
    fn dense_support_version_blocks_the_span() {
        let dim = 50;
        let mut ctx = WorkerCtx::new(0);
        let b = incr_bcast(dim, 8, &mut ctx);
        let mut w = vec![0.0; dim];
        w[0] = 1.0;
        b.push_snapshot_diff(&w, &sparse_delta(&[(0, 1.0)], dim));
        // A full-support update (e.g. a ridge shrink) declares dense.
        for wi in w.iter_mut() {
            *wi += 0.5;
        }
        b.push_snapshot_diff(&w, &GradDelta::Dense(vec![0.5; dim]));
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice());
        assert_eq!(
            b.stats().incremental_fetches,
            0,
            "a dense-change version must force the snapshot fallback"
        );
    }

    #[test]
    fn oversized_patch_falls_back_to_snapshot() {
        // Patch wire (16 + 12·nnz) must undercut the dense wire (8 + 8·dim);
        // with dim 10 and a 7-coordinate change it cannot.
        let dim = 10;
        let mut ctx = WorkerCtx::new(0);
        let b = incr_bcast(dim, 8, &mut ctx);
        let pairs: Vec<(u32, f64)> = (0..7).map(|i| (i as u32, 1.0)).collect();
        let u = sparse_delta(&pairs, dim);
        let mut w = vec![0.0; dim];
        u.axpy_into(1.0, &mut w);
        b.push_snapshot_diff(&w, &u);
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice());
        assert_eq!(b.stats().incremental_fetches, 0);
    }

    #[test]
    fn sharded_push_matches_serial_push_exactly() {
        let dim = 1000;
        let pool = async_linalg::ShardPool::new(4);
        let serial: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
        let sharded: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
        serial.enable_incremental(4);
        sharded.enable_incremental(4);
        let mut ctx_a = WorkerCtx::new(0);
        let mut ctx_b = WorkerCtx::new(0);
        let mut w: Vec<f64> = vec![0.0; dim];
        for k in 0..6u32 {
            w[(k * 31) as usize % dim] += 1.5 * k as f64;
            let support = [(k * 31) % dim as u32];
            let va = serial.push_snapshot_with_support(&w, Some(&support));
            let vb = sharded.push_snapshot_sharded(&w, Some(&support), &pool);
            assert_eq!(va, vb);
            let a = serial.handle().value_incremental(&mut ctx_a);
            let b = sharded.handle().value_incremental(&mut ctx_b);
            assert_eq!(a.as_slice(), b.as_slice(), "push {k}");
        }
        let (sa, sb) = (serial.stats(), sharded.stats());
        assert_eq!(sa.fetched_bytes, sb.fetched_bytes);
        assert_eq!(sa.incremental_fetches, sb.incremental_fetches);
        assert_eq!(sa.live_bytes, sb.live_bytes);
    }

    #[test]
    fn support_slice_push_matches_delta_push() {
        let dim = 40;
        let a: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
        a.enable_incremental(4);
        b.enable_incremental(4);
        let mut ctx_a = WorkerCtx::new(0);
        let mut ctx_b = WorkerCtx::new(0);
        a.handle().value_incremental(&mut ctx_a);
        b.handle().value_incremental(&mut ctx_b);
        let delta = sparse_delta(&[(3, 1.0), (17, -2.0)], dim);
        let mut w = vec![0.0; dim];
        delta.axpy_into(1.0, &mut w);
        a.push_snapshot_diff(&w, &delta);
        b.push_snapshot_with_support(&w, Some(&[3, 17]));
        let va = a.handle().value_incremental(&mut ctx_a);
        let vb = b.handle().value_incremental(&mut ctx_b);
        assert_eq!(va.as_slice(), vb.as_slice());
        assert_eq!(a.stats().incremental_fetches, 1);
        assert_eq!(b.stats().incremental_fetches, 1);
    }

    #[test]
    fn push_snapshot_recycles_pruned_buffers() {
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; 32], 0);
        // No samples pin history, so each push prunes its predecessor; the
        // pruned buffer must be reused from the third push on (the first
        // push finds no free buffer, the prune of v0 stocks the pool).
        for k in 0..6 {
            b.push_snapshot(&vec![k as f64; 32]);
        }
        let s = b.stats();
        assert_eq!(s.versions_live, 1);
        assert!(
            s.recycled_buffers >= 4,
            "pushes should recycle pruned snapshot buffers: {s:?}"
        );
    }

    #[test]
    fn incremental_disabled_behaves_exactly_like_value() {
        let dim = 20;
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
        let mut ctx = WorkerCtx::new(0);
        b.handle().value_incremental(&mut ctx);
        let mut w = vec![0.0; dim];
        w[3] = 2.0;
        b.push_snapshot_diff(&w, &sparse_delta(&[(3, 2.0)], dim));
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice());
        let s = b.stats();
        assert_eq!(s.incremental_fetches, 0, "ring disabled: full fetches only");
        assert_eq!(s.fetches, 2);
        assert_eq!(s.fetched_bytes, 2 * (8 + 8 * dim as u64));
    }

    #[test]
    fn wire_plans_track_value_incremental_exactly() {
        // Two identically driven broadcasts: one resolved in process, one
        // planned against a driver-side mirror and applied on a "remote"
        // worker ctx. Values, traffic stats, and cache shapes must agree
        // at every step, and the plan kinds must follow the same
        // patch/snapshot decisions.
        let dim = 120;
        let local: AsyncBcast<Vec<f64>> = AsyncBcast::new(7, vec![0.0; dim], 0);
        let wired: AsyncBcast<Vec<f64>> = AsyncBcast::new(7, vec![0.0; dim], 0);
        local.enable_incremental(4);
        wired.enable_incremental(4);
        let mut ctx = WorkerCtx::new(0); // in-process worker
        let mut mirror = WorkerCtx::new(0); // driver-side mirror
        let mut remote = WorkerCtx::new(0); // networked worker
        let mut w = vec![0.0; dim];
        let mut saw_patch = false;
        let mut saw_snapshot = false;
        for k in 0..10u32 {
            let u = if k == 4 {
                // One dense update mid-stream forces a snapshot fallback.
                for wi in w.iter_mut() {
                    *wi += 0.25;
                }
                GradDelta::Dense(vec![0.25; dim])
            } else {
                let u = sparse_delta(&[(k % dim as u32, 1.0), (k * 7 % dim as u32, -0.5)], dim);
                u.axpy_into(1.0, &mut w);
                u
            };
            local.push_snapshot_diff(&w, &u);
            wired.push_snapshot_diff(&w, &u);
            let expect = local.handle().value_incremental(&mut ctx);
            let plan = wired.handle().wire_plan(&mut mirror);
            match &plan {
                WirePlan::Patch { .. } => saw_patch = true,
                WirePlan::Snapshot { .. } => saw_snapshot = true,
                WirePlan::Cached { .. } => {}
                WirePlan::QPatch { .. } => panic!("quantization is off"),
            }
            let got = plan.apply(&mut remote, wired.id());
            assert_eq!(got.as_slice(), expect.as_slice(), "push {k}");
            assert_eq!(ctx.cache_len(), mirror.cache_len(), "push {k}");
            assert_eq!(ctx.cache_len(), remote.cache_len(), "push {k}");
            // Re-planning the same version is a cache hit on the mirror.
            let again = wired.handle().wire_plan(&mut mirror);
            assert!(matches!(again, WirePlan::Cached { .. }), "push {k}");
            assert_eq!(
                again.apply(&mut remote, wired.id()).as_slice(),
                expect.as_slice()
            );
        }
        assert!(saw_patch && saw_snapshot, "both plan kinds exercised");
        let (a, b) = (local.stats(), wired.stats());
        assert_eq!(a.fetches, b.fetches);
        assert_eq!(a.fetched_bytes, b.fetched_bytes);
        assert_eq!(a.incremental_fetches, b.incremental_fetches);
        assert_eq!(a.incremental_bytes, b.incremental_bytes);
        // The mirror charged the same wire bytes the in-process worker did.
        assert_eq!(ctx.take_charges().0, mirror.take_charges().0);
    }

    #[test]
    fn quantized_patches_track_wire_plans_bitwise_and_stay_near_target() {
        // Same twin-broadcast drill as above, but with diff-quantized
        // patches: the in-process resolution, the driver mirror, and the
        // remote apply must still agree bitwise (on the *quantized*
        // trajectory), the quantized counters must advance, and the
        // reconstruction must stay within the per-patch error bound of the
        // exact model.
        for quant in [Quant::I8, Quant::F16] {
            let dim = 120;
            let local: AsyncBcast<Vec<f64>> = AsyncBcast::new(7, vec![0.0; dim], 0);
            let wired: AsyncBcast<Vec<f64>> = AsyncBcast::new(7, vec![0.0; dim], 0);
            local.enable_incremental(4);
            wired.enable_incremental(4);
            local.set_patch_quant(quant);
            wired.set_patch_quant(quant);
            let mut ctx = WorkerCtx::new(0);
            let mut mirror = WorkerCtx::new(0);
            let mut remote = WorkerCtx::new(0);
            let mut w = vec![0.0; dim];
            let mut saw_qpatch = false;
            for k in 0..10u32 {
                let u = sparse_delta(
                    &[
                        (k % dim as u32, 1.0 + f64::from(k)),
                        (k * 7 % dim as u32, -0.5),
                    ],
                    dim,
                );
                u.axpy_into(1.0, &mut w);
                local.push_snapshot_diff(&w, &u);
                wired.push_snapshot_diff(&w, &u);
                let expect = local.handle().value_incremental(&mut ctx);
                let plan = wired.handle().wire_plan(&mut mirror);
                if let WirePlan::QPatch {
                    scale,
                    ref codes,
                    ref indices,
                    ..
                } = plan
                {
                    saw_qpatch = true;
                    assert!(scale.is_finite() && scale >= 0.0);
                    assert_eq!(codes.len(), indices.len());
                    assert_eq!(codes.quant(), quant);
                }
                let got = plan.apply(&mut remote, wired.id());
                assert_eq!(got.as_slice(), expect.as_slice(), "{quant:?} push {k}");
                // Per-coordinate error of the quantized trajectory vs the
                // exact model: bounded by the format's relative error times
                // each patch's scale; with these O(10) magnitudes a loose
                // absolute bound suffices and catches scale/code mixups.
                let tol = match quant {
                    Quant::I8 => 0.5,
                    _ => 0.05,
                };
                for (gi, wi) in got.iter().zip(w.iter()) {
                    assert!((gi - wi).abs() <= tol, "{quant:?} push {k}: {gi} vs {wi}");
                }
            }
            assert!(saw_qpatch, "{quant:?}: quantized patches exercised");
            let (a, b) = (local.stats(), wired.stats());
            assert_eq!(a.quantized_patches, b.quantized_patches);
            assert_eq!(a.quantized_patch_bytes, b.quantized_patch_bytes);
            assert!(a.quantized_patches > 0);
            // Quantized patches are cheaper on the wire than exact ones
            // would have been: bytes per patch < exact patch formula.
            assert!(a.quantized_patch_bytes < a.quantized_patches * patch_wire_bytes(2));
            assert_eq!(a.fetched_bytes, b.fetched_bytes);
        }
    }

    #[test]
    fn exact_patch_quant_is_the_default_and_changes_nothing() {
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(1, vec![0.0; 8], 0);
        b.enable_incremental(4);
        let mut ctx = WorkerCtx::new(0);
        let mut w = vec![0.0; 8];
        for k in 0..4u32 {
            let u = sparse_delta(&[(k % 8, 2.0)], 8);
            u.axpy_into(1.0, &mut w);
            b.push_snapshot_diff(&w, &u);
            let got = b.handle().value_incremental(&mut ctx);
            assert_eq!(got.as_slice(), w.as_slice());
        }
        let s = b.stats();
        assert!(s.incremental_fetches > 0);
        assert_eq!(s.quantized_patches, 0);
        assert_eq!(s.quantized_patch_bytes, 0);
    }

    #[test]
    fn wire_plan_at_resolves_history_for_fresh_and_warm_workers() {
        let b = bcast(4);
        b.push(vec![1.0; 4]); // v1
        b.record_use(&[0, 1], 1);
        b.push(vec![2.0; 4]); // v2
        let h = b.handle();
        let mut mirror = WorkerCtx::new(0);
        let mut remote = WorkerCtx::new(0);
        // Fresh worker: historical v1 ships as a snapshot...
        let plan = h.wire_plan_at(&mut mirror, 1);
        assert!(matches!(plan, WirePlan::Snapshot { version: 1, .. }));
        assert_eq!(plan.apply(&mut remote, h.id())[0], 1.0);
        // ...and planning it again is a cache hit.
        let plan = h.wire_plan_at(&mut mirror, 1);
        assert!(matches!(plan, WirePlan::Cached { version: 1, .. }));
        assert_eq!(plan.apply(&mut remote, h.id())[0], 1.0);
        assert_eq!(b.stats().fetches, 1);
    }

    #[test]
    fn reseated_table_continues_version_numbering() {
        // The resume path: a broadcast seated at base 100 numbers its
        // versions from there, treats never-recorded samples as implicit
        // references to the base, and rejects reads below the base.
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new_at(0, vec![5.0; 4], 3, 100);
        assert_eq!(b.latest_version(), 100);
        assert_eq!(
            b.version_for_index(2),
            100,
            "implicit reference is the base"
        );
        let v = b.push(vec![6.0; 4]);
        assert_eq!(v, 101);
        b.record_use(&[0, 1], v);
        // Index 2 still implicitly references the base: it must stay live.
        assert_eq!(b.stats().versions_live, 2);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        assert_eq!(h.value_at(&mut ctx, b.version_for_index(2))[0], 5.0);
        assert!(b.try_pin_read_at(99).is_none(), "below the base");
        let pin = b.pin_read();
        assert_eq!(pin.version(), 101);
        drop(pin);
        // Once the whole universe is explicit the base is reclaimed.
        b.record_use(&[2], v);
        assert_eq!(b.stats().versions_live, 1);
    }

    #[test]
    fn reseated_table_prunes_and_recycles_like_a_fresh_one() {
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new_at(0, vec![0.0; 32], 0, 40);
        for k in 0..6 {
            assert_eq!(b.push_snapshot(&vec![k as f64; 32]), 41 + k);
        }
        let s = b.stats();
        assert_eq!(s.versions_live, 1);
        assert!(s.recycled_buffers >= 4, "recycling survives the re-seat");
    }

    #[test]
    fn reseated_incremental_patches_reconstruct_exactly() {
        let dim = 100;
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new_at(7, vec![1.0; dim], 0, 64);
        b.enable_incremental(8);
        let mut ctx = WorkerCtx::new(0);
        b.handle().value_incremental(&mut ctx); // cold fetch of the base
        let mut w = vec![1.0; dim];
        for k in 0..3u32 {
            let u = sparse_delta(&[(3 + k, 0.5)], dim);
            u.axpy_into(1.0, &mut w);
            b.push_snapshot_diff(&w, &u);
        }
        let got = b.handle().value_incremental(&mut ctx);
        assert_eq!(got.as_slice(), w.as_slice(), "bit-exact across the base");
        assert_eq!(b.stats().incremental_fetches, 1);
    }

    #[test]
    #[should_panic(expected = "pruned")]
    fn resolving_pruned_version_panics() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        b.push(vec![1.0; 4]);
        b.record_use(&[0], 1); // v0 pruned
        let mut ctx = WorkerCtx::new(0);
        b.handle().value_at(&mut ctx, 0);
    }
}
