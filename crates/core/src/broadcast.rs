//! The `ASYNCbroadcaster` (§4.3): history broadcast.
//!
//! Variance-reduced methods (SAGA/ASAGA) need, for every sampled row `j`,
//! the model parameters as they were when `j` was *last* sampled. Classic
//! Spark broadcast would have to ship an ever-growing table of past model
//! vectors with every task — the overhead the paper calls out as the reason
//! Mllib has no SAGA. The `ASYNCbroadcaster` instead:
//!
//! * keeps the *server-side* history of broadcast versions;
//! * ships only version **IDs** with each task (8 bytes per sample);
//! * lets workers resolve IDs against their local cache, fetching a missed
//!   version from the server once and caching it;
//! * reference-counts versions by the per-sample version map and prunes
//!   history that no sample can reference any more, bounding memory on the
//!   server and (via eviction watermarks) on the workers.
//!
//! [`AsyncBcast::push`] is the paper's `AC.ASYNCbroadcast(w)`;
//! [`HistoryHandle::value`] is `w_br.value` and
//! [`HistoryHandle::value_at`] is `w_br.value(index)` from Algorithm 4.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sparklet::{Payload, WorkerCtx};

/// Counters describing a history broadcast's traffic and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoryStats {
    /// Versions pushed so far.
    pub versions_pushed: u64,
    /// Versions currently retained on the server.
    pub versions_live: u64,
    /// Bytes currently retained on the server.
    pub live_bytes: u64,
    /// Worker cache misses served by the server.
    pub fetches: u64,
    /// Bytes shipped to workers for those misses.
    pub fetched_bytes: u64,
}

struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    rc: u64,
    /// In-flight pins: tasks computing against this version hold a pin
    /// from submission to result consumption, so the version outlives the
    /// gap between issue and the `record_use` that references it.
    pins: u64,
}

struct VersionTable<T> {
    versions: Vec<Option<Entry<T>>>,
    index_version: HashMap<u64, u64>,
    /// Sample universe size: once every index has an explicit entry, the
    /// base version can no longer be implicitly referenced.
    n_indices: u64,
    min_live: u64,
    live_count: u64,
    live_bytes: u64,
}

impl<T> VersionTable<T> {
    fn latest(&self) -> u64 {
        (self.versions.len() - 1) as u64
    }

    fn base_pinned(&self) -> bool {
        (self.index_version.len() as u64) < self.n_indices
    }

    fn prunable(&self, v: u64) -> bool {
        if v == self.latest() {
            return false;
        }
        if v == 0 && self.base_pinned() {
            return false;
        }
        match &self.versions[v as usize] {
            Some(e) => e.rc == 0 && e.pins == 0,
            None => false,
        }
    }

    fn try_prune(&mut self, v: u64) {
        if self.prunable(v) {
            if let Some(e) = self.versions[v as usize].take() {
                self.live_count -= 1;
                self.live_bytes -= e.bytes;
            }
        }
        // Advance the live watermark past pruned slots.
        while (self.min_live as usize) < self.versions.len()
            && self.versions[self.min_live as usize].is_none()
        {
            self.min_live += 1;
        }
    }
}

/// A versioned history broadcast. Cheap to clone; clones share the store.
pub struct AsyncBcast<T: Payload + Send + Sync + 'static> {
    id: u64,
    table: Arc<RwLock<VersionTable<T>>>,
    fetches: Arc<AtomicU64>,
    fetched_bytes: Arc<AtomicU64>,
    pushed: Arc<AtomicU64>,
}

impl<T: Payload + Send + Sync + 'static> Clone for AsyncBcast<T> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            table: Arc::clone(&self.table),
            fetches: Arc::clone(&self.fetches),
            fetched_bytes: Arc::clone(&self.fetched_bytes),
            pushed: Arc::clone(&self.pushed),
        }
    }
}

impl<T: Payload + Send + Sync + 'static> AsyncBcast<T> {
    /// Creates the broadcast with its base value (version 0). `n_indices`
    /// is the sample universe size (`n` in SAGA): it controls when version
    /// 0 stops being implicitly referenced by never-sampled rows.
    pub fn new(id: u64, initial: T, n_indices: u64) -> Self {
        let bytes = initial.encoded_len();
        let table = VersionTable {
            versions: vec![Some(Entry {
                value: Arc::new(initial),
                bytes,
                rc: 0,
                pins: 0,
            })],
            index_version: HashMap::new(),
            n_indices,
            min_live: 0,
            live_count: 1,
            live_bytes: bytes,
        };
        Self {
            id,
            table: Arc::new(RwLock::new(table)),
            fetches: Arc::new(AtomicU64::new(0)),
            fetched_bytes: Arc::new(AtomicU64::new(0)),
            pushed: Arc::new(AtomicU64::new(1)),
        }
    }

    /// This broadcast's id (unique within one context).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Publishes a new version of the value; returns its version number.
    /// Only the 8-byte version ID travels with subsequent tasks.
    pub fn push(&self, value: T) -> u64 {
        let bytes = value.encoded_len();
        let mut t = self.table.write();
        let prev_latest = t.latest();
        t.versions.push(Some(Entry {
            value: Arc::new(value),
            bytes,
            rc: 0,
            pins: 0,
        }));
        t.live_count += 1;
        t.live_bytes += bytes;
        // The previous latest loses its "latest" pin; prune if unreferenced.
        t.try_prune(prev_latest);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        t.latest()
    }

    /// Latest version number.
    pub fn latest_version(&self) -> u64 {
        self.table.read().latest()
    }

    /// The version sample `idx` last saw (version 0 if never recorded) —
    /// the paper's "ID of the previously broadcast variable for the
    /// specified index".
    pub fn version_for_index(&self, idx: u64) -> u64 {
        self.table
            .read()
            .index_version
            .get(&idx)
            .copied()
            .unwrap_or(0)
    }

    /// Records that samples `indices` have now been processed at `version`
    /// (SAGA's `update table` step), updating reference counts and pruning
    /// versions that no sample references any more.
    pub fn record_use(&self, indices: &[u64], version: u64) {
        let mut t = self.table.write();
        debug_assert!(
            (version as usize) < t.versions.len(),
            "recording unknown version"
        );
        for &idx in indices {
            debug_assert!(idx < t.n_indices, "index {idx} out of declared universe");
            let old = t.index_version.insert(idx, version);
            if let Some(e) = t.versions[version as usize].as_mut() {
                e.rc += 1;
            }
            match old {
                Some(o) => {
                    if let Some(e) = t.versions[o as usize].as_mut() {
                        e.rc -= 1;
                    }
                    t.try_prune(o);
                }
                None => {
                    // The index previously referenced version 0 implicitly;
                    // once the whole universe is explicit, v0 may go.
                    if !t.base_pinned() {
                        t.try_prune(0);
                    }
                }
            }
        }
    }

    /// Pins `version` against pruning while a task computed at it is in
    /// flight. Call at submission; pair with [`AsyncBcast::unpin`] when the
    /// task's result is consumed (or known lost).
    ///
    /// # Panics
    /// Panics if `version` is unknown or already pruned.
    pub fn pin(&self, version: u64) {
        let mut t = self.table.write();
        t.versions[version as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("pin: history version {version} already pruned"))
            .pins += 1;
    }

    /// Releases one pin on `version`, pruning it if nothing references it
    /// any more.
    pub fn unpin(&self, version: u64) {
        let mut t = self.table.write();
        if let Some(e) = t.versions[version as usize].as_mut() {
            debug_assert!(
                e.pins > 0,
                "unpin without matching pin on version {version}"
            );
            e.pins = e.pins.saturating_sub(1);
        }
        t.try_prune(version);
    }

    /// Bytes of version-ID metadata shipped with a task carrying `samples`
    /// sampled rows (one 8-byte ID each, plus the current version ID).
    pub fn id_ship_bytes(samples: usize) -> u64 {
        8 * (samples as u64 + 1)
    }

    /// A handle capturing the latest version and the live watermark, for
    /// capture in task closures.
    pub fn handle(&self) -> HistoryHandle<T> {
        let t = self.table.read();
        HistoryHandle {
            bcast_id: self.id,
            version: t.latest(),
            min_live: t.min_live,
            table: Arc::clone(&self.table),
            fetches: Arc::clone(&self.fetches),
            fetched_bytes: Arc::clone(&self.fetched_bytes),
        }
    }

    /// Current traffic/memory counters.
    pub fn stats(&self) -> HistoryStats {
        let t = self.table.read();
        HistoryStats {
            versions_pushed: self.pushed.load(Ordering::Relaxed),
            versions_live: t.live_count,
            live_bytes: t.live_bytes,
            fetches: self.fetches.load(Ordering::Relaxed),
            fetched_bytes: self.fetched_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A worker-side view of an [`AsyncBcast`] at a fixed version, captured in
/// task closures. Resolution order: local cache, then a (charged) fetch
/// from the server store.
pub struct HistoryHandle<T: Payload + Send + Sync + 'static> {
    bcast_id: u64,
    version: u64,
    min_live: u64,
    table: Arc<RwLock<VersionTable<T>>>,
    fetches: Arc<AtomicU64>,
    fetched_bytes: Arc<AtomicU64>,
}

impl<T: Payload + Send + Sync + 'static> Clone for HistoryHandle<T> {
    fn clone(&self) -> Self {
        Self {
            bcast_id: self.bcast_id,
            version: self.version,
            min_live: self.min_live,
            table: Arc::clone(&self.table),
            fetches: Arc::clone(&self.fetches),
            fetched_bytes: Arc::clone(&self.fetched_bytes),
        }
    }
}

impl<T: Payload + Send + Sync + 'static> HistoryHandle<T> {
    /// The version this handle was created at (the task's model version).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Resolves the handle's own version — `w_br.value` in Algorithm 4.
    pub fn value(&self, ctx: &mut WorkerCtx) -> Arc<T> {
        self.value_at(ctx, self.version)
    }

    /// Resolves an arbitrary historical `version` — `w_br.value(index)`
    /// in Algorithm 4, with the version looked up by the server at task
    /// submission.
    ///
    /// # Panics
    /// Panics if `version` was pruned, which means the caller failed to
    /// keep it referenced through [`AsyncBcast::record_use`].
    pub fn value_at(&self, ctx: &mut WorkerCtx, version: u64) -> Arc<T> {
        // Honour the server's watermark: cached versions below it can never
        // be requested again.
        ctx.cache_evict_below(self.bcast_id, self.min_live);
        let key = (self.bcast_id, version);
        if let Some(any) = ctx.cache_get(key) {
            return any.downcast::<T>().expect("history cache type mismatch");
        }
        let (value, bytes) = {
            let t = self.table.read();
            let entry = t.versions[version as usize]
                .as_ref()
                .unwrap_or_else(|| panic!("history version {version} was pruned while in use"));
            (Arc::clone(&entry.value), entry.bytes)
        };
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.fetched_bytes.fetch_add(bytes, Ordering::Relaxed);
        ctx.cache_put_fetched(
            key,
            value.clone() as Arc<dyn std::any::Any + Send + Sync>,
            bytes,
        );
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bcast(n: u64) -> AsyncBcast<Vec<f64>> {
        AsyncBcast::new(0, vec![0.0; 4], n)
    }

    #[test]
    fn push_advances_versions() {
        let b = bcast(10);
        assert_eq!(b.latest_version(), 0);
        assert_eq!(b.push(vec![1.0; 4]), 1);
        assert_eq!(b.push(vec![2.0; 4]), 2);
        assert_eq!(b.latest_version(), 2);
        assert_eq!(b.stats().versions_pushed, 3);
    }

    #[test]
    fn index_versions_default_to_base() {
        let b = bcast(10);
        assert_eq!(b.version_for_index(7), 0);
        b.push(vec![1.0; 4]);
        b.record_use(&[7], 1);
        assert_eq!(b.version_for_index(7), 1);
        assert_eq!(b.version_for_index(3), 0);
    }

    #[test]
    fn worker_cache_hit_after_first_fetch() {
        let b = bcast(10);
        b.push(vec![1.0; 4]);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        let v1 = h.value(&mut ctx);
        assert_eq!(v1[0], 1.0);
        assert_eq!(b.stats().fetches, 1);
        let _v2 = h.value(&mut ctx);
        assert_eq!(
            b.stats().fetches,
            1,
            "second access must hit the worker cache"
        );
        let (charged, _) = ctx.take_charges();
        assert_eq!(charged, (vec![1.0f64; 4]).encoded_len());
    }

    #[test]
    fn historical_versions_resolvable_until_released() {
        let b = bcast(4);
        b.push(vec![1.0; 4]); // v1
        b.record_use(&[0, 1], 1);
        b.push(vec![2.0; 4]); // v2
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        // Sample 0 last saw v1; sample 2 still implicitly at v0.
        assert_eq!(h.value_at(&mut ctx, b.version_for_index(0))[0], 1.0);
        assert_eq!(h.value_at(&mut ctx, b.version_for_index(2))[0], 0.0);
    }

    #[test]
    fn pruning_drops_unreferenced_versions() {
        let b = bcast(2);
        b.push(vec![1.0; 4]); // v1
        b.record_use(&[0, 1], 1); // all indices explicit: v0 released
        assert_eq!(b.stats().versions_live, 1, "only v1 lives: {:?}", b.stats());
        b.push(vec![2.0; 4]); // v2
                              // v1 still referenced by both indices.
        assert_eq!(b.stats().versions_live, 2);
        b.record_use(&[0], 2);
        // v1 still referenced by index 1.
        assert_eq!(b.stats().versions_live, 2);
        b.record_use(&[1], 2);
        // Now v1 unreferenced and not latest: pruned.
        assert_eq!(b.stats().versions_live, 1);
    }

    #[test]
    fn base_stays_pinned_while_universe_incomplete() {
        let b = bcast(3);
        b.push(vec![1.0; 4]);
        b.record_use(&[0, 1], 1); // index 2 never recorded: v0 pinned
        assert_eq!(b.stats().versions_live, 2);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        assert_eq!(h.value_at(&mut ctx, 0)[0], 0.0);
    }

    #[test]
    fn latest_is_never_pruned() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        for i in 0..5 {
            let v = b.push(vec![i as f64; 4]);
            b.record_use(&[0], v);
            let s = b.stats();
            assert_eq!(s.versions_live, 1, "only latest should live");
        }
    }

    #[test]
    fn eviction_watermark_trims_worker_caches() {
        let b = bcast(1);
        let mut ctx = WorkerCtx::new(0);
        // Fetch v0 into the cache.
        b.handle().value_at(&mut ctx, 0);
        assert_eq!(ctx.cache_len(), 1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.record_use(&[0], v1); // v0 pruned on the server
                                // A new handle carries the advanced watermark; resolving evicts v0.
        let h = b.handle();
        h.value(&mut ctx);
        assert_eq!(ctx.cache_len(), 1, "stale v0 evicted, v1 cached");
    }

    #[test]
    fn pins_protect_inflight_versions() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        let v1 = b.push(vec![1.0; 4]);
        b.pin(v1);
        b.record_use(&[0], v1);
        let v2 = b.push(vec![2.0; 4]);
        // Index 0 moves on to v2: v1's rc drops to 0, but the pin keeps it.
        b.record_use(&[0], v2);
        assert_eq!(b.stats().versions_live, 2, "pinned v1 must survive");
        b.unpin(v1);
        assert_eq!(b.stats().versions_live, 1, "unpinning releases v1");
    }

    #[test]
    fn id_ship_bytes_is_linear_in_batch() {
        assert_eq!(AsyncBcast::<Vec<f64>>::id_ship_bytes(0), 8);
        assert_eq!(AsyncBcast::<Vec<f64>>::id_ship_bytes(100), 808);
    }

    #[test]
    fn history_broadcast_ships_sparse_deltas() {
        // Broadcast payloads can carry sparse gradient deltas: the charged
        // fetch is the delta's sparse wire size (Payload::encoded_len),
        // not the embedding dimension.
        use async_linalg::{GradDelta, SparseVec};
        let sv = SparseVec::from_pairs(vec![(2, 1.0), (40, -2.0), (900, 0.5)], 1000).unwrap();
        let delta = GradDelta::Sparse(sv);
        let wire = delta.encoded_len();
        let b: AsyncBcast<GradDelta> = AsyncBcast::new(0, delta, 1);
        let h = b.handle();
        let mut ctx = WorkerCtx::new(0);
        let v = h.value(&mut ctx);
        assert!(v.is_sparse());
        assert_eq!(v.nnz(), 3);
        let s = b.stats();
        assert_eq!(s.fetched_bytes, wire);
        assert!(
            s.fetched_bytes < 8 * 1000 / 10,
            "sparse payload ({} B) must undercut the dense encoding",
            s.fetched_bytes
        );
    }

    #[test]
    #[should_panic(expected = "pruned")]
    fn resolving_pruned_version_panics() {
        let b = bcast(1);
        b.record_use(&[0], 0);
        b.push(vec![1.0; 4]);
        b.record_use(&[0], 1); // v0 pruned
        let mut ctx = WorkerCtx::new(0);
        b.handle().value_at(&mut ctx, 0);
    }
}
