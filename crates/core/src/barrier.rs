//! Barrier control (§3, §4.4, Listing 2).
//!
//! A [`BarrierFilter`] is the paper's `ASYNCbarrier` predicate: given the
//! current `STAT` snapshot it decides which *available* workers should
//! receive new tasks. The three classic strategies map directly:
//!
//! ```text
//! f: STAT.foreach(true)                      % ASP
//! f: STAT.foreach(Available_Workers == P)    % BSP
//! f: STAT.foreach(MAX_Staleness < s)         % SSP
//! ```
//!
//! plus the β-fraction rule the paper uses in its ASGD walk-through
//! ("submit only when the number of available workers is at least ⌊β·P⌋"),
//! a completion-time strategy in the spirit of adaptive-synchronous work
//! the paper cites, and fully custom user predicates.

use std::sync::Arc;

use async_cluster::WorkerId;

use crate::stat::StatSnapshot;

/// A user-supplied admission predicate over the `STAT` snapshot.
pub type BarrierPredicate = Arc<dyn Fn(&StatSnapshot, WorkerId) -> bool + Send + Sync>;

/// A barrier-control strategy. See the module docs.
#[derive(Clone)]
pub enum BarrierFilter {
    /// Asynchronous Parallel: every available worker proceeds immediately.
    Asp,
    /// Bulk Synchronous Parallel: workers proceed only when *all* alive
    /// workers are available (a full barrier between rounds).
    Bsp,
    /// Stale Synchronous Parallel with `slack`: a worker may proceed only
    /// while its task clock is within `slack` of the slowest alive worker.
    Ssp {
        /// Maximum allowed clock lead.
        slack: u64,
    },
    /// Proceed only when at least `⌊β · alive⌋` workers are available, then
    /// release all of them (the paper's bounded-staleness ASGD example).
    MinAvailableFraction {
        /// Required available fraction β ∈ (0, 1].
        beta: f64,
    },
    /// Exclude chronically slow workers: an available worker proceeds only
    /// if its average completion time is at most `factor` × the cluster
    /// median (workers with no history always proceed).
    CompletionTime {
        /// Slowness tolerance factor (≥ 1 makes sense).
        factor: f64,
    },
    /// Arbitrary user predicate over the snapshot and candidate worker.
    Custom(BarrierPredicate),
}

impl std::fmt::Debug for BarrierFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierFilter::Asp => write!(f, "Asp"),
            BarrierFilter::Bsp => write!(f, "Bsp"),
            BarrierFilter::Ssp { slack } => write!(f, "Ssp({slack})"),
            BarrierFilter::MinAvailableFraction { beta } => write!(f, "MinAvail({beta})"),
            BarrierFilter::CompletionTime { factor } => write!(f, "CompletionTime({factor})"),
            BarrierFilter::Custom(_) => write!(f, "Custom"),
        }
    }
}

impl BarrierFilter {
    /// Convenience constructor for [`BarrierFilter::Custom`].
    pub fn custom(f: impl Fn(&StatSnapshot, WorkerId) -> bool + Send + Sync + 'static) -> Self {
        BarrierFilter::Custom(Arc::new(f))
    }

    /// The workers that should receive tasks now: always a subset of the
    /// snapshot's available workers.
    pub fn select(&self, snap: &StatSnapshot) -> Vec<WorkerId> {
        let available = snap.available_workers();
        match self {
            BarrierFilter::Asp => available,
            BarrierFilter::Bsp => {
                if snap.available_count() == snap.alive_count() && snap.alive_count() > 0 {
                    available
                } else {
                    Vec::new()
                }
            }
            BarrierFilter::Ssp { slack } => {
                let Some(min_clock) = snap.min_clock() else {
                    return Vec::new();
                };
                available
                    .into_iter()
                    .filter(|&w| snap.workers[w].clock.saturating_sub(min_clock) <= *slack)
                    .collect()
            }
            BarrierFilter::MinAvailableFraction { beta } => {
                let needed = ((snap.alive_count() as f64) * beta).floor().max(1.0) as usize;
                if snap.available_count() >= needed {
                    available
                } else {
                    Vec::new()
                }
            }
            BarrierFilter::CompletionTime { factor } => {
                let Some(median) = snap.median_avg_completion() else {
                    return available;
                };
                let cutoff = median.mul_f64(*factor);
                available
                    .into_iter()
                    .filter(|&w| {
                        snap.workers[w].completed == 0 || snap.workers[w].avg_completion <= cutoff
                    })
                    .collect()
            }
            BarrierFilter::Custom(f) => available.into_iter().filter(|&w| f(snap, w)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat::StatTable;
    use async_cluster::{VDur, VTime};

    fn table(n: usize) -> StatTable {
        StatTable::new(n)
    }

    #[test]
    fn asp_selects_all_available() {
        let mut t = table(4);
        t.task_issued(2, 0, VTime::ZERO, 1);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(BarrierFilter::Asp.select(&snap), vec![0, 1, 3]);
    }

    #[test]
    fn bsp_requires_everyone_idle() {
        let mut t = table(3);
        t.task_issued(0, 0, VTime::ZERO, 1);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert!(BarrierFilter::Bsp.select(&snap).is_empty());
        t.task_completed(0, VTime::from_micros(1), VDur::from_micros(1));
        let snap = t.snapshot(VTime::from_micros(1), 1);
        assert_eq!(BarrierFilter::Bsp.select(&snap), vec![0, 1, 2]);
    }

    #[test]
    fn bsp_ignores_dead_workers() {
        let mut t = table(3);
        t.worker_died(2);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(BarrierFilter::Bsp.select(&snap), vec![0, 1]);
    }

    #[test]
    fn ssp_bounds_clock_lead() {
        let mut t = table(2);
        // Worker 0 completes 3 tasks; worker 1 none.
        for v in 0..3 {
            t.task_issued(0, v, VTime::ZERO, 1);
            t.task_completed(0, VTime::from_micros(v + 1), VDur::from_micros(1));
        }
        let snap = t.snapshot(VTime::from_micros(10), 3);
        // Lead is 3: slack 2 blocks worker 0, slack 3 allows it.
        assert_eq!(BarrierFilter::Ssp { slack: 2 }.select(&snap), vec![1]);
        assert_eq!(BarrierFilter::Ssp { slack: 3 }.select(&snap), vec![0, 1]);
    }

    #[test]
    fn min_available_fraction_gates_release() {
        let mut t = table(4);
        t.task_issued(0, 0, VTime::ZERO, 1);
        t.task_issued(1, 0, VTime::ZERO, 1);
        let snap = t.snapshot(VTime::ZERO, 0);
        // 2 of 4 available; β = 0.75 needs 3.
        assert!(BarrierFilter::MinAvailableFraction { beta: 0.75 }
            .select(&snap)
            .is_empty());
        assert_eq!(
            BarrierFilter::MinAvailableFraction { beta: 0.5 }.select(&snap),
            vec![2, 3]
        );
    }

    #[test]
    fn completion_time_excludes_slowpokes() {
        let mut t = table(3);
        // Worker speeds: 0 fast (10µs), 1 medium (20µs), 2 slow (200µs).
        for (w, svc) in [(0u64, 10u64), (1, 20), (2, 200)] {
            t.task_issued(w as usize, 0, VTime::ZERO, 1);
            t.task_completed(w as usize, VTime::from_micros(svc), VDur::from_micros(svc));
        }
        let snap = t.snapshot(VTime::from_micros(300), 3);
        // Median avg = 20µs; factor 2 → cutoff 40µs excludes worker 2.
        assert_eq!(
            BarrierFilter::CompletionTime { factor: 2.0 }.select(&snap),
            vec![0, 1]
        );
        // A worker with no history always passes.
        let mut t2 = table(2);
        t2.task_issued(0, 0, VTime::ZERO, 1);
        t2.task_completed(0, VTime::from_micros(100), VDur::from_micros(100));
        let snap2 = t2.snapshot(VTime::from_micros(100), 1);
        assert_eq!(
            BarrierFilter::CompletionTime { factor: 1.0 }.select(&snap2),
            vec![0, 1]
        );
    }

    #[test]
    fn ssp_unblocks_when_the_slowest_worker_dies() {
        let mut t = table(2);
        // Worker 0 races ahead to clock 4; worker 1 stays at 0.
        for v in 0..4 {
            t.task_issued(0, v, VTime::ZERO, 1);
            t.task_completed(0, VTime::from_micros(v + 1), VDur::from_micros(1));
        }
        let snap = t.snapshot(VTime::from_micros(10), 4);
        assert_eq!(
            BarrierFilter::Ssp { slack: 1 }.select(&snap),
            vec![1],
            "only the laggard proceeds; the leader is blocked"
        );
        // The laggard dies: min_clock is now over the alive set only, so
        // the slack predicate must release the leader (no deadlock).
        t.worker_died(1);
        let snap = t.snapshot(VTime::from_micros(11), 4);
        assert_eq!(BarrierFilter::Ssp { slack: 1 }.select(&snap), vec![0]);
    }

    #[test]
    fn ssp_admits_a_rejoiner_without_stalling_incumbents() {
        let mut t = table(2);
        for v in 0..6 {
            t.task_issued(0, v, VTime::ZERO, 1);
            t.task_completed(0, VTime::from_micros(v + 1), VDur::from_micros(1));
        }
        t.worker_died(1);
        t.worker_revived(1); // clock seeds at 6, the min alive
        let snap = t.snapshot(VTime::from_micros(10), 6);
        assert_eq!(
            BarrierFilter::Ssp { slack: 2 }.select(&snap),
            vec![0, 1],
            "seeded rejoiner neither stalls the leader nor is blocked"
        );
    }

    #[test]
    fn bsp_barrier_follows_the_alive_set_through_churn() {
        let mut t = table(3);
        t.worker_died(2);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(BarrierFilter::Bsp.select(&snap), vec![0, 1]);
        // Revival makes the barrier require the rejoiner again…
        t.worker_revived(2);
        t.task_issued(2, 0, VTime::ZERO, 1);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert!(
            BarrierFilter::Bsp.select(&snap).is_empty(),
            "rejoiner is busy: full barrier must hold"
        );
        t.task_completed(2, VTime::from_micros(1), VDur::from_micros(1));
        // …and a joined worker counts toward the barrier too.
        let w = t.add_worker();
        let snap = t.snapshot(VTime::from_micros(1), 1);
        assert_eq!(BarrierFilter::Bsp.select(&snap), vec![0, 1, 2, w]);
    }

    #[test]
    fn beta_fraction_reevaluates_over_the_current_alive_set() {
        let mut t = table(4);
        t.task_issued(0, 0, VTime::ZERO, 1);
        // 3 of 4 available; β = 0.8 needs ⌊0.8·4⌋ = 3: releases.
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(
            BarrierFilter::MinAvailableFraction { beta: 0.8 }.select(&snap),
            vec![1, 2, 3]
        );
        // A death shrinks the alive set: ⌊0.8·3⌋ = 2 ≤ 2 available.
        t.worker_died(3);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(
            BarrierFilter::MinAvailableFraction { beta: 0.8 }.select(&snap),
            vec![1, 2]
        );
        // A join grows it again: ⌊0.8·4⌋ = 3 > 2+1? available = {1,2,new}
        // = 3 ≥ 3: releases, including the newcomer.
        let w = t.add_worker();
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(
            BarrierFilter::MinAvailableFraction { beta: 0.8 }.select(&snap),
            vec![1, 2, w]
        );
    }

    #[test]
    fn completion_time_filter_admits_history_free_rejoiners() {
        let mut t = table(3);
        for (w, svc) in [(0usize, 10u64), (1, 20), (2, 21)] {
            t.task_issued(w, 0, VTime::ZERO, 1);
            t.task_completed(w, VTime::from_micros(svc), VDur::from_micros(svc));
        }
        // Worker 2 dies and revives: its completion history is wiped, so
        // the completion-time filter must treat it as a fresh worker.
        t.worker_died(2);
        t.worker_revived(2);
        let snap = t.snapshot(VTime::from_micros(100), 3);
        assert_eq!(
            BarrierFilter::CompletionTime { factor: 1.0 }.select(&snap),
            vec![0, 1, 2],
            "history-free rejoiner always proceeds"
        );
    }

    #[test]
    fn asp_tracks_membership_changes() {
        let mut t = table(2);
        t.worker_died(0);
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(BarrierFilter::Asp.select(&snap), vec![1]);
        t.worker_revived(0);
        let w = t.add_worker();
        let snap = t.snapshot(VTime::ZERO, 0);
        assert_eq!(BarrierFilter::Asp.select(&snap), vec![0, 1, w]);
    }

    #[test]
    fn custom_predicate_filters() {
        let t = table(4);
        let snap = t.snapshot(VTime::ZERO, 0);
        let even_only = BarrierFilter::custom(|_s, w| w % 2 == 0);
        assert_eq!(even_only.select(&snap), vec![0, 2]);
    }

    #[test]
    fn selection_is_subset_of_available() {
        // Property: whatever the filter, selected ⊆ available.
        let mut t = table(5);
        t.task_issued(1, 0, VTime::ZERO, 1);
        t.worker_died(4);
        let snap = t.snapshot(VTime::ZERO, 0);
        for f in [
            BarrierFilter::Asp,
            BarrierFilter::Bsp,
            BarrierFilter::Ssp { slack: 1 },
            BarrierFilter::MinAvailableFraction { beta: 0.4 },
            BarrierFilter::CompletionTime { factor: 1.5 },
        ] {
            for w in f.select(&snap) {
                assert!(
                    snap.workers[w].available,
                    "{f:?} selected busy/dead worker {w}"
                );
            }
        }
    }
}
