//! # async-core
//!
//! The ASYNC framework itself — the paper's primary contribution, built on
//! top of the `sparklet` engine exactly as the original is built on Spark.
//!
//! The paper introduces three components plus bookkeeping (§4):
//!
//! * **Bookkeeping structures** (§4.1): per-task worker id / staleness /
//!   mini-batch size and the per-worker `STAT` table (staleness,
//!   average-task-completion time, availability) — [`stat`].
//! * **ASYNCcoordinator** (§4.2): tags task results with worker attributes
//!   and maintains `STAT` — implemented inside [`context::AsyncContext`]'s
//!   result pump.
//! * **ASYNCbroadcaster** (§4.3): versioned broadcast that ships only IDs
//!   of previously broadcast model parameters; workers cache values locally
//!   and fetch misses from the server — [`broadcast`].
//! * **ASYNCscheduler** (§4.4): barrier control — a user-controllable
//!   filter over `STAT` deciding which available workers receive tasks
//!   (ASP, BSP, SSP, and custom strategies) — [`barrier`].
//!
//! The programming model (§5, Table 1) maps as:
//!
//! | paper                  | here                                            |
//! |------------------------|-------------------------------------------------|
//! | `ASYNCcontext`         | [`context::AsyncContext`]                       |
//! | `ASYNCreduce(f, AC)`   | [`context::AsyncContext::async_reduce`]         |
//! | `ASYNCaggregate`       | [`context::AsyncContext::async_aggregate`]      |
//! | `ASYNCbarrier(f,STAT)` | [`barrier::BarrierFilter`] passed to the above  |
//! | `ASYNCcollect()`       | [`context::AsyncContext::collect`]              |
//! | `ASYNCcollectAll()`    | [`context::AsyncContext::collect_all`]          |
//! | `ASYNCbroadcast(T)`    | [`context::AsyncContext::async_broadcast`]      |
//! | `AC.STAT`              | [`context::AsyncContext::stat`]                 |
//! | `AC.hasNext()`         | [`context::AsyncContext::has_next`]             |

#![deny(missing_docs)]

pub mod barrier;
pub mod broadcast;
pub mod context;
pub mod stat;

pub use barrier::BarrierFilter;
pub use broadcast::{AsyncBcast, HistoryHandle, HistoryStats, PatchCodes, ReadPin, WirePlan};
pub use context::{
    AsyncContext, DegradePolicy, RemoteRoutine, SubmitOpts, Tagged, TaskAttrs, WaveDirective,
};
pub use stat::{StatSnapshot, WorkerStat};
