//! Property tests of the incremental (version-diffed) broadcast: whatever
//! the gap pattern, ring size, mix of sparse/dense updates, or worker
//! churn, a resolved model must be **bit-identical** to the server's dense
//! snapshot of that version — the incremental path may only change the
//! bytes on the wire, never the values.

use async_core::AsyncBcast;
use async_linalg::{GradDelta, SparseVec};
use proptest::prelude::*;
use sparklet::WorkerCtx;

const DIM: usize = 400;

/// One generated step of the broadcast's life.
#[derive(Debug)]
enum Step {
    /// Push a sparse update touching these coordinates.
    Sparse(Vec<(u32, f64)>),
    /// Push a full-support update (forces the snapshot fallback over it).
    Dense(f64),
    /// Worker `w` resolves the latest version.
    Fetch(usize),
    /// Worker `w` loses its cache (a churn revival's fresh executor).
    Wipe(usize),
}

fn apply_update(w: &mut [f64], u: &GradDelta) {
    u.axpy_into(1.0, w);
}

fn run_schedule(ring: usize, steps: &[Step]) -> Result<(), String> {
    let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; DIM], 0);
    b.enable_incremental(ring);
    let mut server_w = vec![0.0; DIM];
    let mut workers: Vec<WorkerCtx> = (0..3).map(WorkerCtx::new).collect();
    for step in steps {
        match step {
            Step::Sparse(pairs) => {
                let u = GradDelta::Sparse(
                    SparseVec::from_pairs(pairs.clone(), DIM).expect("pairs within DIM"),
                );
                apply_update(&mut server_w, &u);
                b.push_snapshot_diff(&server_w, &u);
            }
            Step::Dense(a) => {
                let u = GradDelta::Dense(vec![*a; DIM]);
                apply_update(&mut server_w, &u);
                b.push_snapshot_diff(&server_w, &u);
            }
            Step::Fetch(w) => {
                let got = b.handle().value_incremental(&mut workers[*w]);
                prop_assert!(
                    got.as_slice() == server_w.as_slice(),
                    "worker {} diverged at version {}",
                    w,
                    b.latest_version()
                );
            }
            Step::Wipe(w) => {
                workers[*w] = WorkerCtx::new(*w);
            }
        }
    }
    // Every worker converges on a final fetch, whatever its history.
    for w in workers.iter_mut() {
        let got = b.handle().value_incremental(w);
        prop_assert_eq!(got.as_slice(), server_w.as_slice());
    }
    // Sanity: the machinery actually exercised both arms across the run
    // is not asserted per-case (some schedules are all-fallback), but the
    // stats must be internally consistent.
    let s = b.stats();
    prop_assert!(s.incremental_fetches <= s.fetches);
    prop_assert!(s.incremental_bytes <= s.fetched_bytes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn any_gap_pattern_reconstructs_bit_identically(
        ring in 1usize..12,
        raw in proptest::collection::vec(
            (0u8..10, 0usize..3, proptest::collection::vec((0u32..DIM as u32, -2.0..2.0f64), 1..12), -1.0..1.0f64),
            1..60,
        ),
    ) {
        let steps: Vec<Step> = raw
            .into_iter()
            .map(|(kind, w, pairs, a)| match kind {
                // Sparse pushes dominate so patches actually happen.
                0..=5 => Step::Sparse(pairs),
                6 => Step::Dense(a),
                7 => Step::Wipe(w),
                _ => Step::Fetch(w),
            })
            .collect();
        run_schedule(ring, &steps)?;
    }

    #[test]
    fn steady_one_step_gaps_patch_incrementally(ring in 2usize..8, rounds in 5usize..40) {
        // The solver steady state: one sparse update, then a fetch, looped.
        // Every fetch after the first must take the incremental path.
        let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; DIM], 0);
        b.enable_incremental(ring);
        let mut server_w = vec![0.0; DIM];
        let mut ctx = WorkerCtx::new(0);
        b.handle().value_incremental(&mut ctx);
        for r in 0..rounds {
            let i = (r * 37 % DIM) as u32;
            let u = GradDelta::Sparse(
                SparseVec::from_pairs(vec![(i, 1.0 + r as f64)], DIM).expect("in range"),
            );
            apply_update(&mut server_w, &u);
            b.push_snapshot_diff(&server_w, &u);
            let got = b.handle().value_incremental(&mut ctx);
            prop_assert_eq!(got.as_slice(), server_w.as_slice());
        }
        let s = b.stats();
        prop_assert_eq!(s.incremental_fetches, rounds as u64);
        // One-coordinate patches: 28 bytes each vs a 3208-byte snapshot.
        prop_assert_eq!(s.incremental_bytes, 28 * rounds as u64);
    }
}
