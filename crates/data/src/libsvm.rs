//! LIBSVM text-format IO.
//!
//! The paper's datasets ship in LIBSVM format (`label idx:val idx:val ...`
//! with 1-based indices). This module parses and writes that format so the
//! real `rcv1_full.binary` / `mnist8m` / `epsilon` files can be used in
//! place of the synthetic analogues.

use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use async_linalg::{CsrMatrix, Matrix, SparseVec};

use crate::dataset::Dataset;
use crate::{Error, Result};

/// Parses LIBSVM text. `dim` forces the feature dimension; pass `None` to
/// infer it from the largest index seen.
pub fn parse_str(name: &str, text: &str, dim: Option<usize>) -> Result<Dataset> {
    let mut labels = Vec::new();
    let mut rows: Vec<Vec<(u32, f64)>> = Vec::new();
    let mut max_idx = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let label_tok = parts.next().ok_or_else(|| Error::Parse {
            line: lineno + 1,
            msg: "missing label".to_string(),
        })?;
        let label: f64 = label_tok.parse().map_err(|_| Error::Parse {
            line: lineno + 1,
            msg: format!("bad label {label_tok:?}"),
        })?;
        let mut pairs = Vec::new();
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| Error::Parse {
                line: lineno + 1,
                msg: format!("expected idx:val, got {tok:?}"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| Error::Parse {
                line: lineno + 1,
                msg: format!("bad index {idx_s:?}"),
            })?;
            if idx == 0 {
                return Err(Error::Parse {
                    line: lineno + 1,
                    msg: "LIBSVM indices are 1-based; found 0".to_string(),
                });
            }
            let val: f64 = val_s.parse().map_err(|_| Error::Parse {
                line: lineno + 1,
                msg: format!("bad value {val_s:?}"),
            })?;
            max_idx = max_idx.max(idx);
            pairs.push(((idx - 1) as u32, val));
        }
        labels.push(label);
        rows.push(pairs);
    }

    let dim = match dim {
        Some(d) => {
            if max_idx > d {
                return Err(Error::Invalid(format!(
                    "declared dim {d} smaller than max index {max_idx}"
                )));
            }
            d
        }
        None => max_idx,
    };

    let sparse_rows = rows
        .into_iter()
        .map(|p| SparseVec::from_pairs(p, dim))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let m = CsrMatrix::from_rows(&sparse_rows, dim)?;
    Dataset::new(name, Matrix::Sparse(m), labels)
}

/// Reads a LIBSVM file from disk.
pub fn read_file(path: impl AsRef<Path>, dim: Option<usize>) -> Result<Dataset> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("libsvm")
        .to_string();
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    use std::io::Read;
    reader.read_to_string(&mut text)?;
    parse_str(&name, &text, dim)
}

/// Writes a dataset in LIBSVM format (1-based indices, zeros omitted).
pub fn write_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    let features = dataset.features();
    for i in 0..dataset.rows() {
        write!(out, "{}", dataset.labels()[i])?;
        match features {
            Matrix::Sparse(csr) => {
                let (idx, val) = csr.row(i);
                for (c, v) in idx.iter().zip(val.iter()) {
                    write!(out, " {}:{}", c + 1, v)?;
                }
            }
            Matrix::Dense(dm) => {
                for (c, v) in dm.row(i).iter().enumerate() {
                    if *v != 0.0 {
                        write!(out, " {}:{}", c + 1, v)?;
                    }
                }
            }
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1 1:0.5 3:1.25
-1 2:2.0
# a comment line

1 1:1.0 4:4.0
";

    #[test]
    fn parses_basic_file() {
        let d = parse_str("sample", SAMPLE, None).unwrap();
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 4);
        assert_eq!(d.labels(), &[1.0, -1.0, 1.0]);
        assert_eq!(d.features().row_dot(0, &[1.0, 0.0, 1.0, 0.0]), 0.5 + 1.25);
    }

    #[test]
    fn forced_dim_is_respected() {
        let d = parse_str("sample", SAMPLE, Some(10)).unwrap();
        assert_eq!(d.cols(), 10);
        assert!(parse_str("sample", SAMPLE, Some(2)).is_err());
    }

    #[test]
    fn rejects_zero_index_and_garbage() {
        assert!(parse_str("x", "1 0:1.0", None).is_err());
        assert!(parse_str("x", "abc 1:1.0", None).is_err());
        assert!(parse_str("x", "1 1-2", None).is_err());
        assert!(parse_str("x", "1 1:xyz", None).is_err());
    }

    #[test]
    fn duplicate_indices_are_summed() {
        let d = parse_str("x", "1 2:1.0 2:3.0", None).unwrap();
        assert_eq!(d.features().row_dot(0, &[0.0, 1.0]), 4.0);
    }

    #[test]
    fn round_trips_through_disk() {
        let d = parse_str("sample", SAMPLE, None).unwrap();
        let dir = std::env::temp_dir().join("async_data_libsvm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.svm");
        write_file(&d, &path).unwrap();
        let back = read_file(&path, Some(d.cols())).unwrap();
        assert_eq!(back.rows(), d.rows());
        assert_eq!(back.labels(), d.labels());
        for i in 0..d.rows() {
            let w: Vec<f64> = (0..d.cols()).map(|j| (j + 1) as f64).collect();
            assert!((back.features().row_dot(i, &w) - d.features().row_dot(i, &w)).abs() < 1e-12);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        let d = parse_str("empty", "", Some(5)).unwrap();
        assert_eq!(d.rows(), 0);
        assert_eq!(d.cols(), 5);
    }
}
