//! Deterministic mini-batch sampling.
//!
//! Every algorithm in the paper samples a fraction `b` of rows per task
//! (§2, eq. 5). For reproducibility we derive the sampling RNG from
//! `(seed, iteration, partition)` with a splitmix-style hash, so a run is a
//! pure function of its configuration regardless of execution interleaving.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sampled mini-batch: local row indices into one [`crate::Block`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniBatch {
    /// Local (block-relative) row indices, strictly increasing.
    pub rows: Vec<u32>,
}

impl MiniBatch {
    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were sampled.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Mixes `(seed, iteration, partition)` into an independent RNG stream.
///
/// Uses the splitmix64 finalizer twice, which is the standard way to derive
/// uncorrelated streams from structured keys.
pub fn derive_rng(seed: u64, iteration: u64, partition: u64) -> SmallRng {
    let mut z = seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ partition.rotate_left(32);
    z = splitmix64(z);
    z = splitmix64(z);
    SmallRng::seed_from_u64(z)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples `⌈fraction·n⌉` distinct rows from `0..n` without replacement
/// (at least 1 when `n > 0`), returned sorted. `fraction` is clamped to
/// `[0, 1]`.
pub fn sample_fraction(rng: &mut SmallRng, n: usize, fraction: f64) -> MiniBatch {
    if n == 0 {
        return MiniBatch { rows: Vec::new() };
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let k = ((fraction * n as f64).ceil() as usize).clamp(1, n);
    sample_k(rng, n, k)
}

/// Samples exactly `k ≤ n` distinct rows from `0..n`, sorted ascending.
/// Uses Floyd's algorithm: `O(k)` draws, no `O(n)` shuffle.
pub fn sample_k(rng: &mut SmallRng, n: usize, k: usize) -> MiniBatch {
    assert!(k <= n, "sample_k: k={k} > n={n}");
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut rows: Vec<u32> = chosen.into_iter().map(|i| i as u32).collect();
    rows.sort_unstable();
    MiniBatch { rows }
}

/// [`sample_fraction`] into a caller-owned buffer: `rows` is cleared and
/// refilled, so a warm buffer makes per-task sampling allocation-free. The
/// RNG draw sequence and the sampled row set are identical to
/// [`sample_fraction`].
pub fn sample_fraction_into(rng: &mut SmallRng, n: usize, fraction: f64, rows: &mut Vec<u32>) {
    if n == 0 {
        rows.clear();
        return;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let k = ((fraction * n as f64).ceil() as usize).clamp(1, n);
    sample_k_into(rng, n, k, rows);
}

/// [`sample_k`] into a caller-owned buffer. Floyd's algorithm with the
/// sorted output vector itself as the membership set (binary search +
/// ordered insert): the RNG draws, the chosen set, and the sorted output
/// are identical to `sample_k`, but a warm buffer never allocates.
///
/// The ordered insert shifts `O(k)` elements per draw, so very large
/// batches delegate to the hash-set [`sample_k`] instead — its one
/// allocation is noise next to the gradient work a batch that size costs,
/// and the output is identical either way.
pub fn sample_k_into(rng: &mut SmallRng, n: usize, k: usize, rows: &mut Vec<u32>) {
    assert!(k <= n, "sample_k_into: k={k} > n={n}");
    const INSERT_SORT_MAX: usize = 1024;
    if k > INSERT_SORT_MAX {
        let mb = sample_k(rng, n, k);
        rows.clear();
        rows.extend_from_slice(&mb.rows);
        return;
    }
    rows.clear();
    for j in n - k..n {
        let t = rng.gen_range(0..=j) as u32;
        match rows.binary_search(&t) {
            // `t` already chosen: Floyd's replacement picks `j`, which is
            // strictly greater than every element chosen so far.
            Ok(_) => rows.push(j as u32),
            Err(pos) => rows.insert(pos, t),
        }
    }
}

/// Samples `k` rows from `0..n` with replacement (unsorted, in draw order).
pub fn sample_with_replacement(rng: &mut SmallRng, n: usize, k: usize) -> Vec<u32> {
    assert!(n > 0, "sample_with_replacement: empty population");
    (0..k).map(|_| rng.gen_range(0..n) as u32).collect()
}

/// Bernoulli row sampling with probability `p` — Mllib's `RDD.sample`
/// semantics (expected `p·n` rows, variable batch size).
pub fn sample_bernoulli(rng: &mut SmallRng, n: usize, p: f64) -> MiniBatch {
    let p = p.clamp(0.0, 1.0);
    let rows = (0..n)
        .filter(|_| rng.gen::<f64>() < p)
        .map(|i| i as u32)
        .collect();
    MiniBatch { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_rng_is_deterministic_and_key_sensitive() {
        let a: Vec<u32> = sample_k(&mut derive_rng(1, 2, 3), 100, 10).rows;
        let b: Vec<u32> = sample_k(&mut derive_rng(1, 2, 3), 100, 10).rows;
        assert_eq!(a, b);
        let c: Vec<u32> = sample_k(&mut derive_rng(1, 2, 4), 100, 10).rows;
        let d: Vec<u32> = sample_k(&mut derive_rng(1, 3, 3), 100, 10).rows;
        assert!(
            a != c || a != d,
            "distinct keys should give distinct streams"
        );
    }

    #[test]
    fn sample_k_gives_distinct_sorted_in_range() {
        let mut rng = derive_rng(7, 0, 0);
        for _ in 0..100 {
            let mb = sample_k(&mut rng, 50, 12);
            assert_eq!(mb.len(), 12);
            for w in mb.rows.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(mb.rows.iter().all(|&r| (r as usize) < 50));
        }
    }

    #[test]
    fn sample_k_full_population() {
        let mut rng = derive_rng(7, 0, 0);
        let mb = sample_k(&mut rng, 10, 10);
        assert_eq!(mb.rows, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn sample_fraction_sizes() {
        let mut rng = derive_rng(9, 0, 0);
        assert_eq!(sample_fraction(&mut rng, 100, 0.1).len(), 10);
        assert_eq!(sample_fraction(&mut rng, 100, 0.0).len(), 1); // min 1
        assert_eq!(sample_fraction(&mut rng, 100, 1.0).len(), 100);
        assert_eq!(sample_fraction(&mut rng, 0, 0.5).len(), 0);
        assert_eq!(sample_fraction(&mut rng, 7, 0.01).len(), 1);
    }

    #[test]
    fn into_variants_match_allocating_samplers_exactly() {
        let mut buf = Vec::new();
        // Spans both regimes of sample_k_into (ordered insert and the
        // large-batch hash-set delegation past 1024).
        for (n, k) in [
            (1usize, 1usize),
            (10, 3),
            (50, 50),
            (200, 1),
            (97, 41),
            (5_000, 2_000),
        ] {
            for seed in 0..20u64 {
                let a = sample_k(&mut derive_rng(seed, 0, 0), n, k);
                sample_k_into(&mut derive_rng(seed, 0, 0), n, k, &mut buf);
                assert_eq!(a.rows, buf, "n={n} k={k} seed={seed}");
            }
        }
        for frac in [0.0, 0.05, 0.3, 1.0] {
            for seed in 0..10u64 {
                let a = sample_fraction(&mut derive_rng(seed, 1, 2), 73, frac);
                sample_fraction_into(&mut derive_rng(seed, 1, 2), 73, frac, &mut buf);
                assert_eq!(a.rows, buf, "frac={frac} seed={seed}");
            }
        }
        sample_fraction_into(&mut derive_rng(0, 0, 0), 0, 0.5, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn bernoulli_sampling_is_near_expectation() {
        let mut rng = derive_rng(11, 0, 0);
        let mb = sample_bernoulli(&mut rng, 10_000, 0.2);
        let got = mb.len() as f64;
        assert!(
            (got - 2000.0).abs() < 200.0,
            "got {got} rows, expected ~2000"
        );
    }

    #[test]
    fn with_replacement_can_repeat() {
        let mut rng = derive_rng(13, 0, 0);
        let v = sample_with_replacement(&mut rng, 3, 100);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|&r| r < 3));
    }
}
