//! Datasets and row-range shards.

use std::sync::Arc;

use async_linalg::parallel::{par_residual_sq, ParallelismCfg};
use async_linalg::Matrix;

use crate::{Error, Result};

/// A supervised dataset: feature matrix (rows are examples) plus labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    features: Arc<Matrix>,
    labels: Arc<Vec<f64>>,
}

/// Summary statistics matching the columns of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Row count (`m` in Table 2).
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Fraction of entries stored (1.0 for dense).
    pub density: f64,
    /// Approximate in-memory size in megabytes.
    pub size_mb: f64,
}

impl Dataset {
    /// Builds a dataset; `labels.len()` must equal `features.nrows()`.
    pub fn new(name: impl Into<String>, features: Matrix, labels: Vec<f64>) -> Result<Self> {
        if labels.len() != features.nrows() {
            return Err(Error::Invalid(format!(
                "labels length {} != feature rows {}",
                labels.len(),
                features.nrows()
            )));
        }
        Ok(Self {
            name: name.into(),
            features: Arc::new(features),
            labels: Arc::new(labels),
        })
    }

    /// Dataset name (e.g. `"rcv1-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The full label vector.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Number of examples.
    pub fn rows(&self) -> usize {
        self.features.nrows()
    }

    /// Feature dimension.
    pub fn cols(&self) -> usize {
        self.features.ncols()
    }

    /// Table 2 statistics for this dataset.
    pub fn stats(&self) -> DatasetStats {
        let rows = self.rows();
        let cols = self.cols();
        let nnz = self.features.nnz();
        let entries = (rows * cols).max(1);
        let bytes = self.features.bytes() + (self.labels.len() * 8) as u64;
        DatasetStats {
            name: self.name.clone(),
            rows,
            cols,
            nnz,
            density: nnz as f64 / entries as f64,
            size_mb: bytes as f64 / (1024.0 * 1024.0),
        }
    }

    /// Splits the dataset into `parts` contiguous row blocks (the paper uses
    /// 32 partitions for every dataset). Blocks share the underlying storage
    /// through `Arc`, so this is cheap.
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn partition(&self, parts: usize) -> Vec<Block> {
        assert!(parts > 0, "partition: parts must be positive");
        let ranges = async_linalg::parallel::split_ranges(self.rows(), parts);
        ranges
            .into_iter()
            .enumerate()
            .map(|(part_id, r)| Block {
                features: Arc::new(self.features.slice_rows(r.start, r.end)),
                labels: Arc::new(self.labels[r.clone()].to_vec()),
                row_offset: r.start,
                total_rows: self.rows(),
                part_id,
            })
            .collect()
    }

    /// The same logical dataset with features rebuilt as dense row-major
    /// storage. Labels are shared; only the feature storage is copied.
    pub fn densified(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            features: Arc::new(self.features.densified()),
            labels: Arc::clone(&self.labels),
        }
    }

    /// The same logical dataset with features rebuilt as CSR storage
    /// (exact zeros dropped). With [`Dataset::densified`] this pins one
    /// logical workload while switching gradient paths — how the
    /// dense-vs-sparse fast-path benchmark holds the data fixed.
    pub fn sparsified(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            features: Arc::new(self.features.sparsified()),
            labels: Arc::clone(&self.labels),
        }
    }

    /// The least-squares objective `‖A·w − y‖²` over the full dataset,
    /// evaluated with driver-side parallelism. This is the paper's
    /// evaluation metric before subtracting the baseline.
    pub fn least_squares_objective(&self, cfg: ParallelismCfg, w: &[f64]) -> f64 {
        par_residual_sq(cfg, &self.features, w, &self.labels)
    }
}

/// A contiguous row-range shard of a [`Dataset`], cheap to clone (internally
/// `Arc`-shared). One `Block` is the single element of one sparklet
/// partition, which makes "per-partition local reduction" (the paper's
/// `ASYNCreduce` semantics) a natural fold over the block.
#[derive(Debug, Clone)]
pub struct Block {
    features: Arc<Matrix>,
    labels: Arc<Vec<f64>>,
    row_offset: usize,
    total_rows: usize,
    part_id: usize,
}

impl Block {
    /// Assembles a block from its parts — the wire-transfer constructor:
    /// networked workers receive a block's rows once per worker incarnation
    /// and rebuild it locally with the same geometry
    /// ([`Dataset::partition`] remains the in-process path).
    ///
    /// # Panics
    /// Panics if `labels` is not parallel to `features`' rows or the block
    /// extends past `total_rows`.
    pub fn from_parts(
        features: Matrix,
        labels: Vec<f64>,
        row_offset: usize,
        total_rows: usize,
        part_id: usize,
    ) -> Self {
        assert_eq!(
            features.nrows(),
            labels.len(),
            "labels must be parallel to feature rows"
        );
        assert!(
            row_offset + features.nrows() <= total_rows,
            "block rows exceed the declared dataset size"
        );
        Self {
            features: Arc::new(features),
            labels: Arc::new(labels),
            row_offset,
            total_rows,
            part_id,
        }
    }

    /// Feature rows local to this block.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Labels local to this block (parallel to the feature rows).
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Number of rows in this block.
    pub fn rows(&self) -> usize {
        self.features.nrows()
    }

    /// Feature dimension.
    pub fn cols(&self) -> usize {
        self.features.ncols()
    }

    /// Global row id of local row `i` — stable across partitioning, used as
    /// the SAGA sample identity.
    pub fn global_row(&self, i: usize) -> u64 {
        debug_assert!(i < self.rows());
        (self.row_offset + i) as u64
    }

    /// Global row id of this block's first row (its offset into the parent
    /// dataset).
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Total rows of the parent dataset (`n` in the algorithms).
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Partition index this block was created for.
    pub fn part_id(&self) -> usize {
        self.part_id
    }

    /// Stored nonzeros — the cost hint for task-duration modelling.
    pub fn nnz(&self) -> usize {
        self.features.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_linalg::CsrMatrix;

    fn tiny() -> Dataset {
        let m = CsrMatrix::from_triplets(
            &(0..10)
                .map(|i| (i, (i % 3) as u32, 1.0 + i as f64))
                .collect::<Vec<_>>(),
            10,
            3,
        )
        .unwrap();
        Dataset::new(
            "tiny",
            Matrix::Sparse(m),
            (0..10).map(|i| i as f64).collect(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_label_mismatch() {
        let m = CsrMatrix::from_rows(&[], 3).unwrap();
        assert!(Dataset::new("bad", Matrix::Sparse(m), vec![1.0]).is_err());
    }

    #[test]
    fn stats_reports_shape() {
        let s = tiny().stats();
        assert_eq!(s.rows, 10);
        assert_eq!(s.cols, 3);
        assert_eq!(s.nnz, 10);
        assert!((s.density - 10.0 / 30.0).abs() < 1e-12);
        assert!(s.size_mb > 0.0);
    }

    #[test]
    fn partition_covers_all_rows_without_overlap() {
        let d = tiny();
        let blocks = d.partition(4);
        assert_eq!(blocks.len(), 4);
        let total: usize = blocks.iter().map(Block::rows).sum();
        assert_eq!(total, 10);
        let mut seen = [false; 10];
        for b in &blocks {
            for i in 0..b.rows() {
                let g = b.global_row(i) as usize;
                assert!(!seen[g], "row {g} appears twice");
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_preserves_rows_and_labels() {
        let d = tiny();
        let blocks = d.partition(3);
        for b in &blocks {
            for i in 0..b.rows() {
                let g = b.global_row(i) as usize;
                assert_eq!(b.labels()[i], d.labels()[g]);
                let w = vec![1.0; 3];
                assert_eq!(b.features().row_dot(i, &w), d.features().row_dot(g, &w));
            }
        }
    }

    #[test]
    fn more_parts_than_rows_is_fine() {
        let d = tiny();
        let blocks = d.partition(32);
        let total: usize = blocks.iter().map(Block::rows).sum();
        assert_eq!(total, 10);
        assert!(blocks.len() <= 32);
    }

    #[test]
    fn storage_conversions_preserve_the_dataset() {
        let d = tiny();
        let dense = d.densified();
        assert!(!dense.features().is_sparse());
        assert_eq!(dense.labels(), d.labels());
        let back = dense.sparsified();
        assert!(back.features().is_sparse());
        assert_eq!(back.features().nnz(), d.features().nnz());
        let w = vec![0.5; 3];
        for i in 0..d.rows() {
            assert!((back.features().row_dot(i, &w) - d.features().row_dot(i, &w)).abs() < 1e-15);
        }
    }

    #[test]
    fn objective_zero_at_exact_fit() {
        // y = first coordinate of each row when w = e0 scaled appropriately:
        // build a dataset where labels equal A·w* exactly.
        let d = tiny();
        let w_star = [2.0, -1.0, 0.5];
        let mut y = vec![0.0; d.rows()];
        d.features().matvec(&w_star, &mut y);
        let exact = Dataset::new("exact", (*d.features).clone(), y).unwrap();
        let obj = exact.least_squares_objective(ParallelismCfg::sequential(), &w_star);
        assert!(obj < 1e-18);
    }
}
