//! # async-data
//!
//! Datasets for the ASYNC reproduction.
//!
//! The paper's evaluation (§6.1, Table 2) uses three LIBSVM datasets —
//! `rcv1_full.binary` (697k×47k, sparse), `mnist8m` (8.1M×784, dense) and
//! `epsilon` (400k×2000, dense). This crate provides:
//!
//! * [`Dataset`]: features (dense or CSR) + labels + provenance, with
//!   [`DatasetStats`] for the Table 2 columns;
//! * [`Block`]: a cheaply clonable row-range shard of a dataset — the unit
//!   stored in sparklet partitions;
//! * [`synth`]: seeded synthetic generators whose *shape* (dimension,
//!   sparsity, label model) matches the paper's datasets at configurable
//!   scale;
//! * [`libsvm`]: a LIBSVM text parser/writer so the real files can be
//!   dropped in unchanged;
//! * [`sampler`]: deterministic mini-batch index sampling, derived from
//!   `(seed, iteration, partition)` so every run is reproducible.

pub mod dataset;
pub mod libsvm;
pub mod sampler;
pub mod synth;

pub use dataset::{Block, Dataset, DatasetStats};
pub use sampler::MiniBatch;
pub use synth::SynthSpec;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from dataset construction, IO, or parsing.
#[derive(Debug)]
pub enum Error {
    /// Underlying linear-algebra structure error.
    Linalg(async_linalg::Error),
    /// Malformed LIBSVM input.
    Parse { line: usize, msg: String },
    /// Filesystem error.
    Io(std::io::Error),
    /// Inconsistent dataset construction arguments.
    Invalid(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Invalid(msg) => write!(f, "invalid dataset: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<async_linalg::Error> for Error {
    fn from(e: async_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
