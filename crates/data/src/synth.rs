//! Seeded synthetic dataset generators.
//!
//! The paper's datasets are not redistributable inside this repository, so
//! we generate synthetic equivalents with matching *shape*: dimension,
//! sparsity pattern, and a linear ground-truth labelling with additive noise
//! (the evaluation solves least squares, so a linear generative model is the
//! faithful choice). Row counts are scaled down by a configurable factor;
//! DESIGN.md §2 records the substitution argument.

use async_linalg::{CsrMatrix, DenseMatrix, Matrix, SparseVec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::Result;

/// Specification for a synthetic least-squares dataset.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Dataset name carried into [`Dataset::name`].
    pub name: String,
    /// Number of examples.
    pub rows: usize,
    /// Feature dimension.
    pub cols: usize,
    /// Mean nonzeros per row; `None` generates dense rows.
    pub nnz_per_row: Option<usize>,
    /// Standard deviation of the label noise ε in `y = x·w* + ε`.
    pub noise_std: f64,
    /// RNG seed — every byte of the dataset is a pure function of the spec.
    pub seed: u64,
}

impl SynthSpec {
    /// A dense spec with the given shape.
    pub fn dense(name: impl Into<String>, rows: usize, cols: usize, seed: u64) -> Self {
        Self {
            name: name.into(),
            rows,
            cols,
            nnz_per_row: None,
            noise_std: 0.1,
            seed,
        }
    }

    /// A sparse spec with the given shape and mean row sparsity.
    pub fn sparse(
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        nnz_per_row: usize,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            rows,
            cols,
            nnz_per_row: Some(nnz_per_row),
            noise_std: 0.1,
            seed,
        }
    }

    /// Shaped like `rcv1_full.binary` (697,641 × 47,236, ~73 nnz/row) at
    /// `scale` of the original row count.
    pub fn rcv1_like(scale: f64, seed: u64) -> Self {
        Self::sparse("rcv1-like", scaled(697_641, scale), 47_236, 73, seed)
    }

    /// Shaped like `mnist8m` (8,100,000 × 784, dense) at `scale` of the
    /// original row count.
    pub fn mnist8m_like(scale: f64, seed: u64) -> Self {
        Self::dense("mnist8m-like", scaled(8_100_000, scale), 784, seed)
    }

    /// Shaped like `epsilon` (400,000 × 2,000, dense) at `scale` of the
    /// original row count.
    pub fn epsilon_like(scale: f64, seed: u64) -> Self {
        Self::dense("epsilon-like", scaled(400_000, scale), 2_000, seed)
    }

    /// Generates the dataset along with the planted model `w*`.
    ///
    /// Features: dense entries are `N(0,1)`-ish (via the sum-of-uniforms
    /// approximation, adequate for benchmarks and cheap); sparse rows draw a
    /// Poisson-ish nonzero count around `nnz_per_row` with distinct sorted
    /// column indices. Labels: `y = x·w* + ε`.
    /// Like [`SynthSpec::generate`], but relabels into ±1 classes by the
    /// sign of the planted model's margin `x·w*` — the shape of the
    /// paper's logistic-regression workload. The dataset name gains a
    /// `-pm1` suffix.
    pub fn generate_classification(&self) -> Result<(Dataset, Vec<f64>)> {
        let (base, w_star) = self.generate()?;
        let labels: Vec<f64> = (0..base.rows())
            .map(|i| {
                if base.features().row_dot(i, &w_star) >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let d = Dataset::new(
            format!("{}-pm1", self.name),
            base.features().clone(),
            labels,
        )?;
        Ok((d, w_star))
    }

    pub fn generate(&self) -> Result<(Dataset, Vec<f64>)> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let w_star: Vec<f64> = (0..self.cols)
            .map(|_| normal_ish(&mut rng) / (self.cols as f64).sqrt())
            .collect();

        let features = match self.nnz_per_row {
            None => {
                let mut flat = Vec::with_capacity(self.rows * self.cols);
                for _ in 0..self.rows * self.cols {
                    flat.push(normal_ish(&mut rng));
                }
                Matrix::Dense(DenseMatrix::from_flat(flat, self.rows, self.cols)?)
            }
            Some(k) => {
                let mut rows = Vec::with_capacity(self.rows);
                for _ in 0..self.rows {
                    let nnz = sample_row_nnz(&mut rng, k, self.cols);
                    let pairs: Vec<(u32, f64)> = sample_distinct(&mut rng, nnz, self.cols)
                        .into_iter()
                        .map(|c| (c as u32, normal_ish(&mut rng)))
                        .collect();
                    rows.push(SparseVec::from_pairs(pairs, self.cols)?);
                }
                Matrix::Sparse(CsrMatrix::from_rows(&rows, self.cols)?)
            }
        };

        let mut labels = vec![0.0; self.rows];
        features.matvec(&w_star, &mut labels);
        for yi in labels.iter_mut() {
            *yi += self.noise_std * normal_ish(&mut rng);
        }

        Ok((Dataset::new(self.name.clone(), features, labels)?, w_star))
    }
}

fn scaled(rows: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "scale must be positive");
    ((rows as f64 * scale) as usize).max(1)
}

/// Approximately standard-normal variate: Irwin–Hall sum of 12 uniforms.
/// Exactly seeded, no rejection loop, and plenty Gaussian for data
/// generation purposes.
fn normal_ish(rng: &mut SmallRng) -> f64 {
    let mut s = 0.0;
    for _ in 0..12 {
        s += rng.gen::<f64>();
    }
    s - 6.0
}

/// Row nonzero count: geometric-ish jitter around `k`, clamped to
/// `[1, cols]`.
fn sample_row_nnz(rng: &mut SmallRng, k: usize, cols: usize) -> usize {
    let jitter = (k as f64 * (0.5 + rng.gen::<f64>())) as usize;
    jitter.clamp(1, cols)
}

/// `k` distinct column indices from `0..cols` via Floyd's algorithm.
fn sample_distinct(rng: &mut SmallRng, k: usize, cols: usize) -> Vec<usize> {
    debug_assert!(k <= cols);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in cols - k..cols {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_generation_has_exact_shape() {
        let (d, w) = SynthSpec::dense("d", 50, 8, 7).generate().unwrap();
        assert_eq!(d.rows(), 50);
        assert_eq!(d.cols(), 8);
        assert_eq!(w.len(), 8);
        assert!(!d.features().is_sparse());
    }

    #[test]
    fn sparse_generation_respects_sparsity() {
        let spec = SynthSpec::sparse("s", 200, 1000, 20, 11);
        let (d, _) = spec.generate().unwrap();
        assert!(d.features().is_sparse());
        let mean_nnz = d.features().nnz() as f64 / 200.0;
        assert!(
            mean_nnz > 10.0 && mean_nnz < 40.0,
            "mean nnz/row {mean_nnz} far from requested 20"
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = SynthSpec::dense("d", 30, 5, 42).generate().unwrap();
        let b = SynthSpec::dense("d", 30, 5, 42).generate().unwrap();
        assert_eq!(a.0.labels(), b.0.labels());
        assert_eq!(a.1, b.1);
        let c = SynthSpec::dense("d", 30, 5, 43).generate().unwrap();
        assert_ne!(a.0.labels(), c.0.labels());
    }

    #[test]
    fn classification_labels_are_margin_signs() {
        let (d, w_star) = SynthSpec::sparse("c", 50, 100, 8, 9)
            .generate_classification()
            .unwrap();
        assert_eq!(d.name(), "c-pm1");
        for i in 0..d.rows() {
            let y = d.labels()[i];
            assert!(y == 1.0 || y == -1.0);
            let margin = d.features().row_dot(i, &w_star);
            assert_eq!(y, if margin >= 0.0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn labels_follow_planted_model() {
        // With zero noise, residual at w* must vanish.
        let mut spec = SynthSpec::dense("d", 40, 6, 3);
        spec.noise_std = 0.0;
        let (d, w_star) = spec.generate().unwrap();
        let obj = d.least_squares_objective(async_linalg::ParallelismCfg::sequential(), &w_star);
        assert!(obj < 1e-16, "objective at planted model: {obj}");
    }

    #[test]
    fn presets_match_paper_dims() {
        let r = SynthSpec::rcv1_like(0.001, 1);
        assert_eq!(r.cols, 47_236);
        let m = SynthSpec::mnist8m_like(0.0001, 1);
        assert_eq!(m.cols, 784);
        let e = SynthSpec::epsilon_like(0.001, 1);
        assert_eq!(e.cols, 2_000);
        assert_eq!(e.rows, 400);
    }

    #[test]
    fn sample_distinct_returns_distinct_indices() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let v = sample_distinct(&mut rng, 10, 30);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(v.iter().all(|&c| c < 30));
        }
    }
}
