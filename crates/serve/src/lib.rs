//! # async-serve
//!
//! Serve-while-training: a versioned prediction read path over the
//! engine's MVCC snapshot store.
//!
//! A training run owns an [`async_core::AsyncBcast`] — the multi-version
//! history ring the server pushes a snapshot into after every absorbed
//! wave. This crate turns that same ring into a **read path**: serving
//! threads pin a model version ([`async_core::ReadPin`]) straight out of
//! the version table and score queries against it while the solver keeps
//! absorbing gradients and pushing new versions. Readers never copy the
//! model, never touch the worker fetch/cache path (no eviction or
//! byte-accounting side effects), and a pinned version is guaranteed to
//! stay resident until its last reader drops — the prune sweep skips
//! pinned entries and reclaims them (recycling the buffer) the moment the
//! pin count returns to zero.
//!
//! The seam between the two sides is [`async_optim::ServeFeed`]: hand one
//! clone to [`async_optim::SolverCfg::serve_feed`] and one to
//! [`Server::connect`], which blocks until the run publishes its live
//! broadcast. Each [`Server::predictor`] call then yields an independent
//! [`Predictor`] for one serving thread.
//!
//! **Freshness contract.** A predictor holds its pin until the policy
//! says otherwise: before every scoring call it measures its version lag
//! (latest − pinned) and re-pins the latest version iff the lag exceeds
//! [`ServeCfg::max_version_lag`]. Every served read is therefore at most
//! `max_version_lag` versions stale *at score time* — and during a full
//! cluster blackout (no new versions) readers simply keep serving the
//! frozen-but-bounded snapshot. Versions observed by any single reader
//! are monotone non-decreasing: the ring's `latest` only grows, across
//! failures, revivals, and joins alike.
//!
//! **Online learning.** Served queries flow back into training through
//! the feed's query log: [`Predictor::observe`] appends the feature
//! support and the later-observed label, and the trainer side drains the
//! log ([`async_optim::ServeFeed::drain_queries`]) into fresh training
//! rows for the next run.
//!
//! Scoring rides the pooled batch kernels
//! ([`async_linalg::Matrix::rows_dot_into`] — CSR partitions take the
//! sparse row-gather path) with buffers checked out of an
//! [`async_optim::ScratchPool`], so the steady-state read loop performs
//! zero heap allocations.

#![deny(missing_docs)]

use async_core::{AsyncBcast, ReadPin};
use async_linalg::Matrix;
use async_optim::{LoggedQuery, Objective, PublishedModel, ScratchPool, ServeCounters, ServeFeed};

/// Serving policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCfg {
    /// Freshness bound: a predictor re-pins the latest model version the
    /// moment its pinned snapshot falls more than this many versions
    /// behind the ring's watermark. `u64::MAX` disables refreshing — the
    /// reader keeps its original pin for its whole lifetime.
    pub max_version_lag: u64,
    /// Whether [`Predictor::observe`] records served queries into the
    /// feed's online-learning log.
    pub log_queries: bool,
}

impl Default for ServeCfg {
    fn default() -> Self {
        Self {
            max_version_lag: 8,
            log_queries: true,
        }
    }
}

/// A serving endpoint bound to one (possibly still running) solver run.
///
/// Cheap to keep around: holds the published broadcast handle, the feed,
/// and a shared [`ScratchPool`] that every spawned [`Predictor`] recycles
/// buffers through.
pub struct Server {
    model: PublishedModel,
    feed: ServeFeed,
    cfg: ServeCfg,
    pool: ScratchPool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("model", &self.model)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Blocks until the run attached to `feed` publishes its model
    /// broadcast, then returns a server over it. Returns `None` when the
    /// run finished (or had already finished) without publishing.
    pub fn connect(feed: &ServeFeed, cfg: ServeCfg) -> Option<Self> {
        let model = feed.wait_model()?;
        Some(Self {
            model,
            feed: feed.clone(),
            cfg,
            pool: ScratchPool::new(),
        })
    }

    /// The serving policy.
    pub fn cfg(&self) -> ServeCfg {
        self.cfg
    }

    /// Model dimension (features per query row).
    pub fn dim(&self) -> usize {
        self.model.dim
    }

    /// The objective the served model was trained on.
    pub fn objective(&self) -> Objective {
        self.model.objective
    }

    /// The feed this server reads through.
    pub fn feed(&self) -> &ServeFeed {
        &self.feed
    }

    /// True once the attached training run finished (the broadcast stays
    /// valid, frozen at its final version — serving keeps working).
    pub fn training_done(&self) -> bool {
        self.feed.is_done()
    }

    /// Snapshot of the cumulative serving counters.
    pub fn counters(&self) -> ServeCounters {
        self.feed.counters()
    }

    /// Spawns an independent predictor pinned to the latest model version.
    /// Each serving thread gets its own (predictors are not `Sync`); all
    /// of them share this server's buffer pool.
    pub fn predictor(&self) -> Predictor {
        let pin = self.model.bcast.pin_read();
        let margins = self.pool.checkout_dense(0);
        Predictor {
            bcast: self.model.bcast.clone(),
            pin,
            objective: self.model.objective,
            dim: self.model.dim,
            cfg: self.cfg,
            feed: self.feed.clone(),
            pool: self.pool.clone(),
            margins,
        }
    }
}

/// One serving thread's handle: a pinned model version plus the scoring
/// kernels and freshness policy around it.
///
/// The pin is the heart of the contract: as long as this predictor (or
/// any other reader) holds version `v`, the trainer's prune sweep will
/// not recycle `v`'s snapshot out from under it, no matter how far the
/// ring advances. Dropping the predictor releases the pin, and the
/// superseded snapshot is reclaimed (buffer recycled) immediately.
pub struct Predictor {
    bcast: AsyncBcast<Vec<f64>>,
    pin: ReadPin<Vec<f64>>,
    objective: Objective,
    dim: usize,
    cfg: ServeCfg,
    feed: ServeFeed,
    pool: ScratchPool,
    margins: Vec<f64>,
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("version", &self.pin.version())
            .field("dim", &self.dim)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Predictor {
    /// The model version this predictor is currently pinned to.
    pub fn version(&self) -> u64 {
        self.pin.version()
    }

    /// The ring's live watermark (latest pushed version).
    pub fn latest_version(&self) -> u64 {
        self.bcast.latest_version()
    }

    /// How many versions behind the watermark the current pin is.
    pub fn lag(&self) -> u64 {
        self.bcast
            .latest_version()
            .saturating_sub(self.pin.version())
    }

    /// The pinned model coefficients.
    pub fn model(&self) -> &[f64] {
        self.pin.value()
    }

    /// Unconditionally re-pins the latest version (releasing the old pin)
    /// and returns the new pinned version.
    pub fn refresh(&mut self) -> u64 {
        self.pin = self.bcast.pin_read();
        self.feed.stats().record_refresh();
        self.pin.version()
    }

    /// The freshness policy, applied before every scoring call: re-pin
    /// iff the lag exceeds [`ServeCfg::max_version_lag`]. Returns the lag
    /// at score time — 0 after a refresh (the new pin *was* the watermark
    /// under the version-table lock), so the recorded lag never exceeds
    /// the configured bound.
    fn enforce_freshness(&mut self) -> u64 {
        let lag = self.lag();
        if lag > self.cfg.max_version_lag {
            self.refresh();
            return 0;
        }
        lag
    }

    /// Scores query rows `rows` of `m` into `out` (overwritten):
    /// `out[j] = predict(m[rows[j]] · w)` against the pinned model. CSR
    /// matrices take the sparse row-gather kernel; `out`'s capacity is
    /// reused, so a caller recycling its buffer allocates nothing.
    ///
    /// # Panics
    /// Panics when `m`'s column count differs from the model dimension.
    pub fn predict_rows_into(&mut self, m: &Matrix, rows: &[u32], out: &mut Vec<f64>) {
        assert_eq!(
            m.ncols(),
            self.dim,
            "predict: query matrix has {} columns, model has {}",
            m.ncols(),
            self.dim
        );
        let lag = self.enforce_freshness();
        m.rows_dot_into(rows, self.pin.value(), out);
        for z in out.iter_mut() {
            *z = self.objective.predict(*z);
        }
        self.feed.stats().record_read(rows.len() as u64, lag);
    }

    /// [`Predictor::predict_rows_into`] through the predictor's own pooled
    /// buffer; the returned slice is valid until the next scoring call.
    pub fn predict_rows(&mut self, m: &Matrix, rows: &[u32]) -> &[f64] {
        let mut out = std::mem::take(&mut self.margins);
        self.predict_rows_into(m, rows, &mut out);
        self.margins = out;
        &self.margins
    }

    /// Scores every row of `m` into `out` (overwritten, resized).
    ///
    /// # Panics
    /// Panics when `m`'s column count differs from the model dimension.
    pub fn predict_all_into(&mut self, m: &Matrix, out: &mut Vec<f64>) {
        assert_eq!(
            m.ncols(),
            self.dim,
            "predict: query matrix has {} columns, model has {}",
            m.ncols(),
            self.dim
        );
        let lag = self.enforce_freshness();
        m.matvec_into(self.pin.value(), out);
        for z in out.iter_mut() {
            *z = self.objective.predict(*z);
        }
        self.feed.stats().record_read(m.nrows() as u64, lag);
    }

    /// Scores a single sparse query: `predict(Σ vᵢ·w[iᵢ])` over strictly
    /// increasing `(coordinate, value)` pairs.
    ///
    /// # Panics
    /// Panics when a coordinate is out of the model's range.
    pub fn predict_query(&mut self, features: &[(u32, f64)]) -> f64 {
        let lag = self.enforce_freshness();
        let w = self.pin.value();
        let z: f64 = features
            .iter()
            .map(|&(i, v)| {
                assert!(
                    (i as usize) < self.dim,
                    "predict: coordinate {i} out of model range {}",
                    self.dim
                );
                v * w[i as usize]
            })
            .sum();
        self.feed.stats().record_read(1, lag);
        self.objective.predict(z)
    }

    /// The online-learning hook: records a served query together with the
    /// outcome the caller later observed. The trainer drains these
    /// ([`async_optim::ServeFeed::drain_queries`]) into new training rows.
    /// A no-op when [`ServeCfg::log_queries`] is off.
    pub fn observe(&self, features: Vec<(u32, f64)>, label: f64) {
        if self.cfg.log_queries {
            self.feed.log_query(LoggedQuery { features, label });
        }
    }
}

impl Drop for Predictor {
    fn drop(&mut self) {
        // The margin buffer goes back to the shared pool; the pin's own
        // drop releases the version for pruning.
        self.pool.give_back_dense(std::mem::take(&mut self.margins));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_with_model(dim: usize, objective: Objective) -> (ServeFeed, AsyncBcast<Vec<f64>>) {
        let bcast = AsyncBcast::new(7, vec![0.0; dim], 0);
        let feed = ServeFeed::new();
        feed.publish(PublishedModel {
            bcast: bcast.clone(),
            objective,
            dim,
        });
        (feed, bcast)
    }

    #[test]
    fn connect_returns_none_when_run_never_publishes() {
        let feed = ServeFeed::new();
        feed.mark_done();
        assert!(Server::connect(&feed, ServeCfg::default()).is_none());
    }

    #[test]
    fn predictor_scores_against_its_pinned_version() {
        let (feed, bcast) = feed_with_model(3, Objective::LeastSquares { lambda: 0.0 });
        bcast.push_snapshot(&[1.0, -2.0, 0.5]);
        let srv = Server::connect(&feed, ServeCfg::default()).unwrap();
        let mut p = srv.predictor();
        assert_eq!(p.version(), 1);
        assert_eq!(p.model(), &[1.0, -2.0, 0.5]);
        assert_eq!(p.predict_query(&[(0, 2.0), (2, 4.0)]), 2.0 + 2.0);
        let c = srv.counters();
        assert_eq!(c.reads, 1);
        assert_eq!(c.rows_scored, 1);
        assert_eq!(c.max_version_lag, 0);
    }

    #[test]
    fn logistic_predictions_are_probabilities() {
        let (feed, bcast) = feed_with_model(2, Objective::Logistic { lambda: 0.0 });
        bcast.push_snapshot(&[3.0, 0.0]);
        let srv = Server::connect(&feed, ServeCfg::default()).unwrap();
        let mut p = srv.predictor();
        let pos = p.predict_query(&[(0, 10.0)]);
        let neg = p.predict_query(&[(0, -10.0)]);
        assert!(pos > 0.999 && pos <= 1.0, "σ(30) ≈ 1, got {pos}");
        assert!((0.0..0.001).contains(&neg), "σ(−30) ≈ 0, got {neg}");
        assert_eq!(p.predict_query(&[(1, 5.0)]), 0.5, "zero margin is 0.5");
    }

    #[test]
    fn freshness_policy_repins_only_past_the_lag_bound() {
        let (feed, bcast) = feed_with_model(2, Objective::LeastSquares { lambda: 0.0 });
        let srv = Server::connect(
            &feed,
            ServeCfg {
                max_version_lag: 3,
                log_queries: false,
            },
        )
        .unwrap();
        let mut p = srv.predictor();
        assert_eq!(p.version(), 0);
        // Within the bound: the pin holds and the served lag is recorded.
        for k in 1..=3 {
            bcast.push_snapshot(&[k as f64, 0.0]);
        }
        assert_eq!(
            p.predict_query(&[(0, 1.0)]),
            0.0,
            "stale pin still serves v0"
        );
        assert_eq!(p.version(), 0);
        assert_eq!(srv.counters().refreshes, 0);
        assert_eq!(srv.counters().max_version_lag, 3);
        // Past the bound: the next read re-pins the watermark first.
        bcast.push_snapshot(&[9.0, 0.0]);
        assert_eq!(p.predict_query(&[(0, 1.0)]), 9.0);
        assert_eq!(p.version(), 4);
        let c = srv.counters();
        assert_eq!(c.refreshes, 1);
        assert_eq!(c.max_version_lag, 3, "served lag never exceeded the bound");
    }

    #[test]
    fn observe_feeds_the_query_log_behind_its_knob() {
        let (feed, _bcast) = feed_with_model(2, Objective::LeastSquares { lambda: 0.0 });
        let srv = Server::connect(&feed, ServeCfg::default()).unwrap();
        let p = srv.predictor();
        p.observe(vec![(1, 2.0)], 1.0);
        assert_eq!(feed.pending_queries(), 1);

        let quiet = Server::connect(
            &feed,
            ServeCfg {
                log_queries: false,
                ..ServeCfg::default()
            },
        )
        .unwrap();
        let q = quiet.predictor();
        q.observe(vec![(0, 1.0)], -1.0);
        assert_eq!(feed.pending_queries(), 1, "log_queries=false drops the row");
    }

    #[test]
    fn dropped_predictor_recycles_its_margin_buffer() {
        let (feed, bcast) = feed_with_model(4, Objective::LeastSquares { lambda: 0.0 });
        bcast.push_snapshot(&[1.0; 4]);
        let srv = Server::connect(&feed, ServeCfg::default()).unwrap();
        let m = Matrix::Dense(
            async_linalg::DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]).unwrap(),
        );
        let mut p = srv.predictor();
        assert_eq!(p.predict_rows(&m, &[0]), &[10.0]);
        drop(p);
        // A fresh predictor checks the warm buffer back out of the pool.
        let mut p2 = srv.predictor();
        assert_eq!(p2.predict_rows(&m, &[0]), &[10.0]);
    }
}
