//! Serve-while-training end-to-end: readers on their own OS threads pin
//! versions out of a live solver's MVCC snapshot ring and score queries
//! while the run absorbs gradients — plus the blackout/monotonicity and
//! online-learning contracts.

use std::thread;

use async_cluster::{ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::Matrix;
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, ServeFeed, SolverCfg};
use async_serve::{ServeCfg, Server};

const WORKERS: usize = 4;

fn quiet_spec() -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn dataset() -> Dataset {
    SynthSpec::dense("serve-e2e", 160, 10, 3)
        .generate()
        .unwrap()
        .0
}

fn cfg(feed: &ServeFeed, max_updates: u64) -> SolverCfg {
    SolverCfg::builder()
        .step(0.04)
        .batch_fraction(0.25)
        .barrier(BarrierFilter::Asp)
        .max_updates(max_updates)
        .seed(11)
        .serve_feed(feed.clone())
        .build()
        .unwrap()
}

/// Spawns a solver run on its own thread, serving through `feed`.
fn spawn_run(
    feed: &ServeFeed,
    max_updates: u64,
    chaos: Option<ChaosSchedule>,
) -> thread::JoinHandle<RunReport> {
    let cfg = cfg(feed, max_updates);
    thread::spawn(move || {
        let d = dataset();
        let mut ctx = AsyncContext::sim(quiet_spec());
        if let Some(chaos) = &chaos {
            ctx.driver_mut().install_chaos(chaos);
        }
        Asgd::new(Objective::LeastSquares { lambda: 0.0 }).run(&mut ctx, &d, &cfg)
    })
}

#[test]
fn served_predictions_track_the_live_run_and_match_the_final_model() {
    let feed = ServeFeed::new();
    let solver = spawn_run(&feed, 2000, None);

    // connect() blocks until the run publishes its broadcast.
    let srv = Server::connect(&feed, ServeCfg::default()).expect("run publishes");
    assert_eq!(srv.dim(), 10);
    let d = dataset();
    let rows: Vec<u32> = (0..d.rows() as u32).collect();
    let mut p = srv.predictor();
    let mut out = Vec::new();
    let reads = 200;
    for _ in 0..reads {
        p.predict_rows_into(d.features(), &rows, &mut out);
        assert_eq!(out.len(), d.rows());
        assert!(out.iter().all(|v| v.is_finite()));
    }

    let r = solver.join().unwrap();
    assert_eq!(r.updates, 2000, "training ran to budget while serving");

    // After the run freezes the ring, a refreshed predictor must score
    // bit-identically to the reported final model.
    p.refresh();
    p.predict_rows_into(d.features(), &rows, &mut out);
    let mut expect = Vec::new();
    d.features().rows_dot_into(&rows, &r.final_w, &mut expect);
    assert_eq!(out, expect, "refreshed reads serve exactly final_w");

    // Counters: every read above is on the books; the RunReport snapshot
    // was taken at mark_done, so it can only have seen a prefix of them.
    let c = srv.counters();
    assert_eq!(c.reads, reads + 1);
    assert_eq!(c.rows_scored, (reads + 1) * d.rows() as u64);
    assert!(r.serve.reads <= c.reads);
    assert!(r.serve.rows_scored <= c.rows_scored);
}

#[test]
fn pinned_version_is_never_recycled_while_training_advances_the_ring() {
    let feed = ServeFeed::new();
    // max_version_lag = MAX: the reader keeps its original pin for the
    // whole concurrent run, however far the trainer advances.
    let hold = ServeCfg {
        max_version_lag: u64::MAX,
        log_queries: false,
    };
    let solver = spawn_run(&feed, 3000, None);
    let srv = Server::connect(&feed, hold).expect("run publishes");
    let mut p = srv.predictor();
    let v0 = p.version();
    let snapshot: Vec<f64> = p.model().to_vec();

    let d = dataset();
    let rows: Vec<u32> = (0..d.rows() as u32).collect();
    let mut out = Vec::new();
    let mut seen = Vec::new();
    loop {
        let done = srv.training_done();
        p.predict_rows_into(d.features(), &rows, &mut out);
        seen.push(p.latest_version());
        assert_eq!(p.version(), v0, "an unexpired pin never moves");
        if done {
            break;
        }
    }
    let r = solver.join().unwrap();
    assert_eq!(r.updates, 3000);

    // 3000 versions were pushed and pruned around the pin; the pinned
    // snapshot must still be bit-identical to its first read.
    assert_eq!(
        p.model(),
        snapshot.as_slice(),
        "pinned bytes survived churn"
    );
    assert_eq!(
        p.latest_version(),
        3000,
        "one version per absorbed wave lands on the frozen watermark"
    );
    assert!(
        p.latest_version() >= v0,
        "the pin is never ahead of the ring"
    );
    // The watermark any single reader observes is monotone.
    assert!(seen.windows(2).all(|w| w[0] <= w[1]));

    // Releasing the pin lets the ring reclaim the superseded version.
    drop(p);
    let fresh = srv.predictor();
    assert_eq!(
        fresh.version(),
        fresh.latest_version(),
        "a fresh pin lands on the frozen watermark"
    );
    assert_eq!(fresh.model(), r.final_w.as_slice());
}

#[test]
fn readers_serve_through_a_full_blackout_with_monotone_versions() {
    // Kill every worker mid-run, revive them later: training stalls, the
    // ring freezes, and readers keep serving the stale-but-bounded
    // snapshot; after revival the run finishes its budget and versions
    // observed by the reader never step backwards.
    let mut chaos = ChaosSchedule::new();
    for w in 0..WORKERS {
        chaos = chaos.kill(VTime::from_micros(40), w);
    }
    for w in 0..WORKERS {
        chaos = chaos.revive(VTime::from_micros(90), w);
    }
    let feed = ServeFeed::new();
    let solver = spawn_run(&feed, 2000, Some(chaos));

    let srv = Server::connect(
        &feed,
        ServeCfg {
            max_version_lag: 4,
            log_queries: false,
        },
    )
    .expect("run publishes");
    let d = dataset();
    let rows: Vec<u32> = (0..d.rows() as u32).collect();
    let mut p = srv.predictor();
    let mut out = Vec::new();
    let mut versions = Vec::new();
    loop {
        let done = srv.training_done();
        p.predict_rows_into(d.features(), &rows, &mut out);
        assert!(
            out.iter().all(|v| v.is_finite()),
            "reads never fail mid-blackout"
        );
        versions.push(p.version());
        if done {
            break;
        }
    }
    let r = solver.join().unwrap();
    assert_eq!(
        r.updates, 2000,
        "the run survives the blackout and spends its budget"
    );
    assert!(
        versions.windows(2).all(|w| w[0] <= w[1]),
        "served versions are monotone non-decreasing across kill/revive"
    );
    // The freshness policy kept every served read within its lag bound.
    assert!(srv.counters().max_version_lag <= 4);
}

#[test]
fn served_queries_feed_back_into_a_retraining_run() {
    let feed = ServeFeed::new();
    let solver = spawn_run(&feed, 500, None);
    let srv = Server::connect(&feed, ServeCfg::default()).expect("run publishes");
    let r1 = solver.join().unwrap();
    assert_eq!(r1.updates, 500);

    // Serve a query per dataset row; the caller later observes the true
    // label and feeds both back through the online-learning hook.
    let d = dataset();
    let mut p = srv.predictor();
    p.refresh();
    let dense = match d.features() {
        Matrix::Dense(m) => m,
        Matrix::Sparse(_) => unreachable!("synthetic dense dataset"),
    };
    for i in 0..d.rows() {
        let features: Vec<(u32, f64)> = dense
            .row(i)
            .iter()
            .enumerate()
            .map(|(j, &v)| (j as u32, v))
            .collect();
        let _ = p.predict_query(&features);
        p.observe(features, d.labels()[i]);
    }
    assert_eq!(feed.pending_queries(), d.rows());

    // Trainer side: drain the log into a fresh dataset and retrain.
    let drained = feed.drain_queries();
    assert_eq!(feed.pending_queries(), 0, "drain empties the log");
    let mut rows = Vec::with_capacity(drained.len());
    let mut labels = Vec::with_capacity(drained.len());
    for q in &drained {
        let mut row = vec![0.0; srv.dim()];
        for &(j, v) in &q.features {
            row[j as usize] = v;
        }
        rows.push(row);
        labels.push(q.label);
    }
    let online = Dataset::new(
        "serve-online",
        Matrix::Dense(async_linalg::DenseMatrix::from_rows(&rows).unwrap()),
        labels,
    )
    .unwrap();

    let feed2 = ServeFeed::new();
    let mut ctx = AsyncContext::sim(quiet_spec());
    let r2 = Asgd::new(Objective::LeastSquares { lambda: 0.0 }).run(
        &mut ctx,
        &online,
        &cfg(&feed2, 300),
    );
    assert_eq!(
        r2.updates, 300,
        "the drained queries are valid training rows"
    );
    assert!(r2.final_objective.is_finite());
    // The retrained model serves in turn — the loop closes.
    let srv2 = Server::connect(&feed2, ServeCfg::default()).expect("second run published");
    let mut p2 = srv2.predictor();
    p2.refresh();
    assert_eq!(p2.model(), r2.final_w.as_slice());
}
