//! Deterministic discrete-event queue.
//!
//! A min-heap keyed by `(time, insertion sequence)`. The explicit sequence
//! number makes tie-breaking deterministic — two completions at the same
//! virtual instant pop in submission order, so simulated runs are exactly
//! reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::VTime;

struct Entry<T> {
    time: VTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`. Events at equal times pop in the
    /// order they were pushed.
    pub fn push(&mut self, time: VTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(VTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<VTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VTime::from_micros(30), "c");
        q.push(VTime::from_micros(10), "a");
        q.push(VTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VTime::from_micros(5);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(VTime::from_micros(1), ());
        assert_eq!(q.peek_time(), Some(VTime::from_micros(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
