//! Worker and cluster cost models.
//!
//! The simulated backend turns a task's abstract *cost* (work units — in
//! practice the number of matrix nonzeros the task touches) into a virtual
//! duration: `duration = cost / speed × delay_factor + overheads`. These
//! types describe the `speed` and `overheads` parts; the delay factor comes
//! from [`crate::straggler`].

use crate::straggler::DelayModel;
use crate::time::VDur;

/// Communication cost model: a fixed per-message latency plus a bandwidth
/// term. Applied once per task dispatch and once per large payload shipped
/// (classic broadcast values, history-broadcast cache misses).
#[derive(Debug, Clone, PartialEq)]
pub struct CommModel {
    /// Fixed latency per message (task dispatch, result submission).
    pub per_msg: VDur,
    /// Nanoseconds per payload byte (e.g. 1 Gb/s ≈ 8 ns/B).
    pub ns_per_byte: f64,
}

impl CommModel {
    /// A 0.5 ms round-trip, ~1 GB/s network — commodity-cluster flavour.
    pub fn commodity() -> Self {
        Self {
            per_msg: VDur::from_micros(500),
            ns_per_byte: 1.0,
        }
    }

    /// Zero-cost communication (isolate computation effects in tests).
    pub fn free() -> Self {
        Self {
            per_msg: VDur::ZERO,
            ns_per_byte: 0.0,
        }
    }

    /// Time to ship `bytes` in one message.
    pub fn transfer_time(&self, bytes: u64) -> VDur {
        self.per_msg + VDur::from_micros((bytes as f64 * self.ns_per_byte / 1_000.0) as u64)
    }
}

/// Per-worker execution profile.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// Work units (≈ nonzeros) processed per second of virtual time.
    pub speed: f64,
}

impl WorkerProfile {
    /// Homogeneous default: 200 M work units per second, roughly a couple
    /// of GFLOP/s of sparse AXPY per 2-core executor.
    pub fn default_speed() -> Self {
        Self { speed: 2.0e8 }
    }

    /// Virtual time to execute a task of `cost` work units (before
    /// straggler delay factors).
    pub fn exec_time(&self, cost: f64) -> VDur {
        assert!(self.speed > 0.0, "worker speed must be positive");
        VDur::from_secs_f64(cost.max(0.0) / self.speed)
    }
}

/// Everything the simulated backend needs to know about the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of workers (the paper uses 8 and 32).
    pub workers: usize,
    /// Per-worker profiles; `profiles.len()` must equal `workers` (use
    /// [`ClusterSpec::homogeneous`] for the common case).
    pub profiles: Vec<WorkerProfile>,
    /// Straggler model applied on top of the profiles.
    pub delay: DelayModel,
    /// Communication cost model.
    pub comm: CommModel,
    /// Fixed scheduling overhead added between a task submission and its
    /// start (models driver bookkeeping; the paper's small constant async
    /// wait time comes from this).
    pub sched_overhead: VDur,
}

impl ClusterSpec {
    /// A homogeneous cluster of `workers` default-speed workers with the
    /// given delay model and commodity communication costs.
    pub fn homogeneous(workers: usize, delay: DelayModel) -> Self {
        assert!(workers > 0, "cluster must have at least one worker");
        Self {
            workers,
            profiles: vec![WorkerProfile::default_speed(); workers],
            delay,
            comm: CommModel::commodity(),
            sched_overhead: VDur::from_micros(200),
        }
    }

    /// Replaces the communication model (builder style).
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Replaces the scheduling overhead (builder style).
    pub fn with_sched_overhead(mut self, d: VDur) -> Self {
        self.sched_overhead = d;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.profiles.len() != self.workers {
            return Err(format!(
                "profiles length {} != workers {}",
                self.profiles.len(),
                self.workers
            ));
        }
        if self.profiles.iter().any(|p| p.speed <= 0.0) {
            return Err("worker speeds must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_time_scales_with_cost_and_speed() {
        let p = WorkerProfile { speed: 1e6 };
        assert_eq!(p.exec_time(1e6).as_micros(), 1_000_000);
        assert_eq!(p.exec_time(5e5).as_micros(), 500_000);
        assert_eq!(p.exec_time(0.0), VDur::ZERO);
        assert_eq!(p.exec_time(-3.0), VDur::ZERO);
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let c = CommModel {
            per_msg: VDur::from_micros(100),
            ns_per_byte: 10.0,
        };
        // 1 MB at 10 ns/B = 10 ms, plus 0.1 ms latency.
        let t = c.transfer_time(1_000_000);
        assert_eq!(t.as_micros(), 100 + 10_000);
        assert_eq!(CommModel::free().transfer_time(1 << 30), VDur::ZERO);
    }

    #[test]
    fn homogeneous_spec_validates() {
        let s = ClusterSpec::homogeneous(8, DelayModel::None);
        assert!(s.validate().is_ok());
        assert_eq!(s.profiles.len(), 8);
    }

    #[test]
    fn bad_spec_fails_validation() {
        let mut s = ClusterSpec::homogeneous(4, DelayModel::None);
        s.profiles.pop();
        assert!(s.validate().is_err());
        let mut s2 = ClusterSpec::homogeneous(2, DelayModel::None);
        s2.profiles[0].speed = 0.0;
        assert!(s2.validate().is_err());
    }
}
